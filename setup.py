"""Setup shim for environments whose setuptools cannot do PEP 660 editable installs.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this file with
the legacy ``setup.py develop`` path, which works offline with setuptools
65.x and no ``wheel`` package.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
