"""Unit tests for the real-I/O fabric: backends, faults, envelope, fetch.

Covers the PR's satellite contracts directly:

* seeded-jitter backoff determinism, cap behavior, and retry-budget
  exhaustion surfacing as a circuit-breaker trip;
* resume-offset correctness — no duplicated and no dropped rows after a
  mid-stream reconnect on every backend;
* the fixture server's wire protocol (completeness marker, fault shapes)
  and the thread-pool prefetch layer.

Every test runs under a hard SIGALRM deadline so a wedged socket or a
stuck breaker loop fails fast instead of hanging the suite.
"""

import signal
import sqlite3

import pytest

from repro.io import (
    CSVFileTransport,
    CircuitOpenError,
    ConnectError,
    DBAPITransport,
    FaultPlan,
    FixtureServer,
    HTTPTransport,
    InjectedTransport,
    JSONLinesTransport,
    ReadError,
    ResilientSource,
    ThreadedPrefetchSource,
    TruncatedPayloadError,
    write_csv,
    write_jsonl,
    write_sqlite,
)
from repro.io.backends import Transport
from repro.io.envelope import (
    BackoffSchedule,
    CircuitBreaker,
    SimulatedTimeline,
)
from repro.io.faults import DELAY, OUTAGE, RESET, TRUNCATE, Fault
from repro.relational.relation import Relation
from repro.relational.schema import Schema

TEST_DEADLINE_SECONDS = 60


@pytest.fixture(autouse=True)
def hard_deadline():
    """Hard per-test timeout: a hung socket must fail, not wedge the run."""

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_DEADLINE_SECONDS}s hard deadline"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_DEADLINE_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def make_relation(name="r", count=40):
    schema = Schema.from_names(["a", "b", "c"], relation=name)
    rows = [(i, i * 2, i * i) for i in range(count)]
    return Relation.from_rows(name, schema, rows)


class FailingTransport(Transport):
    """Connects always fail — the retry-budget exhaustion fixture."""

    def __init__(self, name="dead"):
        super().__init__(name, Schema.from_names(["a", "b", "c"]))
        self.attempts = 0

    def open(self, offset):
        self.attempts += 1
        raise ConnectError(f"{self.name}: connection refused")


class FlakyReadTransport(Transport):
    """Every chunk read fails — exhausts the read retry budget."""

    def __init__(self, rows):
        super().__init__("flaky", Schema.from_names(["a", "b", "c"]))
        self._rows = rows

    def open(self, offset):
        class Reader:
            def read_rows(self_inner, max_rows):
                raise ReadError("flaky: connection reset mid-body")

            def close(self_inner):
                pass

        return Reader()


class TestBackoffSchedule:
    def test_seeded_jitter_is_deterministic(self):
        a = BackoffSchedule(seed=17)
        b = BackoffSchedule(seed=17)
        assert [a.delay(i) for i in range(12)] == [b.delay(i) for i in range(12)]

    def test_delay_is_order_independent(self):
        schedule = BackoffSchedule(seed=3)
        forward = [schedule.delay(i) for i in range(8)]
        backward = [schedule.delay(i) for i in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = [BackoffSchedule(seed=1).delay(i) for i in range(6)]
        b = [BackoffSchedule(seed=2).delay(i) for i in range(6)]
        assert a != b

    def test_cap_is_never_exceeded(self):
        schedule = BackoffSchedule(base=0.1, multiplier=3.0, cap=0.75, seed=9)
        for i in range(20):
            assert 0.0 < schedule.delay(i) <= 0.75

    def test_zero_jitter_is_exact_exponential(self):
        schedule = BackoffSchedule(
            base=0.05, multiplier=2.0, cap=10.0, jitter=0.0, seed=0
        )
        assert [schedule.delay(i) for i in range(4)] == pytest.approx(
            [0.05, 0.1, 0.2, 0.4]
        )

    def test_jitter_only_shrinks(self):
        schedule = BackoffSchedule(base=0.05, multiplier=2.0, cap=2.0, seed=4)
        for i in range(10):
            raw = min(2.0, 0.05 * 2.0**i)
            assert schedule.delay(i) <= raw
            assert schedule.delay(i) >= raw * 0.5  # jitter=0.5 shrinks at most half

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffSchedule(base=0.0)
        with pytest.raises(ValueError):
            BackoffSchedule(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffSchedule(base=1.0, cap=0.5)
        with pytest.raises(ValueError):
            BackoffSchedule(jitter=1.5)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=5.0)
        for _ in range(2):
            breaker.record_failure(now=1.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(now=1.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trip_count == 1
        assert not breaker.allow(now=2.0)
        assert breaker.cooldown_remaining(now=2.0) == pytest.approx(4.0)

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=2.0)
        breaker.record_failure(now=10.0)
        assert not breaker.allow(now=11.0)
        assert breaker.allow(now=12.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=1.0)
        breaker.force_open(now=0.0)
        assert breaker.allow(now=1.0)  # half-open probe
        breaker.record_failure(now=1.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trip_count == 2

    def test_probe_after_cooldown_defeats_float_rounding(self):
        # Sleeping cooldown_remaining can land an ulp short of the
        # threshold; the explicit transition must still let a probe through.
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=0.3)
        breaker.record_failure(now=1e9)
        breaker.probe_after_cooldown()
        assert breaker.state == CircuitBreaker.HALF_OPEN


class TestBackends:
    def test_csv_round_trip_with_offsets(self, tmp_path):
        relation = make_relation()
        path = str(tmp_path / "r.csv")
        write_csv(path, relation)
        transport = CSVFileTransport("r", path, relation.schema)
        reader = transport.open(0)
        rows = []
        while True:
            chunk = reader.read_rows(7)
            if not chunk:
                break
            rows.extend(chunk)
        reader.close()
        assert rows == relation.rows
        resumed = transport.open(25)
        assert resumed.read_rows(1000) == relation.rows[25:]
        resumed.close()

    def test_csv_ragged_row_is_a_truncation(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n4,5\n")
        transport = CSVFileTransport("bad", str(path), Schema.from_names(["a", "b", "c"]))
        # The file parses eagerly at open, so the cut row surfaces there.
        with pytest.raises(TruncatedPayloadError):
            transport.open(0)

    def test_jsonl_round_trip_with_offsets(self, tmp_path):
        relation = make_relation()
        path = str(tmp_path / "r.jsonl")
        write_jsonl(path, relation)
        transport = JSONLinesTransport("r", path, relation.schema)
        reader = transport.open(13)
        assert reader.read_rows(10_000) == relation.rows[13:]
        reader.close()

    def test_sqlite_round_trip_with_offsets(self, tmp_path):
        relation = make_relation()
        path = str(tmp_path / "r.db")
        query = write_sqlite(path, relation)
        transport = DBAPITransport(
            "r", lambda: sqlite3.connect(path), query, relation.schema
        )
        reader = transport.open(0)
        rows = []
        while True:
            chunk = reader.read_rows(9)
            if not chunk:
                break
            rows.extend(chunk)
        reader.close()
        assert rows == relation.rows
        resumed = transport.open(31)
        assert resumed.read_rows(10_000) == relation.rows[31:]
        resumed.close()


class TestFaultPlan:
    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(11, 40)
        b = FaultPlan.seeded(11, 40)
        assert a.describe() == b.describe()
        assert a.connect_flaps == b.connect_flaps
        assert sorted(a.read_faults) == sorted(b.read_faults)

    def test_script_fires_each_fault_exactly_once(self):
        plan = FaultPlan({5: Fault(kind=RESET, offset=5)})
        script = plan.script()
        assert script.on_row(4) is None
        assert script.on_row(5) is not None
        # The re-read after resume passes straight through.
        assert script.on_row(5) is None

    def test_outage_arms_subsequent_connects(self):
        plan = FaultPlan({2: Fault(kind=OUTAGE, offset=2, count=2)})
        script = plan.script()
        assert script.on_connect() is None
        assert script.on_row(2).kind == OUTAGE
        assert script.on_connect().kind == OUTAGE
        assert script.on_connect().kind == OUTAGE
        assert script.on_connect() is None


class TestResilientEnvelope:
    def make_faulted_source(self, tmp_path, plan, **kwargs):
        relation = make_relation()
        path = str(tmp_path / "r.csv")
        write_csv(path, relation)
        inner = CSVFileTransport("r", path, relation.schema)
        return relation, ResilientSource(InjectedTransport(inner, plan), **kwargs)

    def test_resume_after_reset_no_dup_no_drop(self, tmp_path):
        plan = FaultPlan(
            {
                7: Fault(kind=RESET, offset=7),
                21: Fault(kind=TRUNCATE, offset=21),
            }
        )
        relation, source = self.make_faulted_source(tmp_path, plan)
        delivered = [row for row, _t in source.open_stream()]
        assert delivered == relation.rows
        assert source.telemetry.read_faults == 2
        assert source.telemetry.truncations == 1
        assert source.telemetry.resumes == 2

    def test_faulted_stream_is_bitwise_deterministic(self, tmp_path):
        def run():
            plan = FaultPlan.seeded(23, 40)
            relation, source = self.make_faulted_source(tmp_path, plan)
            return relation, list(source.open_stream())

        relation, first = run()
        _, second = run()
        assert first == second  # rows AND simulated arrival instants
        assert [row for row, _t in first] == relation.rows
        times = [t for _row, t in first]
        assert times == sorted(times)

    def test_connect_budget_exhaustion_trips_the_breaker(self):
        transport = FailingTransport()
        source = ResilientSource(
            transport,
            connect_retry_limit=3,
            breaker=CircuitBreaker(failure_threshold=100),
        )
        with pytest.raises(CircuitOpenError) as excinfo:
            list(source.open_stream())
        assert source.breaker.state == CircuitBreaker.OPEN
        assert source.breaker.trip_count == 1
        assert "budget (3) exhausted" in str(excinfo.value)
        assert transport.attempts == 4  # the first try plus three retries
        assert source.telemetry.backoff_seconds > 0.0

    def test_read_budget_exhaustion_trips_the_breaker(self):
        source = ResilientSource(
            FlakyReadTransport([]),
            read_retry_limit=2,
            breaker=CircuitBreaker(failure_threshold=100),
        )
        with pytest.raises(CircuitOpenError):
            list(source.open_stream())
        assert source.breaker.state == CircuitBreaker.OPEN

    def test_open_breaker_stalls_the_timeline(self, tmp_path):
        plan = FaultPlan(
            {
                3: Fault(kind=OUTAGE, offset=3, count=2),
            }
        )
        timeline = SimulatedTimeline()
        relation, source = self.make_faulted_source(
            tmp_path,
            plan,
            timeline=timeline,
            breaker=CircuitBreaker(failure_threshold=1, cooldown_seconds=0.5),
        )
        delivered = [row for row, _t in source.open_stream()]
        assert delivered == relation.rows
        # The outage tripped the breaker; waiting out the cooldown is a
        # simulated-time stall, which is what the adaptivity monitor sees.
        assert source.breaker.trip_count >= 1
        assert timeline.now() >= 0.5

    def test_reopen_from_continues_exactly(self, tmp_path):
        relation, source = self.make_faulted_source(
            tmp_path, FaultPlan.seeded(5, 40)
        )
        resumed = source.reopen_from(17, start_at=9.0)
        out = list(resumed.open_stream())
        assert [row for row, _t in out] == relation.rows[17:]
        assert all(t >= 9.0 for _row, t in out)
        assert resumed.name == source.name
        assert resumed.offset == 17

    def test_register_mirror_requires_matching_schema(self, tmp_path):
        relation, source = self.make_faulted_source(tmp_path, FaultPlan.quiet())
        other = ResilientSource(FailingTransport("other"))
        source.register_mirror(other)
        assert source.mirrors == [other]
        bad_schema = Schema.from_names(["x", "y"])
        bad_relation = Relation.from_rows("bad", bad_schema, [(1, 2)])
        mismatched = ResilientSource(
            CSVFileTransport("bad", str(tmp_path / "none.csv"), bad_schema)
        )
        with pytest.raises(ValueError):
            source.register_mirror(mismatched)

    def test_telemetry_counts_quiet_run(self, tmp_path):
        relation, source = self.make_faulted_source(tmp_path, FaultPlan.quiet())
        delivered = [row for row, _t in source.open_stream()]
        assert delivered == relation.rows
        stats = source.telemetry.as_dict()
        assert stats["connects"] == 1
        assert stats["connect_retries"] == 0
        assert stats["read_faults"] == 0
        assert stats["rows_delivered"] == len(relation.rows)


class TestFixtureServer:
    def test_quiet_round_trip(self):
        relation = make_relation(count=60)
        with FixtureServer() as server:
            url = server.add_relation("r", relation)
            transport = HTTPTransport("r", url, relation.schema)
            source = ResilientSource(transport)
            delivered = [row for row, _t in source.open_stream()]
        assert delivered == relation.rows

    def test_server_side_faults_resume_exactly(self):
        relation = make_relation(count=60)
        plan = FaultPlan(
            {
                9: Fault(kind=RESET, offset=9),
                30: Fault(kind=TRUNCATE, offset=30),
                45: Fault(kind=DELAY, offset=45, seconds=0.01),
            }
        )
        with FixtureServer() as server:
            url = server.add_relation("r", relation, plan)
            transport = HTTPTransport("r", url, relation.schema)
            source = ResilientSource(transport)
            delivered = [row for row, _t in source.open_stream()]
        assert delivered == relation.rows
        assert source.telemetry.read_faults >= 2
        assert source.telemetry.resumes >= 2

    def test_offset_query_serves_a_suffix(self):
        relation = make_relation(count=25)
        with FixtureServer() as server:
            url = server.add_relation("r", relation)
            transport = HTTPTransport("r", url, relation.schema)
            reader = transport.open(20)
            assert reader.read_rows(100) == relation.rows[20:]
            reader.close()

    def test_unknown_relation_is_a_connect_error(self):
        with FixtureServer() as server:
            transport = HTTPTransport(
                "ghost", server.url_for("ghost"), Schema.from_names(["a"])
            )
            with pytest.raises(ConnectError):
                transport.open(0)


class TestThreadedPrefetch:
    def test_prefetch_preserves_rows_and_order(self, tmp_path):
        relation = make_relation(count=80)
        path = str(tmp_path / "r.csv")
        write_csv(path, relation)
        inner = ResilientSource(
            InjectedTransport(
                CSVFileTransport("r", path, relation.schema),
                FaultPlan.seeded(31, 80),
            )
        )
        prefetch = ThreadedPrefetchSource(inner, depth=2)
        delivered = [row for row, _t in prefetch.open_stream()]
        assert delivered == relation.rows

    def test_prefetch_propagates_failures(self):
        prefetch = ThreadedPrefetchSource(ResilientSource(FailingTransport()))
        with pytest.raises(CircuitOpenError):
            list(prefetch.open_stream())
