"""Differential suite for source-rate adaptivity.

Two contracts:

* **Answers never change** — over seeded random workloads whose sources all
  sit behind collapsing rate-promising links, corrective execution with
  ``rate_adaptive=True`` must produce the identical result multiset as the
  static configuration and the brute-force oracle, no matter which read
  demotions or rate-aware plan switches the policy chose (solo and served).
* **Inert without promises** — on workloads whose catalog carries no
  ``promised_rate``, enabling ``rate_adaptive`` must be a bit-identical
  no-op: same multisets, same work counters, same simulated seconds, same
  phase counts.  The policy only ever acts on a broken promise.
"""

from __future__ import annotations

import pytest

from differential import (
    generate_workload,
    assert_rate_differential_case,
    rate_collapse_setup,
    run_rate_differential_case,
    run_served_workloads,
    run_solo_corrective,
)
from helpers import reference_spja
from collections import Counter

RATE_SEEDS = tuple(range(900, 925))
NO_PROMISE_SEEDS = tuple(range(930, 942))

_CASE_CACHE: dict[int, object] = {}


def _case(seed: int):
    if seed not in _CASE_CACHE:
        _CASE_CACHE[seed] = run_rate_differential_case(seed)
    return _CASE_CACHE[seed]


@pytest.mark.parametrize("seed", RATE_SEEDS)
def test_rate_adaptive_answers_identical(seed):
    assert_rate_differential_case(_case(seed))


def test_rate_population_exercises_the_policy():
    """Meta-test: the seed population actually triggers rate actions.

    If a refactor silently stopped the collapse detector from firing, every
    per-seed assertion above would still pass (static == adaptive == oracle
    holds trivially when the policy never acts); this guard fails instead.
    """
    cases = [_case(seed) for seed in RATE_SEEDS]
    switched = [case for case in cases if case.rate_switches > 0]
    demoted = [case for case in cases if case.reprioritizations > 0]
    multi_phase = [case for case in cases if case.adaptive.phases >= 2]
    assert len(demoted) >= 5, "collapse demotions fired on too few seeds"
    assert len(switched) >= 3, "rate-aware plan switches fired on too few seeds"
    assert len(multi_phase) >= 3


@pytest.mark.parametrize("seed", RATE_SEEDS[:6])
def test_rate_adaptive_tuple_mode_answers_identical(seed):
    result = run_rate_differential_case(seed, batch_size=None)
    assert_rate_differential_case(result)


@pytest.mark.parametrize("seed", NO_PROMISE_SEEDS)
def test_rate_adaptive_is_bit_identical_without_promises(seed):
    """No promise, no action: the flag must not perturb anything at all."""
    workload = generate_workload(seed)
    _, static = run_solo_corrective(workload, batch_size=64)
    _, adaptive = run_solo_corrective(workload, batch_size=64, rate_adaptive=True)
    assert adaptive.multiset == static.multiset
    assert adaptive.metrics == static.metrics, (
        f"seed {seed}: rate_adaptive perturbed work counters without any "
        f"rate promise in the catalog"
    )
    assert adaptive.simulated_seconds == static.simulated_seconds
    assert adaptive.phases == static.phases


@pytest.mark.parametrize("policy", ["round_robin", "shortest_remaining_cost"])
def test_rate_adaptive_serving_answers_identical(policy):
    """Served rate-adaptive sessions still answer exactly like the oracle."""
    seeds = (901, 905, 910)
    workloads = [
        generate_workload(seed, name_prefix=f"w{index}_")
        for index, seed in enumerate(seeds)
    ]
    references = [
        Counter(reference_spja(workload.query, workload.relations))
        for workload in workloads
    ]
    # Shared pool: every workload's sources behind collapsing links, with
    # the promises registered in one shared catalog.
    from repro.relational.catalog import Catalog
    from repro.serving.server import QueryServer
    from differential import POLL_STEP_LIMIT, POLLING_INTERVAL, _bad_initial_tree

    catalog = Catalog()
    sources: dict[str, object] = {}
    for workload in workloads:
        sub_catalog, sub_sources = rate_collapse_setup(workload)
        for name in workload.relations:
            catalog.register(
                name, sub_catalog.schema(name), sub_catalog.statistics(name)
            )
        sources.update(sub_sources)
    server = QueryServer(
        catalog,
        sources,
        policy=policy,
        batch_size=64,
        quantum_tuples=POLL_STEP_LIMIT,
        polling_interval_seconds=POLLING_INTERVAL,
        rate_adaptive=True,
    )
    for workload in workloads:
        server.submit(
            workload.query,
            initial_tree=_bad_initial_tree(workload),
            label=workload.query.name,
        )
    report = server.run()
    assert len(report.served) == len(workloads)
    for served, workload, reference in zip(report.served, workloads, references):
        assert served.query_name == workload.query.name
        from differential import _canonical_multiset, _canonical_names

        assert (
            _canonical_multiset(
                served.rows,
                served.report.schema.names,
                _canonical_names(workload),
            )
            == reference
        ), (
            f"policy {policy!r}: served rate-adaptive query "
            f"{workload.query.name} disagrees with the oracle"
        )
