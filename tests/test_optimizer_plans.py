"""Tests for join trees, pre-aggregation points and physical plans."""

import pytest

from repro.optimizer.plans import JoinTree, PhysicalPlan, PlanError, PreAggPoint
from repro.workloads.queries import query_3a, query_5


class TestJoinTree:
    def test_leaf(self):
        leaf = JoinTree.leaf("r")
        assert leaf.is_leaf
        assert leaf.relations() == frozenset({"r"})
        assert leaf.leaf_order() == ("r",)
        assert leaf.depth() == 1
        assert str(leaf) == "r"

    def test_join_composition(self):
        tree = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"))
        assert not tree.is_leaf
        assert tree.relations() == frozenset({"a", "b"})
        assert tree.depth() == 2

    def test_left_deep_builder(self):
        tree = JoinTree.left_deep(["a", "b", "c"])
        assert tree.leaf_order() == ("a", "b", "c")
        assert tree.is_left_deep()

    def test_bushy_tree_not_left_deep(self):
        tree = JoinTree.join(
            JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b")),
            JoinTree.join(JoinTree.leaf("c"), JoinTree.leaf("d")),
        )
        assert not tree.is_left_deep()
        assert len(list(tree.internal_nodes())) == 3
        assert len(list(tree.subtrees())) == 7

    def test_invalid_constructions(self):
        with pytest.raises(PlanError):
            JoinTree(relation="a", left=JoinTree.leaf("b"), right=JoinTree.leaf("c"))
        with pytest.raises(PlanError):
            JoinTree(relation=None, left=JoinTree.leaf("b"), right=None)
        with pytest.raises(PlanError):
            JoinTree.left_deep([])


class TestPreAggPoint:
    def test_valid_modes(self):
        for mode in ("window", "traditional", "pseudogroup"):
            point = PreAggPoint(frozenset({"lineitem"}), mode, ("l_orderkey",))
            assert point.mode == mode

    def test_invalid_mode(self):
        with pytest.raises(PlanError):
            PreAggPoint(frozenset({"lineitem"}), "bogus", ())


class TestPhysicalPlan:
    def test_plan_checks_relation_coverage(self):
        query = query_3a()
        with pytest.raises(PlanError):
            PhysicalPlan(query, JoinTree.left_deep(["customer", "orders"]))

    def test_preagg_lookup_and_describe(self):
        query = query_3a()
        tree = JoinTree.left_deep(["customer", "orders", "lineitem"])
        point = PreAggPoint(frozenset({"lineitem"}), "window", ("l_orderkey",))
        plan = PhysicalPlan(query, tree, preagg_points=(point,), estimated_cost=42.0)
        assert plan.preagg_for(frozenset({"lineitem"})) is point
        assert plan.preagg_for(frozenset({"orders"})) is None
        text = plan.describe()
        assert "42.0" in text and "lineitem" in text

    def test_estimated_cardinality_lookup(self):
        query = query_5()
        tree = JoinTree.left_deep(
            ["customer", "orders", "lineitem", "supplier", "nation", "region"]
        )
        plan = PhysicalPlan(
            query,
            tree,
            estimated_cardinalities={frozenset({"customer", "orders"}): 123.0},
        )
        assert plan.estimated_cardinality(frozenset({"orders", "customer"})) == 123.0
        assert plan.estimated_cardinality(frozenset({"customer"})) is None
