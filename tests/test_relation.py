"""Tests for the Relation container."""

import random

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema, SchemaError


class TestConstruction:
    def test_from_rows(self, people_schema):
        relation = Relation.from_rows("p", people_schema, [[1, "a", 2, "c"]])
        assert relation.cardinality == 1
        assert relation.rows[0] == (1, "a", 2, "c")

    def test_from_rows_validation(self, people_schema):
        with pytest.raises(SchemaError):
            Relation.from_rows("p", people_schema, [(1, 2)], validate=True)

    def test_from_dicts(self, people_schema):
        relation = Relation.from_dicts(
            "p", people_schema, [{"pid": 1, "name": "x", "age": 3, "city": "y"}]
        )
        assert relation.rows == [(1, "x", 3, "y")]

    def test_to_dicts_roundtrip(self, people):
        dicts = people.to_dicts()
        again = Relation.from_dicts("p2", people.schema, dicts)
        assert again.rows == people.rows


class TestAccessors:
    def test_len_iter_bool(self, people):
        assert len(people) == 5
        assert bool(people)
        assert not bool(Relation("empty", people.schema, []))
        assert list(iter(people)) == people.rows

    def test_column(self, people):
        assert people.column("name") == ["ada", "grace", "alan", "edsger", "barbara"]

    def test_distinct_count(self, people):
        assert people.distinct_count("city") == 4


class TestDerivation:
    def test_select(self, people):
        pos = people.schema.position("city")
        londoners = people.select(lambda row: row[pos] == "london")
        assert len(londoners) == 2

    def test_project(self, people):
        projected = people.project(["name", "pid"])
        assert projected.schema.names == ("name", "pid")
        assert projected.rows[0] == ("ada", 1)

    def test_sorted_by(self, people):
        by_age = people.sorted_by("age")
        assert by_age.column("age") == sorted(people.column("age"))
        descending = people.sorted_by("age", descending=True)
        assert descending.column("age") == sorted(people.column("age"), reverse=True)

    def test_is_sorted_on(self, people):
        assert people.sorted_by("age").is_sorted_on("age")
        assert not people.is_sorted_on("age")

    def test_slice(self, people):
        assert people.slice(1, 3).rows == people.rows[1:3]

    def test_union(self, people):
        doubled = people.union(people)
        assert len(doubled) == 10

    def test_union_schema_mismatch(self, people, simple_orders):
        with pytest.raises(SchemaError):
            people.union(simple_orders)

    def test_sample_bounds(self, people):
        rng = random.Random(0)
        assert len(people.sample(0.0, rng)) == 0
        assert len(people.sample(1.0, rng)) == 5
        with pytest.raises(ValueError):
            people.sample(1.5, rng)
