"""Unit tests for the sharded serving tier.

The differential suites (``test_differential_sharded.py``) pin the
end-to-end bit-identity contract; these tests pin the individual pieces:
session→worker routing, the statistics snapshot protocol, the cross-process
manager store, the hash-partition helpers, worker failure propagation and
the front-end's admission validation.
"""

from __future__ import annotations

import pickle

import pytest

from differential import POLL_STEP_LIMIT, POLLING_INTERVAL, generate_workload

from repro.optimizer.statistics import ObservedStatistics
from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.expressions import Aggregate, JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving import (
    SessionSpec,
    ShardTask,
    ShardedQueryServer,
    SharedStatisticsCache,
    SharedStatisticsStore,
    shard_assignment,
)
from repro.serving.partition import (
    build_partition_plan,
    choose_partition_edge,
    fragment_query,
    merge_partition_results,
    partition_relation,
    stable_partition_index,
)
from repro.serving.specs import SessionResult
from repro.serving.worker import worker_main


def _rel(name: str, attrs: list[str], rows: list[tuple]) -> Relation:
    return Relation(name, Schema.from_names(attrs, relation=name), rows)


class TestShardAssignment:
    def test_round_robin_by_admission_index(self):
        assert shard_assignment(5, 2) == [0, 1, 0, 1, 0]
        assert shard_assignment(3, 4) == [0, 1, 2]

    def test_single_worker_gets_everything(self):
        assert shard_assignment(4, 1) == [0, 0, 0, 0]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            shard_assignment(4, 0)


class TestStatisticsSnapshot:
    def _observed(self, selectivity: float = 0.25) -> ObservedStatistics:
        observed = ObservedStatistics()
        observed.selectivities[frozenset(("a", "b"))] = selectivity
        return observed

    def test_snapshot_is_detached_from_live_views(self):
        cache = SharedStatisticsCache()
        cache.absorb(self._observed())
        cache.cardinalities["a"] = 10
        snapshot = cache.snapshot_state()
        # Mutating the cache after the fact must not leak into the snapshot.
        cache.absorb(self._observed(0.9))
        cache.cardinalities["a"] = 99
        assert snapshot.observed.selectivities[frozenset(("a", "b"))] == 0.25
        assert snapshot.cardinalities == {"a": 10}
        assert snapshot.queries_absorbed == 1

    def test_snapshot_pickles(self):
        cache = SharedStatisticsCache()
        cache.absorb(self._observed())
        cache.record_rate_sample("a", 1.0, 5, promised_rate=100.0, total=50)
        snapshot = pickle.loads(pickle.dumps(cache.snapshot_state()))
        assert snapshot.rate_samples == {"a": [(1.0, 5)]}
        assert snapshot.rate_promises == {"a": 100.0}

    def test_hydrate_reattaches_live_views_and_zeroes_counters(self):
        source = SharedStatisticsCache()
        source.absorb(self._observed())
        worker = SharedStatisticsCache()
        worker.hydrate_state(source.snapshot_state())
        assert worker.selectivities == source.selectivities
        assert worker.queries_absorbed == 0
        # The live views must point at the hydrated observations: a
        # subsequent absorb must show up through them.
        worker.absorb(self._observed(0.5))
        assert worker.selectivities[frozenset(("a", "b"))] == 0.5

    def test_absorb_snapshot_folds_and_max_folds(self):
        front = SharedStatisticsCache()
        front.cardinalities["a"] = 20
        shard = SharedStatisticsCache()
        shard.absorb(self._observed())
        shard.cardinalities.update({"a": 10, "b": 7})
        front.absorb_snapshot(shard.snapshot_state())
        assert front.cardinalities == {"a": 20, "b": 7}
        assert front.selectivities[frozenset(("a", "b"))] == 0.25
        assert front.queries_absorbed == 1


class TestSharedStatisticsStore:
    def test_store_shares_state_through_manager(self):
        with SharedStatisticsStore() as store:
            observed = ObservedStatistics()
            observed.selectivities[frozenset(("r", "s"))] = 0.125
            store.absorb(observed)
            summary = store.summary()
            assert summary["selectivities"] == 1
            assert summary["queries_absorbed"] == 1
            query = SPJAQuery(
                name="q",
                relations=("r", "s"),
                join_predicates=(JoinPredicate("r", "x", "s", "y"),),
            )
            seed = store.seed_for(query)
            assert seed is not None
            assert seed.selectivity_of(("r", "s")) == 0.125

    def test_apply_cardinalities_runs_facade_side(self):
        with SharedStatisticsStore() as store:
            cache = SharedStatisticsCache()
            cache.cardinalities["r"] = 42
            store.absorb_snapshot(cache.snapshot_state())
            catalog = Catalog()
            catalog.register("r", Schema.from_names(["x"], relation="r"))
            assert store.apply_cardinalities(catalog) == 1
            assert catalog.statistics("r").cardinality == 42


class TestPartitionHelpers:
    def test_stable_partition_index_is_process_independent(self):
        # crc32-of-repr, never builtin hash: these exact buckets must hold
        # in every interpreter regardless of PYTHONHASHSEED.
        assert [stable_partition_index(v, 4) for v in (0, 1, 2, "x")] == [
            stable_partition_index(v, 4) for v in (0, 1, 2, "x")
        ]
        assert all(0 <= stable_partition_index(v, 3) < 3 for v in range(100))

    def test_choose_partition_edge_prefers_heaviest(self):
        query = SPJAQuery(
            name="q",
            relations=("r", "s", "t"),
            join_predicates=(
                JoinPredicate("r", "a", "s", "b"),
                JoinPredicate("s", "b", "t", "c"),
            ),
        )
        relations = {
            "r": _rel("r", ["a"], [(i,) for i in range(2)]),
            "s": _rel("s", ["b"], [(i,) for i in range(3)]),
            "t": _rel("t", ["c"], [(i,) for i in range(50)]),
        }
        edge = choose_partition_edge(query, relations)
        assert (edge.left_relation, edge.right_relation) == ("s", "t")

    def test_choose_partition_edge_requires_materialized_join(self):
        no_join = SPJAQuery(name="q", relations=("r",), join_predicates=())
        with pytest.raises(ValueError, match="no join predicates"):
            choose_partition_edge(no_join, {})
        query = SPJAQuery(
            name="q",
            relations=("r", "s"),
            join_predicates=(JoinPredicate("r", "a", "s", "b"),),
        )
        with pytest.raises(ValueError, match="materialized"):
            choose_partition_edge(query, {"r": _rel("r", ["a"], [])})

    def test_partition_relation_partitions_the_multiset(self):
        relation = _rel("r", ["a", "b"], [(i, i * 2) for i in range(37)])
        fragments = partition_relation(relation, "a", 4)
        assert len(fragments) == 4
        rows = [row for fragment in fragments for row in fragment.rows]
        assert sorted(rows) == sorted(relation.rows)
        assert all(fragment.name == "r" for fragment in fragments)
        # Assignment is by key hash: the same key never lands in two places.
        for index, fragment in enumerate(fragments):
            assert all(
                stable_partition_index(row[0], 4) == index
                for row in fragment.rows
            )

    def test_fragment_query_identity_without_avg(self):
        workload = generate_workload(23)
        assert fragment_query(workload.query) is workload.query

    def test_fragment_query_decomposes_avg(self):
        query = SPJAQuery(
            name="q",
            relations=("r", "s"),
            join_predicates=(JoinPredicate("r", "a", "s", "b"),),
            aggregation=AggregateSpec(
                ("a",),
                (
                    Aggregate("avg", "b", "avg_b"),
                    Aggregate("max", "b", "max_b"),
                ),
            ),
        )
        fragment = fragment_query(query)
        assert fragment.aggregation is not None
        assert [
            (agg.function, agg.alias) for agg in fragment.aggregation.aggregates
        ] == [
            ("sum", "avg_b__psum"),
            ("count", "avg_b__pcnt"),
            ("max", "max_b"),
        ]

    def test_merge_rejects_incomplete_fragment_sets(self):
        query = SPJAQuery(
            name="q",
            relations=("r", "s"),
            join_predicates=(JoinPredicate("r", "a", "s", "b"),),
        )
        relations = {
            "r": _rel("r", ["a"], [(i,) for i in range(8)]),
            "s": _rel("s", ["b"], [(i,) for i in range(8)]),
        }
        plan = build_partition_plan("q", query, relations, 2)
        with pytest.raises(ValueError, match="expected fragments"):
            merge_partition_results(plan, [])


class _StubQueue:
    """Just enough queue surface for ``worker_main`` outside a process."""

    def __init__(self, items=()):
        self.items = list(items)
        self.out: list = []

    def get(self):
        return self.items.pop(0)

    def put(self, item):
        self.out.append(item)

    def close(self):
        pass

    def join_thread(self):
        pass


class TestWorkerFailures:
    def _broken_task(self) -> ShardTask:
        workload = generate_workload(2)  # local
        return ShardTask(
            worker_id=3,
            policy="round_robin",
            catalog=workload.catalog(),
            # Not a source: session construction/execution must blow up.
            sources={name: object() for name in workload.relations},
            specs=(
                SessionSpec(
                    index=0, label="q", query=workload.query, quantum_tuples=40
                ),
            ),
        )

    def test_worker_main_reports_tracebacks_instead_of_dying(self):
        results = _StubQueue()
        worker_main(_StubQueue([self._broken_task()]), results)
        assert len(results.out) == 1
        result = results.out[0]
        assert result.worker_id == 3
        assert result.error is not None and "Traceback" in result.error

    def test_front_end_reraises_worker_failure(self):
        workload = generate_workload(2)
        server = ShardedQueryServer(
            workload.catalog(),
            {name: object() for name in workload.relations},
            workers=1,
            quantum_tuples=POLL_STEP_LIMIT,
            polling_interval_seconds=POLLING_INTERVAL,
        )
        server.submit(workload.query)
        with pytest.raises(RuntimeError, match="worker 0 failed"):
            server.run()


class TestShardedServerValidation:
    def _server(self, **kwargs) -> tuple[ShardedQueryServer, object]:
        workload = generate_workload(2)
        server = ShardedQueryServer(
            workload.catalog(),
            workload.sources(),
            quantum_tuples=POLL_STEP_LIMIT,
            polling_interval_seconds=POLLING_INTERVAL,
            start_method="inline",
            **kwargs,
        )
        return server, workload

    def test_rejects_nonpositive_workers(self):
        workload = generate_workload(2)
        with pytest.raises(ValueError):
            ShardedQueryServer(workload.catalog(), workload.sources(), workers=0)

    def test_rejects_unregistered_sources(self):
        server, workload = self._server()
        ghost = SPJAQuery(name="ghost", relations=("nope",), join_predicates=())
        with pytest.raises(KeyError):
            server.submit(ghost)

    def test_duplicate_labels_are_disambiguated(self):
        server, workload = self._server()
        first = server.submit(workload.query, label="same")
        second = server.submit(workload.query, label="same")
        assert first == "same" and second != "same"

    def test_single_use(self):
        server, workload = self._server()
        server.submit(workload.query)
        server.run()
        with pytest.raises(RuntimeError):
            server.run()
        with pytest.raises(RuntimeError):
            server.submit(workload.query)

    def test_report_carries_worker_telemetry(self):
        server, workload = self._server(workers=2)
        server.submit(workload.query)
        server.submit(workload.query)
        report = server.run()
        assert report.workers == 2
        assert report.start_method == "inline"
        assert len(report.worker_summaries) == 2
        utilization = report.utilization()
        assert set(utilization) == {0, 1}
        assert all(0.0 <= value <= 1.0 for value in utilization.values())
        summaries = [summary.summary() for summary in report.worker_summaries]
        assert all(entry["sessions"] == 1 for entry in summaries)

    def test_partitioned_submission_requires_local_edge(self):
        workload = generate_workload(1)  # remote: sources are RemoteSource
        assert workload.remote
        server = ShardedQueryServer(
            workload.catalog(),
            workload.sources(),
            start_method="inline",
        )
        with pytest.raises(ValueError, match="materialized"):
            server.submit_partitioned(workload.query, 2)
