"""Serving-scheduler starvation coverage.

The scenario: every admitted session is simultaneously blocked on a remote
arrival (no session is ready, the server's ready set is empty at t=0).  The
serving loop must then advance the shared clock directly to the *earliest*
pending arrival — not to an arbitrary session's arrival, and not spin — and
every session must eventually be granted quanta and complete with correct
answers, under both scheduling policies.
"""

from __future__ import annotations

import pytest

from helpers import assert_same_bag, reference_spja

from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving.server import QueryServer
from repro.sources.network import ConstantRateNetworkModel
from repro.sources.remote import RemoteSource

#: per-session connection latencies: every source is silent until its
#: latency elapses, so at admission time all sessions are blocked at once
DELAYS = (1.0, 1.5, 2.25, 3.0)

ROWS_PER_SOURCE = 40


def _build_pool(seed: int = 11):
    import random

    rng = random.Random(seed)
    catalog = Catalog()
    sources: dict[str, object] = {}
    queries = []
    relations = {}
    for index, delay in enumerate(DELAYS):
        name = f"s{index}"
        schema = Schema.from_names([f"{name}_pk", f"{name}_val"], relation=name)
        rows = [
            (value, rng.randrange(100)) for value in range(ROWS_PER_SOURCE)
        ]
        relation = Relation(name, schema, rows)
        relations[name] = relation
        sources[name] = RemoteSource(
            relation,
            ConstantRateNetworkModel(tuples_per_second=5000.0, latency=delay),
        )
        catalog.register(name, schema)
        queries.append(SPJAQuery(f"q_{name}", (name,), ()))
    return catalog, sources, queries, relations


@pytest.mark.parametrize("policy", ["round_robin", "shortest_remaining_cost"])
def test_all_sessions_blocked_clock_jumps_to_earliest_arrival(policy):
    catalog, sources, queries, relations = _build_pool()
    server = QueryServer(
        catalog,
        sources,
        policy=policy,
        quantum_tuples=16,
        polling_interval_seconds=0.5,
    )
    for query in queries:
        server.submit(query, admit_at=0.0, label=query.name)

    # Record every clock advance the serving loop performs, so the
    # starvation jump is directly observable.
    jumps = []
    original_wait_until = server.clock.wait_until

    def recording_wait_until(arrival_time):
        if arrival_time > server.clock.now:
            jumps.append((server.clock.now, arrival_time))
        return original_wait_until(arrival_time)

    server.clock.wait_until = recording_wait_until
    report = server.run()

    # The very first real clock advance is the scheduler's starvation jump:
    # from t=0 (everything blocked) straight to the earliest pending arrival.
    assert jumps, "a fully blocked pool must advance the clock by waiting"
    first_from, first_to = jumps[0]
    assert first_from == 0.0
    assert first_to == pytest.approx(min(DELAYS))

    # No session was skipped: every query ran quanta, finished, and answered
    # exactly its source's rows.
    assert len(report.served) == len(queries)
    for served, query in zip(report.served, queries):
        assert served.query_name == query.name
        assert served.quanta >= 1
        assert_same_bag(served.rows, reference_spja(query, relations))

    # Each session can only have finished after its own source came alive,
    # and the whole run after the latest one.
    for served, delay in zip(report.served, DELAYS):
        assert served.finished_at >= delay
    assert report.makespan >= max(DELAYS)
    assert report.clock_wait_seconds >= min(DELAYS)

    # Completion order must follow arrival availability (the earliest-fed
    # session cannot be starved behind later-fed ones: its data is fully
    # delivered before the next source even starts).
    finish_times = [served.finished_at for served in report.served]
    assert finish_times == sorted(finish_times)


@pytest.mark.parametrize("policy", ["round_robin", "shortest_remaining_cost"])
def test_staggered_blocked_sessions_interleave_without_skips(policy):
    """Mid-run re-blocking: sessions alternate blocked/ready as bursts land.

    A second source pattern: each source delivers half its rows at its
    latency and the rest one second later, so sessions re-enter the blocked
    state mid-flight.  Every session must still complete correctly.
    """
    import random

    rng = random.Random(23)
    catalog = Catalog()
    sources: dict[str, object] = {}
    queries = []
    relations = {}
    from repro.sources.network import PhasedRateNetworkModel

    for index, delay in enumerate(DELAYS):
        name = f"t{index}"
        schema = Schema.from_names([f"{name}_pk", f"{name}_val"], relation=name)
        rows = [(value, rng.randrange(100)) for value in range(ROWS_PER_SOURCE)]
        relation = Relation(name, schema, rows)
        relations[name] = relation
        sources[name] = RemoteSource(
            relation,
            PhasedRateNetworkModel(
                [(0.004, 5000.0), (1.0, 0.0)],
                tail_rate=5000.0,
                latency=delay,
            ),
        )
        catalog.register(name, schema)
        queries.append(SPJAQuery(f"q_{name}", (name,), ()))

    server = QueryServer(
        catalog,
        sources,
        policy=policy,
        quantum_tuples=8,
        polling_interval_seconds=0.5,
    )
    for query in queries:
        server.submit(query, admit_at=0.0, label=query.name)
    report = server.run()
    assert len(report.served) == len(queries)
    for served, query in zip(report.served, queries):
        assert served.quanta >= 2, "re-blocked sessions must be re-granted"
        assert_same_bag(served.rows, reference_spja(query, relations))
    assert report.makespan >= max(DELAYS) + 1.0
