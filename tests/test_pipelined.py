"""Tests for the push-based pipelined hash-join network."""

import pytest

from helpers import assert_same_aggregates, assert_same_bag, reference_spja
from repro.engine.cost import ExecutionMetrics, SimulatedClock
from repro.engine.pipelined import PipelinedExecutor, PipelinedPlan, SourceCursor
from repro.engine.state.registry import StateRegistry, expression_signature
from repro.optimizer.plans import JoinTree, PlanError
from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.network import ConstantRateNetworkModel
from repro.sources.remote import RemoteSource
from repro.workloads.queries import query_3a


def simple_join_query():
    return SPJAQuery(
        name="po",
        relations=("people", "simple_orders"),
        join_predicates=(JoinPredicate("people", "pid", "simple_orders", "o_pid"),),
    )


class TestSourceCursor:
    def test_sequential_reads_and_exhaustion(self, people):
        cursor = SourceCursor("people", people)
        rows = []
        while True:
            item = cursor.read()
            if item is None:
                break
            rows.append(item[0])
        assert rows == people.rows
        assert cursor.consumed == len(people)
        assert cursor.exhausted
        assert cursor.peek_arrival() is None

    def test_peek_does_not_consume(self, people):
        cursor = SourceCursor("people", people)
        assert cursor.peek_arrival() == 0.0
        assert cursor.consumed == 0
        cursor.read()
        assert cursor.consumed == 1

    def test_remote_source_arrival_times(self, people):
        source = RemoteSource(people, ConstantRateNetworkModel(tuples_per_second=2.0))
        cursor = SourceCursor("people", source)
        first = cursor.read()
        second = cursor.read()
        assert first[1] == pytest.approx(0.0)
        assert second[1] == pytest.approx(0.5)


class TestPipelinedPlan:
    def test_two_way_join_matches_reference(self, people, simple_orders):
        query = simple_join_query()
        sources = {"people": people, "simple_orders": simple_orders}
        executor = PipelinedExecutor(sources)
        rows, plan = executor.execute(query, JoinTree.left_deep(["people", "simple_orders"]))
        assert_same_bag(rows, reference_spja(query, sources))
        assert plan.output_count == len(rows)

    def test_selection_applied_at_leaf(self, people, simple_orders):
        query = SPJAQuery(
            name="po_sel",
            relations=("people", "simple_orders"),
            join_predicates=(JoinPredicate("people", "pid", "simple_orders", "o_pid"),),
            selections={"people": Comparison(AttributeRef("city"), "=", Constant("london"))},
        )
        sources = {"people": people, "simple_orders": simple_orders}
        rows, plan = PipelinedExecutor(sources).execute(
            query, JoinTree.left_deep(["people", "simple_orders"])
        )
        assert_same_bag(rows, reference_spja(query, sources))
        assert plan.leaf_counts()["people"] == 2  # only londoners buffered

    def test_single_relation_query(self, people):
        query = SPJAQuery(
            name="only_people",
            relations=("people",),
            join_predicates=(),
            selections={"people": Comparison(AttributeRef("age"), ">", Constant(40))},
        )
        rows, plan = PipelinedExecutor({"people": people}).execute(query, JoinTree.leaf("people"))
        assert len(rows) == 4
        assert plan.sources_exhausted

    def test_aggregation_query_on_tpch(self, tiny_tpch):
        query = query_3a()
        sources = tiny_tpch.as_sources()
        tree = JoinTree.join(
            JoinTree.join(JoinTree.leaf("customer"), JoinTree.leaf("orders")),
            JoinTree.leaf("lineitem"),
        )
        rows, _plan = PipelinedExecutor(sources).execute(query, tree)
        assert_same_aggregates(rows, reference_spja(query, sources))

    def test_bushy_and_leftdeep_trees_agree(self, tiny_tpch):
        query = query_3a()
        sources = tiny_tpch.as_sources()
        left_deep = JoinTree.left_deep(["customer", "orders", "lineitem"])
        bushy = JoinTree.join(
            JoinTree.leaf("lineitem"),
            JoinTree.join(JoinTree.leaf("customer"), JoinTree.leaf("orders")),
        )
        rows_a, _ = PipelinedExecutor(sources).execute(query, left_deep)
        rows_b, _ = PipelinedExecutor(sources).execute(query, bushy)
        assert_same_aggregates(rows_a, rows_b)

    def test_tree_must_cover_query(self, people, simple_orders):
        query = simple_join_query()
        cursors = {
            "people": SourceCursor("people", people),
            "simple_orders": SourceCursor("simple_orders", simple_orders),
        }
        with pytest.raises(PlanError):
            PipelinedPlan(query, JoinTree.leaf("people"), cursors, lambda row: None)

    def test_step_granularity_and_suspension(self, people, simple_orders):
        query = simple_join_query()
        cursors = {
            "people": SourceCursor("people", people),
            "simple_orders": SourceCursor("simple_orders", simple_orders),
        }
        collected = []
        plan = PipelinedPlan(
            query,
            JoinTree.left_deep(["people", "simple_orders"]),
            cursors,
            collected.append,
        )
        ran = plan.run(max_steps=3)
        assert ran == 3
        assert not plan.sources_exhausted
        # Resume and finish.
        plan.run()
        assert plan.sources_exhausted
        assert len(collected) == 6

    def test_observed_selectivities_and_counts(self, people, simple_orders):
        query = simple_join_query()
        sources = {"people": people, "simple_orders": simple_orders}
        _rows, plan = PipelinedExecutor(sources).execute(
            query, JoinTree.left_deep(["people", "simple_orders"])
        )
        selectivities = plan.observed_selectivities()
        key = frozenset({"people", "simple_orders"})
        expected = 6 / (len(people) * len(simple_orders))
        assert selectivities[key] == pytest.approx(expected)
        assert plan.node_output_counts()[key] == 6

    def test_register_state(self, people, simple_orders):
        query = simple_join_query()
        sources = {"people": people, "simple_orders": simple_orders}
        _rows, plan = PipelinedExecutor(sources).execute(
            query, JoinTree.left_deep(["people", "simple_orders"])
        )
        registry = StateRegistry()
        plan.register_state(registry)
        people_partition = registry.lookup(expression_signature([("people", 0)]))
        orders_partition = registry.lookup(expression_signature([("simple_orders", 0)]))
        assert people_partition.cardinality == len(people)
        assert orders_partition.cardinality == len(simple_orders)

    def test_clock_and_metrics_accumulate(self, people, simple_orders):
        query = simple_join_query()
        sources = {"people": people, "simple_orders": simple_orders}
        metrics = ExecutionMetrics()
        clock = SimulatedClock()
        PipelinedExecutor(sources).execute(query, JoinTree.left_deep(["people", "simple_orders"]), clock=clock, metrics=metrics)
        assert metrics.tuples_read == len(people) + len(simple_orders)
        assert clock.now > 0.0

    def test_availability_driven_scheduling_prefers_arrived_tuples(self, people, simple_orders):
        # people arrive slowly, orders instantly: the plan should drain orders
        # while waiting instead of stalling on people.
        slow_people = RemoteSource(people, ConstantRateNetworkModel(tuples_per_second=1.0))
        query = simple_join_query()
        sources = {"people": slow_people, "simple_orders": simple_orders}
        clock = SimulatedClock()
        _rows, plan = PipelinedExecutor(sources).execute(
            query, JoinTree.left_deep(["people", "simple_orders"]), clock=clock
        )
        # All orders must have been consumed before the last (slowest) person
        # arrived; total time is dominated by the 4-second people transfer.
        assert clock.now >= 4.0
        assert plan.leaf_counts()["simple_orders"] == len(simple_orders)
