"""Tests for the execution monitor and phase bookkeeping."""

import pytest

from repro.core.monitor import ExecutionMonitor
from repro.core.phases import PhaseManager
from repro.engine.pipelined import PipelinedExecutor, PipelinedPlan, SourceCursor
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def join_query():
    return SPJAQuery(
        name="rs",
        relations=("r", "s"),
        join_predicates=(JoinPredicate("r", "rk", "s", "s_rk"),),
    )


def make_sources(r_rows=100, s_rows=100, fanout=1):
    r_schema = Schema.from_names(["rk", "rv"], relation="r")
    s_schema = Schema.from_names(["sk", "s_rk"], relation="s")
    r = Relation("r", r_schema, [(i, f"v{i}") for i in range(r_rows)])
    s = Relation(
        "s", s_schema, [(i, (i // fanout) % r_rows) for i in range(s_rows)]
    )
    return {"r": r, "s": s}


class TestExecutionMonitor:
    def test_observes_sources_and_selectivities(self):
        query = join_query()
        sources = make_sources()
        monitor = ExecutionMonitor(query)
        cursors = {name: SourceCursor(name, src) for name, src in sources.items()}
        collected = []
        plan = PipelinedPlan(query, JoinTree.left_deep(["r", "s"]), cursors, collected.append)
        plan.run()
        observed = monitor.observe(plan, cursors)
        assert observed.source("r").tuples_read == 100
        assert observed.source("r").exhausted
        key = frozenset({"r", "s"})
        assert observed.selectivity_of(key) == pytest.approx(100 / (100 * 100))
        assert monitor.poll_count() == 1
        assert monitor.latest_snapshot().tuples_read == 200

    def test_selectivities_not_trusted_too_early(self):
        query = join_query()
        sources = make_sources()
        monitor = ExecutionMonitor(query)
        cursors = {name: SourceCursor(name, src) for name, src in sources.items()}
        plan = PipelinedPlan(query, JoinTree.left_deep(["r", "s"]), cursors, lambda row: None)
        plan.run(max_steps=5)
        observed = monitor.observe(plan, cursors)
        assert observed.selectivity_of(frozenset({"r", "s"})) is None

    def test_exhausted_tiny_sources_yield_exact_selectivity(self):
        """Regression: the ``inputs_seen >= 10`` trust threshold used to
        discard selectivities of subexpressions over fully exhausted tiny
        sources — but an exhausted 5-row dimension table yields an *exact*
        selectivity, the most trustworthy observation there is."""
        query = join_query()
        sources = make_sources(r_rows=5, s_rows=5)
        monitor = ExecutionMonitor(query)
        cursors = {name: SourceCursor(name, src) for name, src in sources.items()}
        plan = PipelinedPlan(query, JoinTree.left_deep(["r", "s"]), cursors, lambda row: None)
        plan.run()
        observed = monitor.observe(plan, cursors)
        assert observed.source("r").exhausted and observed.source("s").exhausted
        assert observed.selectivity_of(frozenset({"r", "s"})) == pytest.approx(
            5 / (5 * 5)
        )

    def test_partially_read_tiny_sources_still_not_trusted(self):
        """The exhausted-source exemption must not weaken the threshold for
        small-but-unfinished inputs."""
        query = join_query()
        sources = make_sources(r_rows=40, s_rows=40)
        monitor = ExecutionMonitor(query)
        cursors = {name: SourceCursor(name, src) for name, src in sources.items()}
        plan = PipelinedPlan(query, JoinTree.left_deep(["r", "s"]), cursors, lambda row: None)
        plan.run(max_steps=8)
        observed = monitor.observe(plan, cursors)
        assert not observed.source("r").exhausted
        assert observed.selectivity_of(frozenset({"r", "s"})) is None

    def test_multiplicative_join_flagged(self):
        # Every s tuple matches every r key 0..9: a strongly multiplicative join.
        r_schema = Schema.from_names(["rk"], relation="r")
        s_schema = Schema.from_names(["s_rk"], relation="s")
        r = Relation("r", r_schema, [(i % 10,) for i in range(100)])
        s = Relation("s", s_schema, [(i % 10,) for i in range(100)])
        query = join_query()
        monitor = ExecutionMonitor(query)
        cursors = {"r": SourceCursor("r", r), "s": SourceCursor("s", s)}
        plan = PipelinedPlan(query, JoinTree.left_deep(["r", "s"]), cursors, lambda row: None)
        plan.run()
        observed = monitor.observe(plan, cursors)
        predicate = query.join_predicates[0]
        assert observed.multiplicative_factor(predicate) > 1.0

    def test_no_flag_for_key_foreign_key_join(self, tiny_tpch):
        from repro.workloads.queries import query_3a

        query = query_3a()
        sources = tiny_tpch.as_sources()
        monitor = ExecutionMonitor(query)
        executor = PipelinedExecutor(sources)
        cursors = {name: SourceCursor(name, sources[name]) for name in query.relations}
        collected = []
        plan = PipelinedPlan(
            query, JoinTree.left_deep(["customer", "orders", "lineitem"]), cursors, collected.append
        )
        plan.run()
        observed = monitor.observe(plan, cursors)
        for predicate in query.join_predicates:
            assert observed.multiplicative_factor(predicate) == 1.0


class TestPhaseManager:
    def test_phase_lifecycle(self):
        manager = PhaseManager()
        tree = JoinTree.left_deep(["r", "s"])
        manager.start_phase(tree, started_at=0.0)
        record = manager.finish_current(
            ended_at=1.5,
            steps=10,
            tuples_read=10,
            outputs=4,
            consumed_per_relation={"r": 6, "s": 4},
            work_units=25.0,
            switch_reason="testing",
        )
        assert record.duration == pytest.approx(1.5)
        assert manager.phase_count == 1
        assert manager.total_outputs() == 4
        assert manager.total_tuples_read() == 10
        assert manager.trees() == [tree]
        assert "phase 0" in manager.describe()

    def test_current_requires_started_phase(self):
        with pytest.raises(RuntimeError):
            PhaseManager().current()

    def test_multiple_phases_get_sequential_ids(self):
        manager = PhaseManager()
        tree = JoinTree.left_deep(["r", "s"])
        for i in range(3):
            manager.start_phase(tree, started_at=float(i))
            manager.finish_current(float(i + 1), 1, 1, 1, {}, 1.0)
        assert [record.phase_id for record in manager] == [0, 1, 2]
