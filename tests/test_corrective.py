"""Tests for corrective query processing (the paper's Section 4)."""

import pytest

from helpers import assert_same_aggregates, assert_same_bag, reference_spja
from repro.baselines.static_executor import StaticExecutor
from repro.core.corrective import CorrectiveQueryProcessor
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate
from repro.sources.network import BurstyNetworkModel
from repro.sources.remote import RemoteSource
from repro.workloads.queries import query_3a, query_5, query_10a


def bad_tree(query):
    """A deliberately poor left-deep order: biggest relations joined first."""
    order = ["lineitem", "orders", "customer", "supplier", "nation", "region"]
    return JoinTree.left_deep([r for r in order if r in query.relations])


class TestCorrectness:
    @pytest.mark.parametrize("query_factory", [query_3a, query_10a, query_5])
    def test_matches_static_reference(self, small_tpch, query_factory):
        query = query_factory()
        sources = small_tpch.as_sources()
        reference = StaticExecutor(
            small_tpch.catalog(with_cardinalities=True), sources
        ).execute(query)
        processor = CorrectiveQueryProcessor(
            small_tpch.catalog(with_cardinalities=False),
            sources,
            polling_interval_seconds=0.1,
            switch_threshold=0.95,
        )
        report = processor.execute(query)
        assert_same_aggregates(report.rows, reference.rows)

    @pytest.mark.parametrize("query_factory", [query_3a, query_10a])
    def test_recovers_from_forced_bad_plan(self, small_tpch, query_factory):
        query = query_factory()
        sources = small_tpch.as_sources()
        reference = StaticExecutor(
            small_tpch.catalog(with_cardinalities=True), sources
        ).execute(query)
        processor = CorrectiveQueryProcessor(
            small_tpch.catalog(with_cardinalities=False),
            sources,
            polling_interval_seconds=0.1,
        )
        report = processor.execute(query, initial_tree=bad_tree(query))
        assert_same_aggregates(report.rows, reference.rows)
        assert report.num_phases >= 2  # it must actually have switched

    def test_spj_query_without_aggregation(self, tiny_tpch):
        query = SPJAQuery(
            name="spj",
            relations=("customer", "orders"),
            join_predicates=(
                JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),
            ),
        )
        sources = tiny_tpch.as_sources()
        processor = CorrectiveQueryProcessor(
            tiny_tpch.catalog(), sources, polling_interval_seconds=0.05
        )
        report = processor.execute(query)
        assert_same_bag(report.rows, reference_spja(query, sources))
        assert report.schema is not None

    def test_skewed_data(self, tiny_tpch_skewed):
        query = query_10a()
        sources = tiny_tpch_skewed.as_sources()
        reference = StaticExecutor(
            tiny_tpch_skewed.catalog(with_cardinalities=True), sources
        ).execute(query)
        processor = CorrectiveQueryProcessor(
            tiny_tpch_skewed.catalog(), sources, polling_interval_seconds=0.1
        )
        report = processor.execute(query, initial_tree=bad_tree(query))
        assert_same_aggregates(report.rows, reference.rows)

    def test_remote_bursty_sources(self, tiny_tpch):
        query = query_3a()
        local = tiny_tpch.as_sources()
        remote = {
            name: RemoteSource(
                rel,
                BurstyNetworkModel(
                    burst_rate=50_000, mean_burst_tuples=400, mean_gap_seconds=0.02, seed=i
                ),
            )
            for i, (name, rel) in enumerate(local.items())
        }
        reference = StaticExecutor(
            tiny_tpch.catalog(with_cardinalities=True), local
        ).execute(query)
        processor = CorrectiveQueryProcessor(
            tiny_tpch.catalog(), remote, polling_interval_seconds=0.2
        )
        report = processor.execute(query)
        assert_same_aggregates(report.rows, reference.rows)
        assert report.wait_seconds > 0


class TestAdaptationBehaviour:
    def test_switches_away_from_bad_plan_and_improves(self, small_tpch):
        query = query_3a()
        sources = small_tpch.as_sources()
        catalog = small_tpch.catalog(with_cardinalities=False)
        static_bad = StaticExecutor(catalog, sources).execute(
            query, join_tree=bad_tree(query)
        )
        adaptive = CorrectiveQueryProcessor(
            catalog, sources, polling_interval_seconds=0.1
        ).execute(query, initial_tree=bad_tree(query))
        assert adaptive.num_phases >= 2
        assert adaptive.simulated_seconds < static_bad.simulated_seconds
        # The first phase must have ended on a re-optimizer switch.
        assert adaptive.phases[0].switch_reason

    def test_does_not_switch_away_from_good_plan(self, small_tpch):
        query = query_3a()
        sources = small_tpch.as_sources()
        catalog = small_tpch.catalog(with_cardinalities=True)
        good_tree = StaticExecutor(catalog, sources).execute(query).join_tree
        report = CorrectiveQueryProcessor(
            catalog, sources, polling_interval_seconds=0.1
        ).execute(query, initial_tree=good_tree)
        assert report.num_phases == 1
        assert report.stitchup is None
        assert report.stitchup_seconds == 0.0

    def test_max_phases_bounds_switching(self, small_tpch):
        query = query_10a()
        sources = small_tpch.as_sources()
        report = CorrectiveQueryProcessor(
            small_tpch.catalog(),
            sources,
            polling_interval_seconds=0.02,
            switch_threshold=0.999,
            max_phases=2,
        ).execute(query, initial_tree=bad_tree(query))
        assert report.num_phases <= 2

    def test_report_summary_fields(self, small_tpch):
        query = query_3a()
        sources = small_tpch.as_sources()
        report = CorrectiveQueryProcessor(
            small_tpch.catalog(), sources, polling_interval_seconds=0.1
        ).execute(query, initial_tree=bad_tree(query))
        summary = report.summary()
        assert summary["query"] == "Q3A"
        assert summary["phases"] == report.num_phases
        assert summary["answers"] == len(report.rows)
        assert report.reoptimizer_polls >= 1
        assert report.work() > 0
        if report.num_phases > 1:
            assert report.reused_tuples > 0

    def test_stitchup_reuses_most_prior_tuples(self, small_tpch):
        """Few registered tuples should be left unused (paper Tables 1-2)."""
        query = query_10a()
        sources = small_tpch.as_sources()
        report = CorrectiveQueryProcessor(
            small_tpch.catalog(), sources, polling_interval_seconds=0.1
        ).execute(query, initial_tree=bad_tree(query))
        if report.num_phases > 1:
            total = report.reused_tuples + report.discarded_tuples
            assert report.reused_tuples > 0.5 * total
