"""Tests for aggregation operators: HashAggregate, Pseudogroup, pre-aggregates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators.aggregate import (
    GroupAccumulator,
    HashAggregate,
    Pseudogroup,
    TraditionalPreAggregate,
    aggregate_output_schema,
)
from repro.engine.operators.base import OperatorError
from repro.engine.operators.scan import Scan
from repro.relational.expressions import Aggregate
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["g", "j", "v"])


def make_relation(rows):
    return Relation("t", SCHEMA, rows)


ROWS = [
    ("a", 1, 10),
    ("a", 1, 20),
    ("b", 1, 5),
    ("b", 2, 7),
    ("a", 2, 1),
]


class TestOutputSchema:
    def test_aggregate_output_schema(self):
        schema = aggregate_output_schema(["g"], [Aggregate("sum", "v", "total")], SCHEMA)
        assert schema.names == ("g", "total")


class TestGroupAccumulator:
    def test_accumulate_and_results(self):
        acc = GroupAccumulator(SCHEMA, ["g"], [Aggregate("sum", "v", "total")])
        acc.accumulate_many(ROWS)
        results = dict((row[0], row[1]) for row in acc.results())
        assert results == {"a": 31, "b": 12}
        assert acc.group_count == 2
        assert acc.tuples_consumed == len(ROWS)

    def test_multiple_aggregates(self):
        acc = GroupAccumulator(
            SCHEMA,
            ["g"],
            [
                Aggregate("sum", "v", "total"),
                Aggregate("count", None, "n"),
                Aggregate("max", "v", "biggest"),
                Aggregate("avg", "v", "mean"),
            ],
        )
        acc.accumulate_many(ROWS)
        by_group = {row[0]: row[1:] for row in acc.results()}
        assert by_group["a"] == (31, 3, 20, pytest.approx(31 / 3))
        assert by_group["b"] == (12, 2, 7, pytest.approx(6.0))

    def test_partial_input_mode(self):
        # Partial aggregates produced by a pre-aggregation step.
        partial_schema = Schema.from_names(["g", "total"])
        acc = GroupAccumulator(
            partial_schema, ["g"], [Aggregate("sum", "v", "total")], input_is_partial=True
        )
        acc.accumulate(("a", 30))
        acc.accumulate(("a", 1))
        acc.accumulate(("b", 12))
        assert dict((r[0], r[1]) for r in acc.results()) == {"a": 31, "b": 12}

    def test_empty_input(self):
        acc = GroupAccumulator(SCHEMA, ["g"], [Aggregate("sum", "v", "t")])
        assert acc.results() == []


class TestHashAggregate:
    def test_blocking_aggregation(self):
        operator = HashAggregate(
            Scan(make_relation(ROWS)), ["g"], [Aggregate("min", "v", "lo")]
        )
        assert dict(operator.run_to_completion()) == {"a": 1, "b": 5}
        assert operator.schema.names == ("g", "lo")

    def test_group_by_multiple_attributes(self):
        operator = HashAggregate(
            Scan(make_relation(ROWS)), ["g", "j"], [Aggregate("count", None, "n")]
        )
        results = {row[:2]: row[2] for row in operator.run_to_completion()}
        assert results[("a", 1)] == 2
        assert results[("b", 2)] == 1


class TestPseudogroup:
    def test_converts_each_tuple_to_singleton_partial(self):
        operator = Pseudogroup(
            Scan(make_relation(ROWS)), ["g"], [Aggregate("sum", "v", "total"), Aggregate("count", None, "n")]
        )
        rows = operator.run_to_completion()
        assert len(rows) == len(ROWS)
        assert rows[0] == ("a", 10, 1)
        assert operator.schema.names == ("g", "total", "n")

    def test_pseudogroup_then_coalesce_equals_direct(self):
        pseudo = Pseudogroup(Scan(make_relation(ROWS)), ["g"], [Aggregate("sum", "v", "total")])
        final = GroupAccumulator(
            pseudo.schema, ["g"], [Aggregate("sum", "v", "total")], input_is_partial=True
        )
        final.accumulate_many(pseudo.run_to_completion())
        direct = HashAggregate(Scan(make_relation(ROWS)), ["g"], [Aggregate("sum", "v", "total")])
        assert sorted(final.results()) == sorted(direct.run_to_completion())


class TestTraditionalPreAggregate:
    def test_reduces_then_coalesces_correctly(self):
        pre = TraditionalPreAggregate(
            Scan(make_relation(ROWS)), ["g", "j"], [Aggregate("sum", "v", "total")]
        )
        partials = pre.run_to_completion()
        assert len(partials) == 4  # (a,1), (b,1), (b,2), (a,2)
        final = GroupAccumulator(
            pre.schema, ["g"], [Aggregate("sum", "v", "total")], input_is_partial=True
        )
        final.accumulate_many(partials)
        assert dict((r[0], r[1]) for r in final.results()) == {"a": 31, "b": 12}

    def test_requires_group_attributes(self):
        with pytest.raises(OperatorError):
            TraditionalPreAggregate(Scan(make_relation(ROWS)), [], [Aggregate("sum", "v", "t")])


# ---------------------------------------------------------------------------
# Property: pre-aggregation (partial grouping on a superset of the final
# grouping attributes) followed by coalescing equals direct aggregation —
# the distributivity over union that ADP relies on (Section 2.2).
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_property_preaggregation_is_exact(rows):
    relation = make_relation(rows)
    aggregates = [
        Aggregate("sum", "v", "total"),
        Aggregate("count", None, "n"),
        Aggregate("min", "v", "lo"),
        Aggregate("max", "v", "hi"),
    ]
    direct = HashAggregate(Scan(relation), ["g"], aggregates).run_to_completion()

    pre = TraditionalPreAggregate(Scan(relation), ["g", "j"], aggregates)
    partials = pre.run_to_completion()
    final = GroupAccumulator(pre.schema, ["g"], aggregates, input_is_partial=True)
    final.accumulate_many(partials)

    assert sorted(final.results()) == sorted(direct)
