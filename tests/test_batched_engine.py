"""Unit tests for the batch-at-a-time execution primitives.

The differential harness (``test_differential_batched.py``) proves end-to-end
equivalence; these tests pin down the individual batched building blocks —
cursors, hash state, join nodes, split/router batching, the water-filling
scheduler — including their *counter* equivalence, which the simulated-clock
comparability of the two modes rests on.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.cost import ExecutionMetrics
from repro.engine.operators.queue import TupleQueue
from repro.engine.operators.split import Split
from repro.engine.operators.aggregate import GroupAccumulator
from repro.engine.pipelined import PipelinedJoinNode, PipelinedPlan, SourceCursor
from repro.engine.state.hash_table import HashTableState
from repro.core.router import (
    CallbackRouter,
    HashPartitionRouter,
    OrderConformanceRouter,
    RoundRobinRouter,
)
from repro.optimizer.plans import PlanError
from repro.relational.expressions import Aggregate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.network import ConstantRateNetworkModel, NetworkModel
from repro.sources.remote import RemoteSource
from repro.sources.source import LocalSource


class TestSourceCursorBatching:
    def test_read_batch_drains_in_order(self, people):
        cursor = SourceCursor("people", people, prefetch=2)
        rows, last_arrival = cursor.read_batch(3)
        assert rows == people.rows[:3]
        assert last_arrival == 0.0
        assert cursor.consumed == 3
        rows, _ = cursor.read_batch(100)
        assert rows == people.rows[3:]
        assert cursor.read_batch(5) == ([], None)
        assert cursor.exhausted

    def test_read_batch_interleaves_with_single_reads(self, people):
        cursor = SourceCursor("people", people, prefetch=3)
        first = cursor.read()
        rows, _ = cursor.read_batch(2)
        assert first[0] == people.rows[0]
        assert rows == people.rows[1:3]
        assert cursor.peek_arrival() == 0.0
        assert cursor.consumed == 3

    def test_read_zero_batch_stops_at_positive_arrival(self, people):
        source = RemoteSource(people, ConstantRateNetworkModel(2.0, latency=0.0))
        # Arrivals: 0.0, 0.5, 1.0, ... -> only the first tuple is "free".
        cursor = SourceCursor("people", source)
        assert cursor.read_zero_batch(10) == [people.rows[0]]
        assert cursor.consumed == 1
        # The positive-arrival tuple is still there, untouched.
        assert cursor.peek_arrival() == pytest.approx(0.5)

    def test_read_zero_batch_respects_quota(self, people):
        cursor = SourceCursor("people", people, prefetch=2)
        assert cursor.read_zero_batch(2) == people.rows[:2]
        assert cursor.read_zero_batch(100) == people.rows[2:]
        assert cursor.read_zero_batch(1) == []

    def test_empty_relation(self, people_schema):
        empty = Relation("nobody", people_schema, [])
        cursor = SourceCursor("nobody", empty)
        assert cursor.peek_arrival() is None
        assert cursor.read() is None
        assert cursor.read_batch(4) == ([], None)
        assert cursor.exhausted and cursor.consumed == 0


class TestHashTableBatching:
    def _table(self):
        schema = Schema.from_names(["k", "v"])
        return HashTableState(schema, "k")

    def test_insert_batch_matches_sequential_inserts(self):
        rows = [(i % 3, i) for i in range(10)]
        batched, sequential = self._table(), self._table()
        batched.insert_batch(rows)
        for row in rows:
            sequential.insert(row)
        assert len(batched) == len(sequential) == 10
        assert sorted(batched.scan()) == sorted(sequential.scan())
        for key in (0, 1, 2, 99):
            assert batched.probe(key) == sequential.probe(key)

    def test_probe_batch(self):
        table = self._table()
        table.insert_batch([(1, "a"), (1, "b"), (2, "c")])
        buckets = table.probe_batch([1, 2, 7])
        assert buckets[0] == [(1, "a"), (1, "b")]
        assert buckets[1] == [(2, "c")]
        assert buckets[2] == []

    def test_bucket_map_is_live_view(self):
        table = self._table()
        table.insert((5, "x"))
        assert table.bucket_map()[5] == [(5, "x")]


class TestJoinNodeBatching:
    def _node(self, metrics):
        left = Schema.from_names(["a", "x"])
        right = Schema.from_names(["b", "y"])
        return PipelinedJoinNode(left, right, "a", "b", None, metrics)

    def test_push_batch_matches_push(self):
        left_rows = [(i % 4, f"l{i}") for i in range(12)]
        right_rows = [(i % 4, f"r{i}") for i in range(8)]

        tuple_metrics = ExecutionMetrics()
        tuple_node = self._node(tuple_metrics)
        tuple_out = []
        tuple_node.sink = tuple_out.append
        for row in left_rows:
            tuple_node.push(row, "left")
        for row in right_rows:
            tuple_node.push(row, "right")

        batch_metrics = ExecutionMetrics()
        batch_node = self._node(batch_metrics)
        batch_out = []
        batch_node.sink_batch = batch_out.extend
        batch_node.push_batch(left_rows, "left")
        batch_node.push_batch(right_rows, "right")

        assert sorted(batch_out) == sorted(tuple_out)
        assert batch_node.output_count == tuple_node.output_count
        assert batch_metrics.as_dict() == tuple_metrics.as_dict()

    def test_push_batch_intra_batch_probes_do_not_self_match(self):
        # A single-side batch must never join against itself.
        metrics = ExecutionMetrics()
        node = self._node(metrics)
        out = []
        node.sink_batch = out.extend
        node.push_batch([(1, "l1"), (1, "l2")], "left")
        assert out == []
        node.push_batch([(1, "r1")], "right")
        assert sorted(out) == [(1, "l1", 1, "r1"), (1, "l2", 1, "r1")]

    def test_empty_batch_is_free(self):
        metrics = ExecutionMetrics()
        node = self._node(metrics)
        node.push_batch([], "left")
        assert metrics.as_dict() == ExecutionMetrics().as_dict()


class TestZeroQuotas:
    def _simulate(self, counts, budget):
        """Naive least-consumed-first simulation (ties: list order)."""
        counts = list(counts)
        taken = [0] * len(counts)
        for _ in range(budget):
            best = min(range(len(counts)), key=lambda i: (counts[i], i))
            counts[best] += 1
            taken[best] += 1
        return taken

    @pytest.mark.parametrize("seed", range(25))
    def test_matches_naive_simulation(self, seed):
        rng = random.Random(seed)
        counts = [rng.randrange(50) for _ in range(rng.randint(1, 6))]
        budget = rng.randrange(1, 120)
        assert PipelinedPlan._zero_quotas(counts, budget) == self._simulate(
            counts, budget
        )

    def test_exact_budget_distribution(self):
        quotas = PipelinedPlan._zero_quotas([5, 0, 3], 7)
        assert sum(quotas) == 7
        assert quotas == self._simulate([5, 0, 3], 7)


class TestSplitBatching:
    def _queues(self, n):
        return [TupleQueue(f"q{n_}") for n_ in range(n)]

    def test_push_batch_round_robin(self):
        schema = Schema.from_names(["v"])
        queues = self._queues(2)
        metrics = ExecutionMetrics()
        split = Split(schema, queues, RoundRobinRouter(targets=2), metrics)
        rows = [(i,) for i in range(7)]
        indices = split.push_batch(rows)
        assert indices == [0, 1, 0, 1, 0, 1, 0]
        assert list(queues[0].drain()) == [(0,), (2,), (4,), (6,)]
        assert list(queues[1].drain()) == [(1,), (3,), (5,)]
        assert split.distribution() == {0: 4, 1: 3}
        assert metrics.tuple_copies == 7

    def test_push_batch_matches_push_for_stateful_router(self):
        schema = Schema.from_names(["v"])
        rows = [(3,), (1,), (4,), (1,), (5,), (2,), (6,)]

        tuple_queues = self._queues(2)
        tuple_router = OrderConformanceRouter(schema, "v")
        tuple_split = Split(schema, tuple_queues, tuple_router)
        for row in rows:
            tuple_split.push(row)

        batch_queues = self._queues(2)
        batch_router = OrderConformanceRouter(schema, "v")
        batch_split = Split(schema, batch_queues, batch_router)
        batch_split.push_batch(rows)

        assert [list(q.drain()) for q in batch_queues] == [
            list(q.drain()) for q in tuple_queues
        ]
        assert batch_router.ordered_count == tuple_router.ordered_count
        assert batch_router.unordered_count == tuple_router.unordered_count
        assert batch_router.metrics.comparisons == tuple_router.metrics.comparisons
        assert batch_split.distribution() == tuple_split.distribution()

    def test_push_batch_default_router_path(self):
        schema = Schema.from_names(["v"])
        queues = self._queues(3)
        split = Split(schema, queues, CallbackRouter(fn=lambda row: row[0] % 3))
        split.push_batch([(0,), (1,), (2,), (4,)])
        assert split.distribution() == {0: 1, 1: 2, 2: 1}

    def test_push_batch_rejects_bad_index(self):
        schema = Schema.from_names(["v"])
        split = Split(schema, self._queues(1), CallbackRouter(fn=lambda row: 5))
        with pytest.raises(IndexError):
            split.push_batch([(1,)])

    def test_empty_batch(self):
        schema = Schema.from_names(["v"])
        split = Split(schema, self._queues(1), RoundRobinRouter(targets=1))
        assert split.push_batch([]) == []


class TestRouterBatchEquivalence:
    def test_round_robin_route_batch_preserves_state(self):
        tuple_router = RoundRobinRouter(targets=3, chunk_size=2)
        batch_router = RoundRobinRouter(targets=3, chunk_size=2)
        rows = [(i,) for i in range(11)]
        assert batch_router.route_batch(rows) == [tuple_router(r) for r in rows]
        # Both should continue identically after the batch.
        assert batch_router((99,)) == tuple_router((99,))

    def test_hash_partition_route_batch(self):
        schema = Schema.from_names(["k"])
        router = HashPartitionRouter(schema, "k", 4)
        rows = [(i,) for i in range(20)]
        assert router.route_batch(rows) == [router(r) for r in rows]


class TestTupleQueueBatch:
    def test_push_many(self):
        queue = TupleQueue("q")
        queue.push_many([(1,), (2,)])
        queue.push((3,))
        assert queue.total_enqueued == 3
        assert list(queue.drain()) == [(1,), (2,), (3,)]

    def test_push_many_after_close_raises(self):
        queue = TupleQueue("q")
        queue.close()
        with pytest.raises(Exception):
            queue.push_many([(1,)])


class TestGroupAccumulatorBatch:
    def _accumulators(self, aggregates):
        schema = Schema.from_names(["g", "v"])
        return (
            GroupAccumulator(schema, ("g",), aggregates, metrics=ExecutionMetrics()),
            GroupAccumulator(schema, ("g",), aggregates, metrics=ExecutionMetrics()),
        )

    @pytest.mark.parametrize(
        "aggregates",
        [
            (Aggregate("sum", "v", "s"),),
            (Aggregate("count", None, "c"),),
            (Aggregate("sum", "v", "s"), Aggregate("max", "v", "m")),
        ],
    )
    def test_accumulate_batch_matches_accumulate(self, aggregates):
        rows = [(i % 3, i * 10) for i in range(11)]
        tuple_acc, batch_acc = self._accumulators(aggregates)
        for row in rows:
            tuple_acc.accumulate(row)
        batch_acc.accumulate_batch(rows)
        assert sorted(batch_acc.results()) == sorted(tuple_acc.results())
        assert batch_acc.tuples_consumed == tuple_acc.tuples_consumed
        assert (
            batch_acc.metrics.aggregate_updates == tuple_acc.metrics.aggregate_updates
        )


class TestRemoteSourceScheduleCache:
    class CountingNetwork(NetworkModel):
        def __init__(self):
            self.calls = 0

        def arrival_times(self, tuple_count):
            self.calls += 1
            for i in range(tuple_count):
                yield i * 0.125

    def test_schedule_computed_once_across_opens(self, people):
        network = self.CountingNetwork()
        source = RemoteSource(people, network)
        first = [arrival for _, arrival in source.open_stream()]
        second = [arrival for _, arrival in source.open_stream()]
        batched = [
            arrival
            for chunk in source.open_stream_batches(2)
            for _, arrival in chunk
        ]
        assert first == second == batched
        assert network.calls == 1, "arrival schedule must be cached per source"

    def test_with_network_gets_fresh_schedule(self, people):
        first_net, second_net = self.CountingNetwork(), self.CountingNetwork()
        source = RemoteSource(people, first_net)
        source.arrival_schedule
        copy = source.with_network(second_net)
        copy.arrival_schedule
        assert first_net.calls == 1 and second_net.calls == 1

    def test_batched_and_streamed_reads_agree(self, people):
        source = RemoteSource(people, ConstantRateNetworkModel(8.0))
        streamed = list(source.open_stream())
        chunks = list(source.open_stream_batches(2))
        assert [item for chunk in chunks for item in chunk] == streamed
        assert all(len(chunk) <= 2 for chunk in chunks)


class TestIntegrationSystemBatchKnob:
    @pytest.mark.parametrize("strategy", ["static", "corrective", "plan_partitioning"])
    def test_batch_size_threads_through_every_strategy(
        self, strategy, people, simple_orders
    ):
        from repro.integration.system import AdaptiveIntegrationSystem
        from repro.relational.algebra import SPJAQuery
        from repro.relational.expressions import JoinPredicate

        query = SPJAQuery(
            name="po",
            relations=("people", "simple_orders"),
            join_predicates=(
                JoinPredicate("people", "pid", "simple_orders", "o_pid"),
            ),
        )

        def build():
            system = AdaptiveIntegrationSystem()
            system.register_source(people)
            system.register_source(simple_orders)
            return system

        tuple_answer = build().execute(query, strategy=strategy)
        batched_answer = build().execute(query, strategy=strategy, batch_size=16)
        assert sorted(batched_answer.rows) == sorted(tuple_answer.rows)
        assert batched_answer.simulated_seconds == pytest.approx(
            tuple_answer.simulated_seconds
        )


class TestValidation:
    def test_plan_rejects_non_positive_batch_size(self, people):
        from repro.relational.algebra import SPJAQuery
        from repro.optimizer.plans import JoinTree

        query = SPJAQuery("one", ("people",), ())
        cursors = {"people": SourceCursor("people", people)}
        with pytest.raises(PlanError):
            PipelinedPlan(
                query,
                JoinTree.leaf("people"),
                cursors,
                lambda row: None,
                batch_size=0,
            )

    def test_open_stream_batches_rejects_bad_batch_size(self, people):
        source = LocalSource(people)
        with pytest.raises(ValueError):
            list(source.open_stream_batches(0))
        remote = RemoteSource(people)
        with pytest.raises(ValueError):
            list(remote.open_stream_batches(-1))
