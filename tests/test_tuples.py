"""Tests for tuple adapters (state-structure compatibility machinery)."""

import pytest

from repro.relational.schema import Schema, SchemaError
from repro.relational.tuples import TupleAdapter, concat_tuples, validate_tuple


class TestConcat:
    def test_concat_tuples(self):
        assert concat_tuples((1, 2), (3,)) == (1, 2, 3)

    def test_concat_empty(self):
        assert concat_tuples((), (1,)) == (1,)


class TestTupleAdapter:
    def test_identity_when_layouts_match(self):
        schema = Schema.from_names(["a", "b"])
        adapter = TupleAdapter(schema, schema)
        assert adapter.is_identity
        assert adapter.adapt((1, 2)) == (1, 2)

    def test_permutation(self):
        source = Schema.from_names(["a", "b", "c"])
        target = Schema.from_names(["c", "a", "b"])
        adapter = TupleAdapter(source, target)
        assert not adapter.is_identity
        assert adapter.adapt((1, 2, 3)) == (3, 1, 2)

    def test_projection_drops_attributes(self):
        source = Schema.from_names(["a", "b", "c"])
        target = Schema.from_names(["b"])
        adapter = TupleAdapter(source, target)
        assert adapter.adapt((1, 2, 3)) == (2,)

    def test_missing_attributes_filled(self):
        source = Schema.from_names(["a"])
        target = Schema.from_names(["a", "added"])
        adapter = TupleAdapter(source, target, fill_value=0)
        assert adapter.has_missing
        assert adapter.adapt((7,)) == (7, 0)

    def test_adapt_many(self):
        source = Schema.from_names(["a", "b"])
        target = Schema.from_names(["b", "a"])
        adapter = TupleAdapter(source, target)
        assert adapter.adapt_many([(1, 2), (3, 4)]) == [(2, 1), (4, 3)]

    def test_adapt_many_identity_returns_copy(self):
        schema = Schema.from_names(["a"])
        adapter = TupleAdapter(schema, schema)
        rows = [(1,), (2,)]
        result = adapter.adapt_many(rows)
        assert result == rows
        assert result is not rows


class TestValidateTuple:
    def test_valid(self):
        validate_tuple(Schema.from_names(["a", "b"]), (1, 2))

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            validate_tuple(Schema.from_names(["a", "b"]), (1,))
