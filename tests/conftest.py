"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.generator import TPCHGenerator


@pytest.fixture(scope="session")
def tiny_tpch():
    """A very small uniform TPC-H instance (fast enough for most tests)."""
    return TPCHGenerator(scale_factor=0.0004, zipf_z=0.0, seed=11).generate()


@pytest.fixture(scope="session")
def tiny_tpch_skewed():
    """A very small Zipf-skewed TPC-H instance."""
    return TPCHGenerator(scale_factor=0.0004, zipf_z=0.5, seed=11).generate()


@pytest.fixture(scope="session")
def small_tpch():
    """A slightly larger instance for the adaptive end-to-end tests."""
    return TPCHGenerator(scale_factor=0.001, zipf_z=0.0, seed=7).generate()


@pytest.fixture
def people_schema():
    return Schema.from_names(["pid", "name", "age", "city"], relation="people")


@pytest.fixture
def people(people_schema):
    rows = [
        (1, "ada", 36, "london"),
        (2, "grace", 45, "new york"),
        (3, "alan", 41, "london"),
        (4, "edsger", 72, "austin"),
        (5, "barbara", 68, "boston"),
    ]
    return Relation("people", people_schema, rows)


@pytest.fixture
def orders_schema():
    # Attribute names are globally unique (o_pid references people.pid) --
    # the same convention TPC-H uses, which the engine's concatenated join
    # schemas rely on.
    return Schema.from_names(["oid", "o_pid", "amount"], relation="simple_orders")


@pytest.fixture
def simple_orders(orders_schema):
    rows = [
        (100, 1, 10.0),
        (101, 1, 20.0),
        (102, 2, 5.0),
        (103, 3, 7.5),
        (104, 3, 2.5),
        (105, 3, 30.0),
        (106, 9, 99.0),  # dangling foreign key: no matching person
    ]
    return Relation("simple_orders", orders_schema, rows)
