"""Tests for the complementary join pair (paper Section 5)."""

import pytest

from helpers import assert_same_bag, reference_join
from repro.core.complementary import ComplementaryJoinPair, PipelinedHashJoinBaseline
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.perturb import reorder_fraction

LEFT_SCHEMA = Schema.from_names(["lk", "lv"], relation="bigtab")
RIGHT_SCHEMA = Schema.from_names(["rk", "rv"], relation="smalltab")


def sorted_inputs(n=400, fanout=3):
    left = Relation(
        "bigtab", LEFT_SCHEMA, [(i // fanout, f"L{i}") for i in range(n * fanout)]
    )
    right = Relation("smalltab", RIGHT_SCHEMA, [(i, f"R{i}") for i in range(n)])
    return left, right


class TestCorrectness:
    def test_baseline_matches_reference(self):
        left, right = sorted_inputs()
        report = PipelinedHashJoinBaseline(
            left, right, "lk", "rk", collect_outputs=True
        ).execute()
        assert_same_bag(report.details["outputs"], reference_join(left, right, "lk", "rk"))

    @pytest.mark.parametrize("use_queue", [False, True])
    @pytest.mark.parametrize("fraction", [0.0, 0.01, 0.1, 0.5])
    def test_complementary_join_output_matches_reference(self, use_queue, fraction):
        left, right = sorted_inputs(n=200)
        left = reorder_fraction(left, fraction, seed=1)
        right = reorder_fraction(right, fraction, seed=2)
        expected = reference_join(left, right, "lk", "rk")
        report = ComplementaryJoinPair(
            left,
            right,
            "lk",
            "rk",
            use_priority_queue=use_queue,
            queue_capacity=64,
            collect_outputs=True,
        ).execute()
        assert report.output_count == len(expected)
        assert_same_bag(report.details["outputs"], expected)
        assert sum(report.outputs_by_component.values()) == len(expected)

    def test_empty_inputs(self):
        left = Relation("bigtab", LEFT_SCHEMA, [])
        right = Relation("smalltab", RIGHT_SCHEMA, [(1, "R")])
        report = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        assert report.output_count == 0


class TestRoutingBehaviour:
    def test_fully_sorted_data_goes_to_merge(self):
        left, right = sorted_inputs()
        report = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        assert report.outputs_by_component["merge"] == report.output_count
        assert report.outputs_by_component["hash"] == 0
        assert report.outputs_by_component["stitch"] == 0
        assert report.routed_by_component["hash_left"] == 0

    def test_naive_routing_collapses_under_small_perturbation(self):
        left, right = sorted_inputs()
        left = reorder_fraction(left, 0.05, seed=3)
        right = reorder_fraction(right, 0.05, seed=4)
        report = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        # Most output now comes from the hash side or stitch-up, not the merge join.
        assert report.outputs_by_component["merge"] < 0.5 * report.output_count

    def test_priority_queue_repairs_small_perturbation(self):
        left, right = sorted_inputs()
        left = reorder_fraction(left, 0.02, seed=3)
        right = reorder_fraction(right, 0.02, seed=4)
        naive = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        repaired = ComplementaryJoinPair(
            left, right, "lk", "rk", use_priority_queue=True, queue_capacity=128
        ).execute()
        assert (
            repaired.outputs_by_component["merge"]
            > naive.outputs_by_component["merge"]
        )
        assert repaired.outputs_by_component["merge"] > 0.7 * repaired.output_count

    def test_priority_queue_high_water_mark_bounded(self):
        left, right = sorted_inputs(n=100)
        pair = ComplementaryJoinPair(
            left, right, "lk", "rk", use_priority_queue=True, queue_capacity=32
        )
        pair.execute()
        high_water = pair._reorderers["left"].buffered_high_water
        assert high_water <= 33  # capacity + the tuple being pushed

    def test_work_profile_matches_component_outputs(self):
        left, right = sorted_inputs(n=50)
        pair = ComplementaryJoinPair(left, right, "lk", "rk")
        report = pair.execute()
        profile = pair.work_profile()
        assert profile.get("merge") == report.outputs_by_component["merge"]
        assert profile.total() == report.output_count


class TestPerformanceShape:
    """The qualitative results of Figure 5, expressed as work-unit orderings."""

    def test_complementary_beats_hash_join_on_sorted_data(self):
        left, right = sorted_inputs(n=600)
        hash_report = PipelinedHashJoinBaseline(left, right, "lk", "rk").execute()
        comp_report = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        assert comp_report.simulated_seconds < hash_report.simulated_seconds

    def test_naive_beats_priority_queue_on_fully_sorted_data(self):
        left, right = sorted_inputs(n=600)
        naive = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        queued = ComplementaryJoinPair(
            left, right, "lk", "rk", use_priority_queue=True
        ).execute()
        assert naive.simulated_seconds < queued.simulated_seconds

    def test_priority_queue_beats_naive_on_slightly_perturbed_data(self):
        left, right = sorted_inputs(n=600)
        left = reorder_fraction(left, 0.01, seed=5)
        right = reorder_fraction(right, 0.01, seed=6)
        naive = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        queued = ComplementaryJoinPair(
            left, right, "lk", "rk", use_priority_queue=True
        ).execute()
        assert queued.simulated_seconds < naive.simulated_seconds

    def test_summary_fields(self):
        left, right = sorted_inputs(n=50)
        report = ComplementaryJoinPair(left, right, "lk", "rk").execute()
        summary = report.summary()
        assert summary["strategy"] == "complementary_naive"
        assert summary["outputs"] == report.output_count
        assert report.work() > 0
