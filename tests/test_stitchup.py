"""Tests for the stitch-up executor.

The central correctness property: running a query in multiple phases (each
phase joining only its own partitions) and then stitching up the cross-phase
combinations must produce exactly the same answers as a single-phase run.
"""

import itertools

import pytest

from helpers import assert_same_bag, reference_spja
from repro.core.stitchup import StitchUpExecutor
from repro.engine.pipelined import PipelinedPlan, SourceCursor
from repro.engine.state.registry import StateRegistry
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def three_way_query():
    return SPJAQuery(
        name="rst",
        relations=("r", "s", "t"),
        join_predicates=(
            JoinPredicate("r", "rk", "s", "s_rk"),
            JoinPredicate("s", "sk", "t", "t_sk"),
        ),
    )


def make_sources(n=60, seed=0):
    import random

    rng = random.Random(seed)
    r_schema = Schema.from_names(["rk", "rv"], relation="r")
    s_schema = Schema.from_names(["sk", "s_rk"], relation="s")
    t_schema = Schema.from_names(["tk", "t_sk"], relation="t")
    r = Relation("r", r_schema, [(i, f"r{i}") for i in range(n)])
    s = Relation("s", s_schema, [(i, rng.randrange(n)) for i in range(2 * n)])
    t = Relation("t", t_schema, [(i, rng.randrange(2 * n)) for i in range(3 * n)])
    return {"r": r, "s": s, "t": t}


def run_in_phases(query, sources, trees, boundaries):
    """Run the query as sequential phases switching trees at the given step counts."""
    cursors = {name: SourceCursor(name, sources[name]) for name in query.relations}
    registry = StateRegistry()
    collected = []
    canonical_schema = None

    from repro.relational.tuples import TupleAdapter

    phase_id = 0
    for tree, max_steps in itertools.zip_longest(trees, boundaries):
        plan = PipelinedPlan(query, tree, cursors, lambda row: None, phase_id=phase_id)
        if canonical_schema is None:
            canonical_schema = plan.output_schema
        adapter = TupleAdapter(plan.output_schema, canonical_schema)
        plan.output_sink = (
            collected.append
            if adapter.is_identity
            else (lambda row, a=adapter: collected.append(a.adapt(row)))
        )
        plan.run(max_steps=max_steps)
        plan.register_state(registry)
        phase_id += 1
        if plan.sources_exhausted:
            break

    stitchup = StitchUpExecutor(
        query, registry, phase_id, canonical_schema, collected.append
    )
    report = stitchup.run()
    return collected, report


class TestStitchUpCorrectness:
    def test_two_phase_same_tree(self):
        query = three_way_query()
        sources = make_sources()
        expected = reference_spja(query, sources)
        tree = JoinTree.left_deep(["r", "s", "t"])
        rows, report = run_in_phases(query, sources, [tree, tree], [150, None])
        assert_same_bag(rows, expected)
        assert report.combinations_excluded == 2
        assert report.reused_tuples > 0

    def test_two_phase_different_trees(self):
        query = three_way_query()
        sources = make_sources()
        expected = reference_spja(query, sources)
        tree_a = JoinTree.left_deep(["r", "s", "t"])
        tree_b = JoinTree.join(
            JoinTree.leaf("r"), JoinTree.join(JoinTree.leaf("s"), JoinTree.leaf("t"))
        )
        rows, report = run_in_phases(query, sources, [tree_a, tree_b], [120, None])
        assert_same_bag(rows, expected)
        assert report.combinations_evaluated > 0

    def test_three_phases(self):
        query = three_way_query()
        sources = make_sources(n=40)
        expected = reference_spja(query, sources)
        tree_a = JoinTree.left_deep(["r", "s", "t"])
        tree_b = JoinTree.left_deep(["t", "s", "r"])
        tree_c = JoinTree.join(
            JoinTree.leaf("r"), JoinTree.join(JoinTree.leaf("s"), JoinTree.leaf("t"))
        )
        rows, report = run_in_phases(
            query, sources, [tree_a, tree_b, tree_c], [60, 60, None]
        )
        assert_same_bag(rows, expected)
        assert report.num_phases == 3
        # 3^3 total combinations, 3 excluded (all-equal).
        assert report.combinations_total == 27
        assert report.combinations_excluded == 3

    def test_two_relation_query(self):
        query = SPJAQuery(
            name="rs",
            relations=("r", "s"),
            join_predicates=(JoinPredicate("r", "rk", "s", "s_rk"),),
        )
        sources = {k: v for k, v in make_sources().items() if k in ("r", "s")}
        expected = reference_spja(query, sources)
        tree = JoinTree.left_deep(["r", "s"])
        rows, report = run_in_phases(query, sources, [tree, tree], [40, None])
        assert_same_bag(rows, expected)

    def test_single_phase_needs_no_stitchup(self):
        query = three_way_query()
        sources = make_sources(n=30)
        tree = JoinTree.left_deep(["r", "s", "t"])
        rows, report = run_in_phases(query, sources, [tree], [None])
        assert_same_bag(rows, reference_spja(query, sources))
        assert report.combinations_total == 0
        assert report.output_count == 0


class TestStitchUpAccounting:
    def test_report_fields_consistent(self):
        query = three_way_query()
        sources = make_sources()
        tree = JoinTree.left_deep(["r", "s", "t"])
        _rows, report = run_in_phases(query, sources, [tree, tree], [150, None])
        assert (
            report.combinations_total
            == report.combinations_excluded
            + report.combinations_skipped_empty
            + report.combinations_evaluated
        )
        assert report.work_units > 0
        assert report.simulated_seconds > 0
        assert report.exclusion_list  # the all-equal vectors
        as_dict = report.as_dict()
        assert as_dict["reused_tuples"] == report.reused_tuples

    def test_reused_plus_discarded_covers_registry(self):
        query = three_way_query()
        sources = make_sources()
        tree = JoinTree.left_deep(["r", "s", "t"])
        cursors = {name: SourceCursor(name, sources[name]) for name in query.relations}
        registry = StateRegistry()
        plan0 = PipelinedPlan(query, tree, cursors, lambda row: None, phase_id=0)
        plan0.run(max_steps=150)
        plan0.register_state(registry)
        plan1 = PipelinedPlan(query, tree, cursors, lambda row: None, phase_id=1)
        plan1.run()
        plan1.register_state(registry)
        stitchup = StitchUpExecutor(
            query, registry, 2, plan0.output_schema, lambda row: None
        )
        report = stitchup.run()
        assert (
            report.reused_tuples + report.discarded_tuples
            == registry.total_registered_tuples()
        )
