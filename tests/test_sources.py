"""Tests for data sources, network models and source descriptions."""

import pytest

from repro.relational.catalog import TableStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.description import MappingError, SourceDescription
from repro.sources.network import (
    BurstyNetworkModel,
    ConstantRateNetworkModel,
    InstantNetworkModel,
    PhasedRateNetworkModel,
)
from repro.sources.remote import RemoteSource
from repro.sources.source import LocalSource


class TestLocalSource:
    def test_streams_with_zero_arrival(self, people):
        source = LocalSource(people)
        stream = list(source.open_stream())
        assert [row for row, _t in stream] == people.rows
        assert all(t == 0.0 for _row, t in stream)
        assert len(source) == len(people)
        assert source.schema is people.schema


class TestNetworkModels:
    def test_instant(self):
        assert list(InstantNetworkModel().arrival_times(3)) == [0.0, 0.0, 0.0]

    def test_constant_rate(self):
        times = list(ConstantRateNetworkModel(10.0, latency=1.0).arrival_times(3))
        assert times == pytest.approx([1.0, 1.1, 1.2])

    def test_constant_rate_validation(self):
        with pytest.raises(ValueError):
            ConstantRateNetworkModel(0.0)

    def test_bursty_deterministic_and_monotone(self):
        model = BurstyNetworkModel(seed=5)
        a = list(model.arrival_times(500))
        b = list(BurstyNetworkModel(seed=5).arrival_times(500))
        assert a == b
        assert all(a[i] <= a[i + 1] for i in range(len(a) - 1))
        assert len(a) == 500

    def test_bursty_has_gaps(self):
        model = BurstyNetworkModel(
            burst_rate=10_000, mean_burst_tuples=50, mean_gap_seconds=0.5, seed=1
        )
        times = list(model.arrival_times(1000))
        largest_gap = max(b - a for a, b in zip(times, times[1:]))
        assert largest_gap > 0.1  # visible burst gaps

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            BurstyNetworkModel(burst_rate=0)
        with pytest.raises(ValueError):
            BurstyNetworkModel(mean_burst_tuples=0)
        with pytest.raises(ValueError):
            BurstyNetworkModel(mean_gap_seconds=-1)

    def test_bursty_expected_transfer_estimate(self):
        model = BurstyNetworkModel(seed=0)
        assert model.expected_transfer_seconds(1000) > 0


class TestExpectedTransferSeconds:
    """``expected_transfer_seconds`` is pinned for all four network models."""

    def test_instant_is_zero(self):
        model = InstantNetworkModel()
        assert model.expected_transfer_seconds(0) == 0.0
        assert model.expected_transfer_seconds(1000) == 0.0

    def test_constant_rate_closed_form_matches_walk(self):
        model = ConstantRateNetworkModel(10.0, latency=1.0)
        assert model.expected_transfer_seconds(0) == 0.0
        assert model.expected_transfer_seconds(1) == pytest.approx(1.0)
        # latency + (n - 1) / rate, and exactly the last arrival time.
        for count in (2, 7, 100):
            last = list(model.arrival_times(count))[-1]
            expected = 1.0 + (count - 1) / 10.0
            assert model.expected_transfer_seconds(count) == pytest.approx(expected)
            assert model.expected_transfer_seconds(count) == pytest.approx(last)

    def test_phased_uses_exact_base_walk(self):
        model = PhasedRateNetworkModel(
            phases=[(1.0, 5.0), (2.0, 0.0), (1.0, 20.0)],
            tail_rate=50.0,
            latency=0.5,
        )
        assert model.expected_transfer_seconds(0) == 0.0
        for count in (1, 4, 6, 40, 200):
            last = list(model.arrival_times(count))[-1]
            assert model.expected_transfer_seconds(count) == pytest.approx(last)

    def test_bursty_estimate_is_analytic_not_a_walk(self):
        # Bursty keeps its rough analytic sizing estimate: positive,
        # monotone in tuple count, and stable across calls (no RNG state).
        model = BurstyNetworkModel(seed=3)
        small = model.expected_transfer_seconds(100)
        large = model.expected_transfer_seconds(10_000)
        assert 0 < small < large
        assert model.expected_transfer_seconds(100) == small
        expected = (
            model.latency
            + 100 / model.burst_rate
            + max(100 / model.mean_burst_tuples, 1.0) * model.mean_gap_seconds
        )
        assert small == pytest.approx(expected)

    def test_base_walk_handles_zero_and_negative_counts(self):
        model = PhasedRateNetworkModel(phases=[(1.0, 1.0)], tail_rate=1.0)
        assert model.expected_transfer_seconds(0) == 0.0
        assert model.expected_transfer_seconds(-3) == 0.0


class TestRemoteSource:
    def test_stream_matches_relation_with_arrivals(self, people):
        source = RemoteSource(people, ConstantRateNetworkModel(1.0))
        stream = list(source.open_stream())
        assert [row for row, _t in stream] == people.rows
        assert stream[-1][1] == pytest.approx(len(people) - 1)

    def test_repeated_access_is_reproducible(self, people):
        source = RemoteSource(people, BurstyNetworkModel(seed=3))
        assert list(source.open_stream()) == list(source.open_stream())

    def test_with_network(self, people):
        source = RemoteSource(people, InstantNetworkModel())
        slowed = source.with_network(ConstantRateNetworkModel(1.0))
        assert slowed.name == source.name
        assert list(slowed.open_stream())[-1][1] > 0


class TestSourceDescription:
    def test_translate_schema_and_rows(self):
        source_schema = Schema.from_names(["id", "full_name", "junk"], relation="crm")
        description = SourceDescription(
            source_name="crm_customers",
            global_relation="customer",
            attribute_mapping={"id": "c_custkey", "full_name": "c_name"},
        )
        translated = description.translate_schema(source_schema)
        assert translated.names == ("c_custkey", "c_name")
        assert translated.attributes[0].relation == "customer"
        assert description.translate_row(source_schema, (7, "Ada", "x")) == (7, "Ada")

    def test_identity_mapping_keeps_everything(self):
        source_schema = Schema.from_names(["a", "b"], relation="src")
        description = SourceDescription("src", "global")
        assert description.translate_schema(source_schema).names == ("a", "b")
        assert description.covers(["anything"])

    def test_covers(self):
        description = SourceDescription(
            "src", "global", attribute_mapping={"x": "a", "y": "b"}
        )
        assert description.covers(["a"])
        assert not description.covers(["a", "z"])

    def test_empty_mapping_result_raises(self):
        source_schema = Schema.from_names(["a"], relation="src")
        description = SourceDescription("src", "global", attribute_mapping={"zzz": "q"})
        with pytest.raises(MappingError):
            description.translate_schema(source_schema)

    def test_promised_statistics_default(self):
        description = SourceDescription("src", "global")
        assert isinstance(description.promised_statistics, TableStatistics)
        assert description.promised_statistics.cardinality is None
