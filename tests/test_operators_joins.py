"""Tests for the join operators, checked against a brute-force reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_same_bag, reference_join
from repro.engine.operators.base import OperatorError
from repro.engine.operators.hash_join import HybridHashJoin
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.pipelined_hash import SymmetricHashJoin
from repro.engine.operators.scan import Scan
from repro.relational.expressions import AttributeRef, BinaryPredicate, Comparison
from repro.relational.relation import Relation
from repro.relational.schema import Schema

LEFT_SCHEMA = Schema.from_names(["lk", "lv"], relation="left")
RIGHT_SCHEMA = Schema.from_names(["rk", "rv"], relation="right")


def make_left(keys):
    return Relation("left", LEFT_SCHEMA, [(k, f"L{i}") for i, k in enumerate(keys)])


def make_right(keys):
    return Relation("right", RIGHT_SCHEMA, [(k, f"R{i}") for i, k in enumerate(keys)])


LEFT = make_left([1, 2, 2, 3, 5])
RIGHT = make_right([2, 3, 3, 4])
EXPECTED = reference_join(LEFT, RIGHT, "lk", "rk")


class TestEquiJoins:
    def test_hybrid_hash_join_matches_reference(self, people, simple_orders):
        join = HybridHashJoin(Scan(simple_orders), Scan(people), "o_pid", "pid")
        # people.pid is unique; the dangling order (o_pid=9) must not appear
        rows = join.run_to_completion()
        assert len(rows) == 6
        assert all(row[1] == row[3] for row in rows)

    def test_hybrid_hash_small(self):
        join = HybridHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk")
        assert_same_bag(join.run_to_completion(), EXPECTED)

    def test_symmetric_hash_small(self):
        join = SymmetricHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk")
        assert_same_bag(join.run_to_completion(), EXPECTED)

    def test_nested_loops_equi(self):
        predicate = Comparison(AttributeRef("lk"), "=", AttributeRef("rk"))
        join = NestedLoopsJoin(Scan(LEFT), Scan(RIGHT), predicate)
        assert_same_bag(join.run_to_completion(), EXPECTED)

    def test_merge_join_sorted_inputs(self):
        left = make_left(sorted([1, 2, 2, 3, 5]))
        right = make_right(sorted([2, 3, 3, 4]))
        join = MergeJoin(Scan(left), Scan(right), "lk", "rk")
        assert_same_bag(join.run_to_completion(), reference_join(left, right, "lk", "rk"))

    def test_empty_inputs(self):
        empty_left = make_left([])
        join = SymmetricHashJoin(Scan(empty_left), Scan(RIGHT), "lk", "rk")
        assert join.run_to_completion() == []
        join2 = HybridHashJoin(Scan(LEFT), Scan(make_right([])), "lk", "rk")
        assert join2.run_to_completion() == []


class TestResidualPredicates:
    def test_residual_filters_matches(self):
        residual = BinaryPredicate("lv", "rv", lambda a, b: a.endswith("0") and b.endswith("0"))
        join = SymmetricHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk", residual=residual)
        rows = join.run_to_completion()
        assert all(row[1].endswith("0") and row[3].endswith("0") for row in rows)

    def test_hybrid_hash_residual(self):
        residual = BinaryPredicate("lv", "rv", lambda a, b: False)
        join = HybridHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk", residual=residual)
        assert join.run_to_completion() == []


class TestMergeJoinValidation:
    def test_unsorted_left_raises(self):
        left = make_left([3, 1])
        right = make_right([1, 3])
        join = MergeJoin(Scan(left), Scan(right), "lk", "rk")
        with pytest.raises(OperatorError):
            join.run_to_completion()

    def test_unsorted_right_raises(self):
        left = make_left([1, 3])
        right = make_right([3, 1, 5])
        join = MergeJoin(Scan(left), Scan(right), "lk", "rk")
        with pytest.raises(OperatorError):
            join.run_to_completion()

    def test_duplicate_keys_on_both_sides(self):
        left = make_left([1, 1, 2])
        right = make_right([1, 1, 1, 2])
        join = MergeJoin(Scan(left), Scan(right), "lk", "rk")
        rows = join.run_to_completion()
        # 2 left ones x 3 right ones + 1x1 for key 2
        assert len(rows) == 7


class TestJoinStateExposure:
    def test_symmetric_join_exposes_both_hash_tables(self):
        join = SymmetricHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk")
        join.run_to_completion()
        assert len(join.left_state) == len(LEFT)
        assert len(join.right_state) == len(RIGHT)
        assert join.left_state.key == "lk"

    def test_hybrid_hash_exposes_inner_state(self):
        join = HybridHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk")
        join.run_to_completion()
        assert len(join.inner_state) == len(RIGHT)

    def test_nested_loops_buffers_inner(self):
        predicate = Comparison(AttributeRef("lk"), "=", AttributeRef("rk"))
        join = NestedLoopsJoin(Scan(LEFT), Scan(RIGHT), predicate)
        join.run_to_completion()
        assert len(join.inner_state) == len(RIGHT)


class TestCostAccounting:
    def test_symmetric_join_charges_inserts_and_probes(self):
        join = SymmetricHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk")
        join.run_to_completion()
        total_inputs = len(LEFT) + len(RIGHT)
        assert join.metrics.hash_inserts == total_inputs
        assert join.metrics.hash_probes == total_inputs

    def test_hybrid_hash_builds_then_probes(self):
        join = HybridHashJoin(Scan(LEFT), Scan(RIGHT), "lk", "rk")
        join.run_to_completion()
        assert join.metrics.hash_inserts == len(RIGHT)
        assert join.metrics.hash_probes == len(LEFT)


# ---------------------------------------------------------------------------
# Property: all equi-join implementations agree with the brute-force reference
# for arbitrary key multisets (merge join gets sorted copies of the inputs).
# ---------------------------------------------------------------------------

key_lists = st.lists(st.integers(min_value=0, max_value=8), max_size=40)


@settings(max_examples=50, deadline=None)
@given(left_keys=key_lists, right_keys=key_lists)
def test_property_join_implementations_agree(left_keys, right_keys):
    left = make_left(left_keys)
    right = make_right(right_keys)
    expected = reference_join(left, right, "lk", "rk")

    hybrid = HybridHashJoin(Scan(left), Scan(right), "lk", "rk").run_to_completion()
    symmetric = SymmetricHashJoin(Scan(left), Scan(right), "lk", "rk").run_to_completion()
    assert_same_bag(hybrid, expected)
    assert_same_bag(symmetric, expected)

    sorted_left = left.sorted_by("lk")
    sorted_right = right.sorted_by("rk")
    merge = MergeJoin(Scan(sorted_left), Scan(sorted_right), "lk", "rk").run_to_completion()
    assert_same_bag(merge, reference_join(sorted_left, sorted_right, "lk", "rk"))
    # Join cardinality does not depend on input order.
    assert len(merge) == len(expected)
