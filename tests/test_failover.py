"""Unit tests for the mirror-failover machinery.

Bottom-up over the three layers the tentpole touches: the source layer
(mirror registration and resumed streams), the cursor (mid-stream
re-pointing), and the policy (sustained-outage detection and the action it
proposes through the controller).  The end-to-end answer contract lives in
the mirror-failover differential suite.
"""

from __future__ import annotations

import pytest

from differential import mirror_outage_setup, run_solo_corrective

from repro.workloads.differential import generate_workload

from repro.adaptivity import (
    AdaptationController,
    FailoverSourceAction,
    MirrorFailoverPolicy,
)
from repro.adaptivity.events import SourceRateEvent
from repro.engine.pipelined import SourceCursor
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.network import ConstantRateNetworkModel, InstantNetworkModel
from repro.sources.remote import RemoteSource, ResumedRemoteStream


def _relation(name: str = "r", rows: int = 20) -> Relation:
    schema = Schema.from_names([f"{name}_k", f"{name}_v"], relation=name)
    return Relation(name, schema, [(i, i * 10) for i in range(rows)])


class TestMirrorRegistration:
    def test_register_and_order(self):
        relation = _relation()
        primary = RemoteSource(relation, ConstantRateNetworkModel(100.0))
        m1 = RemoteSource(relation, InstantNetworkModel(), name="r_mirror1")
        m2 = RemoteSource(relation, InstantNetworkModel(), name="r_mirror2")
        assert primary.register_mirror(m1) is m1
        primary.register_mirror(m2)
        assert primary.mirrors == [m1, m2]

    def test_rejects_different_rows(self):
        primary = RemoteSource(_relation(rows=20), InstantNetworkModel())
        impostor = RemoteSource(_relation(rows=19), InstantNetworkModel())
        with pytest.raises(ValueError, match="same rows"):
            primary.register_mirror(impostor)

    def test_rejects_different_schema(self):
        primary = RemoteSource(_relation("r"), InstantNetworkModel())
        other = RemoteSource(_relation("s"), InstantNetworkModel())
        with pytest.raises(ValueError, match="schema"):
            primary.register_mirror(other)


class TestResumedRemoteStream:
    def test_schedule_rebased_to_connection_time(self):
        relation = _relation(rows=10)
        mirror = RemoteSource(relation, ConstantRateNetworkModel(10.0, latency=1.0))
        resumed = mirror.reopen_from(4, start_at=50.0)
        assert isinstance(resumed, ResumedRemoteStream)
        assert len(resumed) == 10
        chunks = list(resumed.open_stream_columns(4))
        rows = [row for chunk_rows, _arr in chunks for row in chunk_rows]
        assert rows == relation.rows[4:]
        arrivals = [t for _rows, arr in chunks for t in arr]
        # ConstantRate(10/s, latency 1): first remaining tuple lands at
        # connection + latency, then every 0.1s.
        assert arrivals[0] == pytest.approx(51.0)
        assert arrivals[1] == pytest.approx(51.1)
        assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))

    def test_arrived_by_continues_the_primarys_numbering(self):
        mirror = RemoteSource(_relation(rows=10), ConstantRateNetworkModel(10.0, latency=1.0))
        resumed = mirror.reopen_from(4, start_at=50.0)
        assert resumed.arrived_by(50.0) == 4  # nothing new yet, 4 already read
        assert resumed.arrived_by(51.05) == 5
        assert resumed.arrived_by(1e9) == 10

    def test_open_counts_toward_the_mirror(self):
        mirror = RemoteSource(_relation(), InstantNetworkModel())
        resumed = mirror.reopen_from(0, start_at=0.0)
        list(resumed.open_stream_columns(8))
        assert mirror.open_count == 1

    def test_offset_validation(self):
        mirror = RemoteSource(_relation(), InstantNetworkModel())
        with pytest.raises(ValueError):
            mirror.reopen_from(-1, start_at=0.0)


class TestCursorFailover:
    def test_mid_stream_resume_preserves_rows_and_counters(self):
        relation = _relation(rows=30)
        primary = RemoteSource(relation, ConstantRateNetworkModel(1000.0))
        mirror = RemoteSource(
            relation, ConstantRateNetworkModel(2000.0, latency=0.5), name="m"
        )
        cursor = SourceCursor("r", primary, prefetch=8)
        first = [cursor.read()[0] for _ in range(12)]
        assert cursor.consumed == 12

        cursor.failover_to(mirror.reopen_from(cursor.consumed, start_at=7.0))
        assert not cursor.exhausted
        rest = []
        while True:
            item = cursor.read()
            if item is None:
                break
            rest.append(item)
        # Same rows as an uninterrupted primary read, in order.
        assert first + [row for row, _t in rest] == relation.rows
        assert cursor.consumed == len(relation)
        assert cursor.exhausted
        # Arrivals come from the mirror's re-based schedule.
        assert rest[0][1] == pytest.approx(7.5)
        # The delivery oracle now answers with the resumed numbering.
        assert cursor.arrived_by(7.0) == 12

    def test_order_detectors_survive_failover(self):
        relation = _relation(rows=16)
        primary = RemoteSource(relation, InstantNetworkModel())
        mirror = RemoteSource(relation, InstantNetworkModel(), name="m")
        cursor = SourceCursor("r", primary, prefetch=4)
        detector = cursor.ensure_order_detector("r_k")
        for _ in range(6):
            cursor.read()
        cursor.failover_to(mirror.reopen_from(cursor.consumed, start_at=0.0))
        while cursor.read() is not None:
            pass
        assert detector.direction() == 1  # ascending keys, across both halves
        assert detector.observed == len(relation)


def _rate_event(relation: str, **overrides) -> SourceRateEvent:
    base = dict(
        phase_id=0,
        simulated_seconds=1.0,
        relation=relation,
        consumed=10,
        next_arrival=None,
        exhausted=False,
        promised_rate=1000.0,
        arrived=10,
    )
    base.update(overrides)
    return SourceRateEvent(**base)


class TestMirrorFailoverPolicy:
    def _query(self):
        workload = generate_workload(1000)
        while len(workload.query.relations) < 2:
            workload = generate_workload(workload.seed + 1)
        return workload

    def test_sustained_outage_proposes_failover_once_per_mirror(self):
        workload = self._query()
        query = workload.query
        relation_name = query.relations[0]
        relation = workload.relations[relation_name]
        primary = RemoteSource(
            relation, ConstantRateNetworkModel(1.0), promised_rate=1000.0
        )
        mirror = RemoteSource(
            relation, InstantNetworkModel(), name=f"{relation_name}_mirror"
        )
        primary.register_mirror(mirror)
        policy = MirrorFailoverPolicy(Catalog(), outage_polls=2)
        controller = AdaptationController([policy])
        cursor = SourceCursor(relation_name, primary, prefetch=8)
        run = controller.begin(
            query,
            Catalog(),
            cursors={relation_name: cursor},
            sources={relation_name: primary},
        )

        stalled = dict(next_arrival=9.0, consumed=2, arrived=2)
        policy.observe(run, _rate_event(relation_name, **stalled))
        decision = run.poll(
            plan=None,
            current_tree=None,
            current_strategies=None,
            phase_id=0,
            now=1.0,
            can_switch=False,
        )
        assert decision is None
        assert run.failovers == []  # one stalled poll is noise, not an outage

        policy.observe(run, _rate_event(relation_name, **stalled))
        actions = policy.decide(run, _context(run, query, now=1.2))
        assert actions is not None
        (action,) = actions
        assert isinstance(action, FailoverSourceAction)
        assert action.relation == relation_name
        assert action.mirror_name == f"{relation_name}_mirror"
        assert isinstance(action.resumed, ResumedRemoteStream)
        assert action.resumed.offset == cursor.consumed

        # The mirror list is consumed: a renewed outage finds no second mirror.
        run.scratch(policy)["streaks"][relation_name] = 5
        assert policy.decide(run, _context(run, query, now=2.0)) is None

    def test_healthy_poll_resets_the_streak(self):
        workload = self._query()
        query = workload.query
        name = query.relations[0]
        policy = MirrorFailoverPolicy(Catalog(), outage_polls=2)
        controller = AdaptationController([policy])
        run = controller.begin(query, Catalog())
        policy.observe(run, _rate_event(name, next_arrival=9.0))
        policy.observe(run, _rate_event(name, next_arrival=1.0, arrived=1500, consumed=1500))
        assert run.scratch(policy)["streaks"][name] == 0

    def test_exhausted_source_is_never_an_outage(self):
        policy = MirrorFailoverPolicy(Catalog())
        assert not policy._outage(_rate_event("r", exhausted=True))
        # Mid-outage live stream without a schedule *is* one.
        assert policy._outage(_rate_event("r", next_arrival=None))

    def test_controller_applies_failover_and_reports_it(self):
        """End to end through the executor: describe() carries the failover."""
        workload = self._query()
        catalog, sources = mirror_outage_setup(workload)
        report, observables = run_solo_corrective(
            workload,
            batch_size=64,
            catalog=catalog,
            sources=sources,
            failover_adaptive=True,
            failover_stall_seconds=0.005,
        )
        adaptation = report.details["adaptation"]
        assert "mirror_failover" in adaptation["policies"]
        for entry in adaptation["failovers"]:
            assert entry["policy"] == "mirror_failover"
            assert entry["mirror"].endswith("_mirror")
            assert entry["relation"] in workload.query.relations

    def test_outage_polls_validation(self):
        with pytest.raises(ValueError):
            MirrorFailoverPolicy(Catalog(), outage_polls=0)


def _context(run, query, now: float):
    from repro.adaptivity import AdaptationContext

    return AdaptationContext(
        query=query,
        catalog=run.catalog,
        observed=None,
        phase_id=0,
        now=now,
        current_tree=None,
        current_strategies=None,
        can_switch=False,
    )
