"""Tests for pre-aggregation push-down analysis."""

from repro.optimizer.plans import JoinTree
from repro.optimizer.rewrite import (
    aggregate_attributes_covered,
    find_preaggregation_points,
    required_above,
    subtree_attributes,
)
from repro.workloads.queries import query_3a, query_5, query_10a
from repro.workloads.tpch_schema import TPCH_SCHEMAS


def schemas_for(query):
    return {name: TPCH_SCHEMAS[name] for name in query.relations}


class TestSubtreeAnalysis:
    def test_subtree_attributes(self):
        query = query_3a()
        attrs = subtree_attributes(JoinTree.leaf("lineitem"), schemas_for(query))
        assert "l_orderkey" in attrs and "l_revenue" in attrs

    def test_aggregate_attributes_covered(self):
        query = query_3a()
        schemas = schemas_for(query)
        assert aggregate_attributes_covered(query, JoinTree.leaf("lineitem"), schemas)
        assert not aggregate_attributes_covered(query, JoinTree.leaf("orders"), schemas)

    def test_required_above_includes_join_and_group_attributes(self):
        query = query_3a()
        tree = JoinTree.left_deep(["customer", "orders", "lineitem"])
        needed = required_above(query, tree, JoinTree.leaf("lineitem"), schemas_for(query))
        assert needed == {"l_orderkey"}

        tree_q10a = JoinTree.left_deep(["customer", "nation", "orders", "lineitem"])
        needed_li = required_above(
            query_10a(), tree_q10a, JoinTree.leaf("lineitem"), schemas_for(query_10a())
        )
        assert needed_li == {"l_orderkey"}


class TestFindPreaggregationPoints:
    def test_q3a_point_is_lineitem(self):
        query = query_3a()
        tree = JoinTree.left_deep(["customer", "orders", "lineitem"])
        points = find_preaggregation_points(query, tree, schemas_for(query))
        assert len(points) == 1
        assert points[0].below == frozenset({"lineitem"})
        assert points[0].group_attributes == ("l_orderkey",)
        assert points[0].mode == "window"

    def test_q5_point_groups_on_both_join_keys(self):
        query = query_5()
        tree = JoinTree.left_deep(
            ["region", "nation", "supplier", "customer", "orders", "lineitem"]
        )
        points = find_preaggregation_points(query, tree, schemas_for(query), mode="traditional")
        assert len(points) == 1
        assert points[0].below == frozenset({"lineitem"})
        assert set(points[0].group_attributes) == {"l_orderkey", "l_suppkey"}
        assert points[0].mode == "traditional"

    def test_minimal_subtree_is_chosen(self):
        """When both lineitem and (orders ⋈ lineitem) qualify, pick the smaller one."""
        query = query_3a()
        tree = JoinTree.join(
            JoinTree.leaf("customer"),
            JoinTree.join(JoinTree.leaf("orders"), JoinTree.leaf("lineitem")),
        )
        points = find_preaggregation_points(query, tree, schemas_for(query))
        assert {p.below for p in points} == {frozenset({"lineitem"})}

    def test_spj_query_has_no_points(self):
        from repro.relational.algebra import SPJAQuery
        from repro.relational.expressions import JoinPredicate

        query = SPJAQuery(
            name="spj",
            relations=("orders", "lineitem"),
            join_predicates=(JoinPredicate("orders", "o_orderkey", "lineitem", "l_orderkey"),),
        )
        tree = JoinTree.left_deep(["orders", "lineitem"])
        assert find_preaggregation_points(query, tree, schemas_for(query_3a())) == ()
