"""Sharded-serving-vs-solo differential tests.

The correctness bar of the multi-process serving tier: routing N queries
across worker processes — each worker driving its scheduler shard with
per-session private clocks, statistics snapshots folded at the front-end —
must leave every query's result **bit-identical** to its solo corrective
execution: multiset, work counters, simulated seconds and phase counts all
equal, on every worker count, scheduling policy and engine mode.  This is
stronger than the in-process serving differential (which only pins
multisets): sharded sessions run blocking on private clocks, exactly like
solo runs, so nothing about their observables may change.

Partition-parallel execution gets the same treatment: hash-partitioning a
query's heaviest join edge, running one fragment per partition on separate
workers, and merging at the root must reproduce the unpartitioned multiset
exactly — including decomposed-avg aggregation, which the workload
generator never draws and is therefore pinned by a hand-built query.

The workloads reuse the same seeded generator as the engine differential
tests; a meta-test pins population diversity so the assertions cannot
silently become vacuous.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from differential import (
    generate_workload,
    run_partition_differential_case,
    run_sharded_differential_case,
)

from repro.relational.expressions import Aggregate

POLICIES = ("round_robin", "shortest_remaining_cost")

#: (worker count, workload seeds) — issue-mandated N ∈ {2, 4}, drawn from
#: the same seed population as the serving differential tests.
WORKER_CASES = (
    (2, (0, 1, 2, 3)),
    (4, (6, 7, 8, 9, 10, 11, 12, 13)),
)

#: (engine mode, batch size): tuple-at-a-time, batched, compiled.
ENGINE_CASES = (
    ("interpreted", None),
    ("interpreted", 64),
    ("compiled", 64),
)

#: Local (materialized) seeds whose queries partition well: SPJ joins and
#: grouped aggregation, small enough to keep the suite fast.
PARTITION_SPJ_SEEDS = (3, 22)
PARTITION_AGG_SEEDS = (23, 33)

_CASE_CACHE: dict[tuple, object] = {}


def _case(seeds, policy, workers, engine_mode="interpreted", batch_size=None,
          start_method=None):
    key = (tuple(seeds), policy, workers, engine_mode, batch_size, start_method)
    result = _CASE_CACHE.get(key)
    if result is None:
        result = run_sharded_differential_case(
            seeds,
            policy,
            workers,
            batch_size=batch_size,
            engine_mode=engine_mode,
            start_method=start_method,
        )
        _CASE_CACHE[key] = result
    return result


@pytest.mark.parametrize("engine_mode,batch_size", ENGINE_CASES,
                         ids=lambda value: str(value))
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("workers,seeds", WORKER_CASES,
                         ids=lambda value: str(value))
def test_sharded_matches_solo(workers, seeds, policy, engine_mode, batch_size):
    """Every served query is bit-identical to solo (asserted in the runner);
    here we pin that the run genuinely sharded the work."""
    result = _case(seeds, policy, workers, engine_mode, batch_size)
    report = result.report
    assert len(report.served) == len(seeds)
    assert report.workers == workers
    # Round-robin routing touched every worker and each ran real quanta.
    assert len(report.worker_summaries) == workers
    assert all(summary.quanta >= 1 for summary in report.worker_summaries)
    assert all(query.quanta >= 1 for query in report.served)


def test_sharded_inline_mode_identical_to_processes():
    """``start_method="inline"`` (no processes) reproduces the exact same
    observables as real worker processes — the scheduling is deterministic
    and process boundaries carry no semantics."""
    seeds = (0, 1, 2, 3)
    with_processes = _case(seeds, "round_robin", 2)
    inline = _case(seeds, "round_robin", 2, start_method="inline")
    for a, b in zip(with_processes.served, inline.served):
        assert a == b


def test_sharded_spawn_start_method():
    """The spawn start method — fresh interpreters, everything crosses the
    boundary by pickling — reproduces solo observables too.  One small case:
    spawn pays interpreter startup per worker."""
    result = _case((0, 1), "round_robin", 2, start_method="spawn")
    assert result.report.start_method == "spawn"
    assert len(result.report.served) == 2


def test_sharded_statistics_fold_deterministic():
    """The front-end folds worker snapshots in worker-id order, so the
    persistent cache summary is identical run over run."""
    first = run_sharded_differential_case((2, 3, 4, 5), "round_robin", 4)
    second = run_sharded_differential_case((2, 3, 4, 5), "round_robin", 4)
    assert first.report.stats_cache_summary == second.report.stats_cache_summary
    assert first.report.stats_cache_summary["queries_absorbed"] == 4


@pytest.mark.parametrize("partitions", (2, 4))
@pytest.mark.parametrize("seed", PARTITION_SPJ_SEEDS)
def test_partition_parallel_spj(seed, partitions):
    """Hash-partitioned SPJ joins merge back to the exact solo multiset."""
    result = run_partition_differential_case(seed, partitions)
    assert result.partitioned.partitions == partitions
    # The fragments genuinely split the work: with co-located hash
    # partitioning every fragment's multiset is a sub-multiset of the whole.
    assert sum(len(f.report.rows) for f in result.partitioned.fragments) == (
        sum(result.reference.values())
    )


@pytest.mark.parametrize("partitions", (2, 4))
@pytest.mark.parametrize("seed", PARTITION_AGG_SEEDS)
def test_partition_parallel_aggregation(seed, partitions):
    """Grouped aggregates fold per group key across fragments exactly."""
    result = run_partition_differential_case(seed, partitions)
    assert result.merged == result.reference


@pytest.mark.parametrize("engine_mode,batch_size",
                         (("interpreted", 64), ("compiled", 64)),
                         ids=lambda value: str(value))
def test_partition_parallel_batched_engines(engine_mode, batch_size):
    """Partition-parallel execution under batched and compiled engines."""
    run_partition_differential_case(
        22, 4, engine_mode=engine_mode, batch_size=batch_size
    )


def _avg_workload():
    """A hand-built decomposed-avg workload: the generator only draws
    sum/count/min/max, so avg's sum/count partial decomposition would
    otherwise go untested."""
    base = generate_workload(23)  # local, grouped count over a join
    spec = base.query.aggregation
    assert spec is not None
    swapped = False
    aggregates = []
    for index, agg in enumerate(spec.aggregates):
        if not swapped and agg.function in ("sum", "count", "min", "max"):
            argument = agg.attribute
            if argument is None:  # count(*) — aim avg at a join attribute
                argument = base.query.join_predicates[0].left_attr
            aggregates.append(Aggregate("avg", argument, agg.alias))
            swapped = True
        else:
            aggregates.append(agg)
    assert swapped
    query = replace(
        base.query, aggregation=replace(spec, aggregates=tuple(aggregates))
    )
    return replace(base, query=query)


@pytest.mark.parametrize("partitions", (2, 4))
def test_partition_parallel_avg_decomposition(partitions):
    """avg rewrites to sum/count partials per fragment and finalizes at the
    merge — bit-identically to the unpartitioned avg (integer partials make
    the final division operands exact)."""
    workload = _avg_workload()
    result = run_partition_differential_case(
        workload.seed, partitions, workload=workload
    )
    assert any(
        agg.function == "avg" for agg in result.workload.query.aggregation.aggregates
    )
    # The fragment query the workers actually ran carries the decomposition:
    # its output schema holds the sum/count partial columns, not the avg.
    fragment_names = result.partitioned.fragments[0].report.schema.names
    assert any(name.endswith("__psum") for name in fragment_names)
    assert any(name.endswith("__pcnt") for name in fragment_names)


def test_sharded_population_covers_interesting_regimes():
    """The bit-identical claims only bite if the sharded population is
    diverse: remote (bursty-arrival) sources, multi-phase corrective
    executions, multi-join queries and aggregation must all appear."""
    cases = [
        _case(seeds, policy, workers)
        for workers, seeds in WORKER_CASES
        for policy in POLICIES
    ]
    remote = sum(case.num_remote for case in cases)
    multi_phase = sum(
        1 for case in cases for phases in case.served_phase_counts if phases >= 2
    )
    multi_join = sum(
        1
        for case in cases
        for workload in case.workloads
        if len(workload.query.relations) >= 3
    )
    aggregated = sum(
        1
        for case in cases
        for workload in case.workloads
        if workload.query.aggregation is not None
    )
    assert remote >= 2, "no remote workloads sharded — arrival waits untested"
    assert multi_phase >= 2, (
        "no sharded query ran multiple corrective phases — adaptation inside "
        "workers is at risk of being vacuously true"
    )
    assert multi_join >= 4
    assert aggregated >= 2
