"""Tests for the runtime re-optimizer."""

import pytest

from repro.optimizer.reoptimizer import ReOptimizer
from repro.optimizer.statistics import ObservedStatistics
from repro.optimizer.plans import JoinTree
from repro.workloads.queries import query_3a, query_10a


def bad_tree_for_q3a():
    return JoinTree.join(
        JoinTree.leaf("customer"),
        JoinTree.join(JoinTree.leaf("orders"), JoinTree.leaf("lineitem")),
    )


class TestReOptimizer:
    def test_no_switch_when_running_the_best_plan(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        reoptimizer = ReOptimizer(catalog)
        query = query_3a()
        best = reoptimizer  # readability only
        from repro.optimizer.enumerator import Optimizer

        best_tree = Optimizer(catalog).optimize_tree(query)
        decision = reoptimizer.evaluate(query, best_tree, ObservedStatistics())
        assert not decision.switch
        assert decision.improvement == pytest.approx(0.0, abs=1e-9)

    def test_switch_recommended_for_clearly_bad_plan(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        reoptimizer = ReOptimizer(catalog, switch_threshold=0.95)
        query = query_3a()
        decision = reoptimizer.evaluate(query, bad_tree_for_q3a(), ObservedStatistics())
        assert decision.switch
        assert decision.recommended_cost < decision.current_cost
        assert decision.improvement > 0

    def test_no_switch_when_almost_done(self, tiny_tpch):
        """If nearly all source data has been consumed there is no point switching."""
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        reoptimizer = ReOptimizer(catalog, switch_threshold=0.95)
        query = query_3a()
        observed = ObservedStatistics()
        for name in query.relations:
            total = len(tiny_tpch[name])
            observed.record_source(name, total, total, exhausted=True)
        decision = reoptimizer.evaluate(query, bad_tree_for_q3a(), observed)
        assert not decision.switch
        assert decision.remaining_fraction <= 0.02

    def test_threshold_controls_eagerness(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = query_10a()
        from repro.optimizer.enumerator import Optimizer

        slightly_suboptimal = Optimizer(
            catalog.without_statistics()
        ).optimize_tree(query)
        strict = ReOptimizer(catalog, switch_threshold=0.01)
        decision = strict.evaluate(query, slightly_suboptimal, ObservedStatistics())
        # With an extremely demanding threshold, marginal improvements never
        # trigger a switch.
        assert not decision.switch

    def test_invocation_counter(self, tiny_tpch):
        catalog = tiny_tpch.catalog()
        reoptimizer = ReOptimizer(catalog)
        query = query_3a()
        tree = bad_tree_for_q3a()
        for _ in range(3):
            reoptimizer.evaluate(query, tree, ObservedStatistics())
        assert reoptimizer.invocations == 3

    def test_late_stage_switches_are_suppressed(self, tiny_tpch):
        """Regression: current and alternative costs used to be multiplied by
        the *same* remaining fraction, so progress cancelled out of the switch
        decision and a 90%-done query was exactly as switch-happy as a fresh
        one.  With the sunk-work credit (the alternative is charged stitch-up
        work proportional to the completed fraction), a bad plan is abandoned
        early but kept once most of the inputs have been processed."""
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        reoptimizer = ReOptimizer(catalog, switch_threshold=0.8)
        query = query_3a()
        bad = bad_tree_for_q3a()

        fresh = reoptimizer.evaluate(query, bad, ObservedStatistics())
        assert fresh.switch, "a fresh bad plan should still be abandoned"

        late = ObservedStatistics()
        for name in query.relations:
            read = int(len(tiny_tpch[name]) * 0.9)
            late.record_source(name, read, read, exhausted=False)
        decision = reoptimizer.evaluate(query, bad, late)
        assert 0.02 < decision.remaining_fraction < 0.2
        # The memoryless comparison would still switch here (it is the same
        # ratio as the fresh decision); the sunk-work credit suppresses it.
        memoryless = ReOptimizer(catalog, switch_threshold=0.8, stitchup_cost_weight=0.0)
        assert memoryless.evaluate(query, bad, late).switch
        assert not decision.switch

    def test_observed_statistics_drive_the_recommendation(self, tiny_tpch):
        """An observed explosion in the running join should trigger a switch away."""
        catalog = tiny_tpch.catalog(with_cardinalities=False)
        reoptimizer = ReOptimizer(catalog, switch_threshold=0.9)
        query = query_10a()
        current = JoinTree.left_deep(["lineitem", "orders", "customer", "nation"])
        observed = ObservedStatistics()
        # Pretend lineitem ⋈ orders produced far more tuples than expected.
        observed.record_selectivity(["lineitem", "orders"], 0.5)
        observed.record_source("lineitem", 500, 500, False)
        observed.record_source("orders", 500, 500, False)
        decision = reoptimizer.evaluate(query, current, observed)
        assert decision.recommended_cost <= decision.current_cost
