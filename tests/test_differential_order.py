"""Differential tests for order-adaptive join processing.

Three layers of evidence that the merge strategy never changes answers:

* **Forced-merge robustness** — every internal node of a plan is forced to
  the merge strategy over *arbitrary* (unordered!) randomized workloads;
  the out-of-order archive fallback must still produce the exact reference
  multiset, tuple-at-a-time and batched.
* **Adaptive corrective differential** — sorted and perturbed-sorted
  variants of the randomized workloads run through the order-adaptive
  corrective processor (with and without catalog promises, across batch
  sizes) and must match both the reference oracle and the hash-only runs,
  with batch-size-invariant phase counts on local sources.
* **Served mode** — several ordered workloads served concurrently on an
  order-adaptive :class:`QueryServer` must each match their reference.
"""

from __future__ import annotations

from collections import Counter

import pytest

from differential import (
    BATCH_SIZES,
    POLL_STEP_LIMIT,
    POLLING_INTERVAL,
    _canonical_multiset,
    _canonical_names,
    generate_workload,
    order_catalog,
    order_workload_variant,
)
from helpers import reference_spja

from repro.core.corrective import CorrectiveQueryProcessor
from repro.engine.pipelined import PipelinedExecutor
from repro.optimizer.ordering import JoinStrategy
from repro.optimizer.plans import JoinTree
from repro.relational.catalog import Catalog
from repro.serving.server import QueryServer

FORCED_MERGE_SEEDS = range(40)
ADAPTIVE_SEEDS = range(20)
ORDER_BATCH_SIZES = (7, 64)


def _force_merge_strategies(tree: JoinTree) -> dict[frozenset, JoinStrategy]:
    return {
        node.relations(): JoinStrategy(algorithm="merge", direction=1)
        for node in tree.internal_nodes()
    }


@pytest.mark.parametrize("seed", FORCED_MERGE_SEEDS)
def test_forced_merge_matches_reference_on_arbitrary_workloads(seed):
    """Merge nodes forced onto unordered data must still join exactly."""
    workload = generate_workload(seed)
    query = workload.query
    tree = JoinTree.left_deep(query.relations)
    canonical_names = _canonical_names(workload)
    reference = Counter(reference_spja(query, workload.relations))

    for batch_size in (None,) + ORDER_BATCH_SIZES:
        rows, plan = PipelinedExecutor(
            workload.sources(),
            batch_size=batch_size,
            join_strategies=_force_merge_strategies(tree),
        ).execute(query, tree)
        names = (
            canonical_names
            if query.aggregation is not None
            else plan.output_schema.names
        )
        label = f"forced-merge[batch={batch_size}]"
        assert set(plan.join_algorithms().values()) <= {"merge"}
        assert _canonical_multiset(rows, names, canonical_names) == reference, (
            f"seed {seed}: {label} disagrees with the reference on "
            f"query {query.name}:\n{query.describe()}"
        )


@pytest.mark.parametrize("variant", ["sorted", "perturbed"])
@pytest.mark.parametrize("seed", ADAPTIVE_SEEDS)
def test_order_adaptive_corrective_differential(seed, variant):
    """Adaptive runs on (near-)sorted data match hash-only runs and the oracle."""
    base = generate_workload(seed)
    workload, sort_attrs = order_workload_variant(base, variant)
    query = workload.query
    canonical_names = _canonical_names(workload)
    reference = Counter(reference_spja(query, workload.relations))

    multisets: dict[str, Counter] = {}
    phase_counts: dict[str, int] = {}
    merge_used = False
    for with_promises in (False, True):
        for batch_size in (None,) + ORDER_BATCH_SIZES:
            catalog = order_catalog(workload, sort_attrs, with_promises)
            report = CorrectiveQueryProcessor(
                catalog,
                workload.sources(),
                polling_interval_seconds=POLLING_INTERVAL,
                batch_size=batch_size,
                order_adaptive=True,
            ).execute(query, poll_step_limit=POLL_STEP_LIMIT)
            label = f"adaptive[promise={with_promises},batch={batch_size}]"
            multisets[label] = _canonical_multiset(
                report.rows, report.schema.names, canonical_names
            )
            phase_counts[(with_promises, batch_size)] = report.num_phases
            merge_used = merge_used or any(
                "merge" in algorithms.values()
                for algorithms in report.details["phase_join_algorithms"]
            )

    hash_report = CorrectiveQueryProcessor(
        order_catalog(workload, sort_attrs, False),
        workload.sources(),
        polling_interval_seconds=POLLING_INTERVAL,
    ).execute(query, poll_step_limit=POLL_STEP_LIMIT)
    multisets["hash-only"] = _canonical_multiset(
        hash_report.rows, hash_report.schema.names, canonical_names
    )

    for label, multiset in multisets.items():
        assert multiset == reference, (
            f"seed {seed} ({variant}): {label} disagrees with the reference "
            f"on query {query.name}:\n{query.describe()}"
        )
    if not workload.remote:
        # Phase counts are batch-size-invariant on local sources — the order
        # machinery (detector feeding, merge-node charging) must preserve
        # the batched engine's work-accounting equivalence.
        for with_promises in (False, True):
            counts = {
                phase_counts[(with_promises, batch_size)]
                for batch_size in (None,) + ORDER_BATCH_SIZES
            }
            assert len(counts) == 1, (
                f"seed {seed} ({variant}, promises={with_promises}): phase "
                f"counts diverge across batch sizes: {phase_counts}"
            )


def test_adaptive_runs_actually_use_merge_somewhere():
    """Meta-test: across the adaptive seed population, sorted variants with
    promises must exercise the merge strategy (guards against the selector
    silently never firing, which would make the suite vacuous)."""
    used = 0
    for seed in ADAPTIVE_SEEDS:
        base = generate_workload(seed)
        if len(base.query.relations) < 2:
            continue
        workload, sort_attrs = order_workload_variant(base, "sorted")
        report = CorrectiveQueryProcessor(
            order_catalog(workload, sort_attrs, True),
            workload.sources(),
            polling_interval_seconds=POLLING_INTERVAL,
            order_adaptive=True,
        ).execute(workload.query, poll_step_limit=POLL_STEP_LIMIT)
        if any(
            "merge" in algorithms.values()
            for algorithms in report.details["phase_join_algorithms"]
        ):
            used += 1
    assert used >= 5, f"merge strategy only used on {used} seeds"


@pytest.mark.parametrize("policy", ["round_robin", "shortest_remaining_cost"])
@pytest.mark.parametrize("batch_size", [None, 64])
def test_order_adaptive_serving_matches_reference(policy, batch_size):
    seeds = (3, 7, 11)
    workloads = []
    catalog = Catalog()
    sources: dict[str, object] = {}
    for index, seed in enumerate(seeds):
        base = generate_workload(seed, name_prefix=f"w{index}_")
        workload, sort_attrs = order_workload_variant(base, "sorted")
        promise_catalog = order_catalog(workload, sort_attrs, True)
        for name in workload.relations:
            catalog.register(
                name, workload.relations[name].schema, promise_catalog.statistics(name)
            )
        sources.update(workload.sources())
        workloads.append(workload)

    server = QueryServer(
        catalog,
        sources,
        policy=policy,
        batch_size=batch_size,
        quantum_tuples=POLL_STEP_LIMIT,
        polling_interval_seconds=POLLING_INTERVAL,
        order_adaptive=True,
    )
    for workload in workloads:
        server.submit(workload.query, label=workload.query.name)
    report = server.run()
    assert len(report.served) == len(workloads)
    for served, workload in zip(report.served, workloads):
        canonical_names = _canonical_names(workload)
        reference = Counter(reference_spja(workload.query, workload.relations))
        served_multiset = _canonical_multiset(
            served.rows, served.report.schema.names, canonical_names
        )
        assert served_multiset == reference, (
            f"policy {policy!r} (batch={batch_size}): served query "
            f"{served.label!r} disagrees with the reference on seed "
            f"{workload.seed}:\n{workload.query.describe()}"
        )
    assert report.stats_cache_summary["orderings"] > 0
