"""Tests for the TPC-H-style generator, perturbations and the query workload."""

import pytest

from repro.workloads.generator import TPCHData, TPCHGenerator
from repro.workloads.perturb import displaced_fraction, interleave_relations, reorder_fraction
from repro.workloads.queries import (
    flights_example_query,
    paper_query_workload,
    query_3,
    query_3a,
    query_5,
    query_10,
    query_10a,
)
from repro.workloads.tpch_schema import PRIMARY_KEYS, TPCH_SCHEMAS


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = TPCHGenerator(scale_factor=0.0004, seed=3).generate()
        b = TPCHGenerator(scale_factor=0.0004, seed=3).generate()
        for name in a.relations:
            assert a[name].rows == b[name].rows

    def test_different_seed_differs(self):
        a = TPCHGenerator(scale_factor=0.0004, seed=3).generate()
        b = TPCHGenerator(scale_factor=0.0004, seed=4).generate()
        assert a.orders.rows != b.orders.rows

    def test_relative_sizes_follow_tpch(self, tiny_tpch):
        assert len(tiny_tpch.region) == 5
        assert len(tiny_tpch.nation) == 25
        assert len(tiny_tpch.orders) == 10 * len(tiny_tpch.customer)
        ratio = len(tiny_tpch.lineitem) / len(tiny_tpch.orders)
        assert 2.5 <= ratio <= 5.5
        assert tiny_tpch.total_tuples() == sum(len(r) for r in tiny_tpch.relations.values())

    def test_schemas_match_registry(self, tiny_tpch):
        for name, relation in tiny_tpch.relations.items():
            assert relation.schema.names == TPCH_SCHEMAS[name].names

    def test_orders_and_lineitem_sorted_on_keys(self, tiny_tpch):
        assert tiny_tpch.orders.is_sorted_on("o_orderkey")
        assert tiny_tpch.lineitem.is_sorted_on("l_orderkey")

    def test_foreign_keys_reference_existing_rows(self, tiny_tpch):
        customers = set(tiny_tpch.customer.column("c_custkey"))
        assert set(tiny_tpch.orders.column("o_custkey")) <= customers
        orders = set(tiny_tpch.orders.column("o_orderkey"))
        assert set(tiny_tpch.lineitem.column("l_orderkey")) <= orders
        suppliers = set(tiny_tpch.supplier.column("s_suppkey"))
        assert set(tiny_tpch.lineitem.column("l_suppkey")) <= suppliers

    def test_revenue_consistent_with_price_and_discount(self, tiny_tpch):
        schema = tiny_tpch.lineitem.schema
        price = schema.position("l_extendedprice")
        discount = schema.position("l_discount")
        revenue = schema.position("l_revenue")
        for row in tiny_tpch.lineitem.rows[:200]:
            assert row[revenue] == pytest.approx(row[price] * (1 - row[discount]), abs=0.02)

    def test_skew_concentrates_customer_orders(self, tiny_tpch, tiny_tpch_skewed):
        def top_share(data: TPCHData) -> float:
            counts = {}
            for key in data.orders.column("o_custkey"):
                counts[key] = counts.get(key, 0) + 1
            return max(counts.values()) / len(data.orders)

        assert top_share(tiny_tpch_skewed) > 2 * top_share(tiny_tpch)

    def test_catalog_modes(self, tiny_tpch):
        without = tiny_tpch.catalog(with_cardinalities=False)
        with_stats = tiny_tpch.catalog(with_cardinalities=True)
        assert without.statistics("orders").cardinality is None
        assert with_stats.statistics("orders").cardinality == len(tiny_tpch.orders)
        assert with_stats.statistics("orders").distinct("o_custkey") > 0
        assert with_stats.statistics("customer").is_key("c_custkey")
        assert not with_stats.statistics("lineitem").key_attributes
        assert with_stats.statistics("lineitem").is_sorted_on("l_orderkey")

    def test_as_sources(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        assert set(sources) == set(TPCH_SCHEMAS)

    def test_validation(self):
        with pytest.raises(ValueError):
            TPCHGenerator(scale_factor=0)
        with pytest.raises(ValueError):
            TPCHGenerator(zipf_z=-0.5)


class TestPerturbations:
    def test_reorder_zero_is_identity(self, tiny_tpch):
        perturbed = reorder_fraction(tiny_tpch.orders, 0.0, seed=1)
        assert perturbed.rows == tiny_tpch.orders.rows

    def test_reorder_fraction_displaces_roughly_that_many(self, tiny_tpch):
        perturbed = reorder_fraction(tiny_tpch.lineitem, 0.1, seed=1)
        displaced = displaced_fraction(tiny_tpch.lineitem, perturbed)
        assert 0.04 <= displaced <= 0.12
        assert sorted(perturbed.rows) == sorted(tiny_tpch.lineitem.rows)

    def test_reorder_breaks_sortedness(self, tiny_tpch):
        perturbed = reorder_fraction(tiny_tpch.lineitem, 0.1, seed=1)
        assert not perturbed.is_sorted_on("l_orderkey")

    def test_reorder_validation(self, tiny_tpch):
        with pytest.raises(ValueError):
            reorder_fraction(tiny_tpch.orders, 1.5)

    def test_displaced_fraction_requires_same_size(self, tiny_tpch):
        with pytest.raises(ValueError):
            displaced_fraction(tiny_tpch.orders, tiny_tpch.customer)

    def test_interleave_preserves_content(self, tiny_tpch):
        first = tiny_tpch.orders.slice(0, 100)
        second = tiny_tpch.orders.slice(100, 200)
        merged = interleave_relations([first, second], seed=2)
        assert sorted(merged.rows) == sorted(tiny_tpch.orders.rows[:200])
        assert len(merged) == 200

    def test_interleave_validation(self, tiny_tpch):
        with pytest.raises(ValueError):
            interleave_relations([])
        with pytest.raises(ValueError):
            interleave_relations([tiny_tpch.orders, tiny_tpch.customer])


class TestQueries:
    def test_workload_contents(self):
        workload = paper_query_workload()
        assert set(workload) == {"Q3A", "Q10", "Q10A", "Q5"}

    def test_query_relation_counts(self):
        assert len(query_3().relations) == 3
        assert len(query_3a().relations) == 3
        assert len(query_10().relations) == 4
        assert len(query_10a().relations) == 4
        assert len(query_5().relations) == 6

    def test_variants_drop_date_predicates(self):
        assert "orders" in query_3().selections
        assert "orders" not in query_3a().selections
        assert "orders" in query_10().selections
        assert "orders" not in query_10a().selections

    def test_queries_reference_valid_attributes(self):
        for query in paper_query_workload().values():
            for relation, predicate in query.selections.items():
                schema = TPCH_SCHEMAS[relation]
                for attr in predicate.attributes():
                    assert attr in schema, (query.name, relation, attr)
            for pred in query.join_predicates:
                assert pred.left_attr in TPCH_SCHEMAS[pred.left_relation]
                assert pred.right_attr in TPCH_SCHEMAS[pred.right_relation]
            agg = query.aggregation
            available = {
                name
                for relation in query.relations
                for name in TPCH_SCHEMAS[relation].names
            }
            assert set(agg.group_attributes) <= available
            for term in agg.aggregates:
                if term.attribute:
                    assert term.attribute in available

    def test_queries_return_answers_on_generated_data(self, tiny_tpch, small_tpch):
        from helpers import reference_spja

        sources = tiny_tpch.as_sources()
        for name in ("Q3A", "Q10", "Q10A"):
            query = paper_query_workload()[name]
            rows = reference_spja(query, sources)
            assert rows, f"{name} returned no rows on the generated data"
        # Q5's nation-correlation predicate is very selective; it needs the
        # slightly larger instance to produce answers.
        from repro.baselines.static_executor import StaticExecutor

        report = StaticExecutor(
            small_tpch.catalog(with_cardinalities=True), small_tpch.as_sources()
        ).execute(query_5())
        assert report.rows

    def test_flights_example_query(self):
        query = flights_example_query()
        assert query.relations == ("flights", "travelers", "children")
        assert query.aggregation.aggregates[0].function == "max"

    def test_primary_keys_cover_all_relations(self):
        assert set(PRIMARY_KEYS) == set(TPCH_SCHEMAS)
