"""Tests for the state-structure registry."""

from repro.engine.state.hash_table import HashTableState
from repro.engine.state.registry import StateRegistry, expression_signature
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["k", "v"])


def table_with(n, key="k"):
    table = HashTableState(SCHEMA, key)
    table.insert_many([(i, i) for i in range(n)])
    return table


class TestSignatures:
    def test_expression_signature_is_order_insensitive(self):
        a = expression_signature([("r", 0), ("s", 1)])
        b = expression_signature([("s", 1), ("r", 0)])
        assert a == b


class TestRegistry:
    def test_register_and_lookup(self):
        registry = StateRegistry()
        sig = expression_signature([("r", 0)])
        registry.register(sig, table_with(3), plan_id=0)
        assert sig in registry
        assert registry.lookup(sig).cardinality == 3
        assert len(registry) == 1

    def test_lookup_missing_raises(self):
        registry = StateRegistry()
        try:
            registry.lookup(expression_signature([("r", 0)]))
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_reregistration_keeps_larger_structure(self):
        registry = StateRegistry()
        sig = expression_signature([("r", 0)])
        registry.register(sig, table_with(5), plan_id=0)
        registry.register(sig, table_with(2), plan_id=1)  # smaller: ignored
        assert registry.lookup(sig).cardinality == 5
        registry.register(sig, table_with(9), plan_id=1)
        assert registry.lookup(sig).cardinality == 9

    def test_base_partitions(self):
        registry = StateRegistry()
        registry.register(expression_signature([("r", 0)]), table_with(1), 0)
        registry.register(expression_signature([("r", 1)]), table_with(2), 1)
        registry.register(expression_signature([("r", 0), ("s", 0)]), table_with(3), 0)
        partitions = registry.base_partitions("r")
        assert set(partitions) == {0, 1}
        assert partitions[1].cardinality == 2

    def test_intermediate_entries(self):
        registry = StateRegistry()
        registry.register(expression_signature([("r", 0)]), table_with(1), 0)
        registry.register(expression_signature([("r", 0), ("s", 0)]), table_with(3), 0)
        intermediates = registry.intermediate_entries()
        assert len(intermediates) == 1
        assert intermediates[0].relations == frozenset({"r", "s"})

    def test_entries_for_plan_and_totals(self):
        registry = StateRegistry()
        registry.register(expression_signature([("r", 0)]), table_with(1), 0)
        registry.register(expression_signature([("s", 1)]), table_with(4), 1)
        assert len(registry.entries_for_plan(1)) == 1
        assert registry.total_registered_tuples() == 5

    def test_spill_order_prefers_complex_expressions(self):
        registry = StateRegistry()
        registry.register(expression_signature([("r", 0)]), table_with(100), 0)
        registry.register(
            expression_signature([("r", 0), ("s", 0)]), table_with(10), 0
        )
        order = registry.spill_order()
        assert order[0].relations == frozenset({"r", "s"})

    def test_entry_phase_of(self):
        registry = StateRegistry()
        entry = registry.register(
            expression_signature([("r", 2), ("s", 0)]), table_with(1), 2
        )
        assert entry.phase_of("r") == 2
        assert entry.phases == frozenset({0, 2})

    def test_describe(self):
        registry = StateRegistry()
        registry.register(expression_signature([("r", 0)]), table_with(1), 0, "leaf")
        rows = registry.describe()
        assert rows[0]["description"] == "leaf"
        assert rows[0]["cardinality"] == 1
