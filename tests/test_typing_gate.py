"""The strict-typing gate: mypy --strict over the analysis subsystem.

CI's ``analysis`` job runs this same invocation directly; the test exists so
that developers with mypy installed get the gate locally too.  The container
image used for offline development does not ship mypy, so the test skips
(rather than fails) when the tool is absent — the gate is still enforced in
CI, where mypy is installed explicitly.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The strict surface: the analysis subsystem, the serving layer it
#: certifies for sharding (home of the channel registry), and the two
#: invariant-bearing modules it audits against.  Keep in sync with
#: .github/workflows/ci.yml.
STRICT_TARGETS = (
    "src/repro/analysis",
    "src/repro/serving",
    "src/repro/io",
    "src/repro/engine/cost.py",
    "src/repro/adaptivity/events.py",
)


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy is not installed; the strict gate runs in CI",
)
def test_strict_surface_passes_mypy() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *STRICT_TARGETS],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"mypy --strict failed:\n{result.stdout}\n{result.stderr}"
    )


def test_package_ships_typing_marker() -> None:
    """PEP 561: the package advertises inline types via py.typed."""
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


def test_pyproject_strict_targets_are_real() -> None:
    """Catch the config rotting when modules move."""
    for target in STRICT_TARGETS:
        assert (REPO_ROOT / target).exists(), target
