"""Tests for the experiment command-line runner."""

import pytest

from repro.experiments import cli


class TestParser:
    def test_known_experiments(self):
        parser = cli.build_parser()
        args = parser.parse_args(["fig5", "--scale", "0.001", "--seed", "3"])
        assert args.experiment == "fig5"
        assert args.scale == 0.001
        assert args.seed == 3

    def test_unknown_experiment_rejected(self):
        parser = cli.build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_experiment_registry_complete(self):
        assert set(cli.EXPERIMENTS) == {"fig2", "fig3", "fig5", "fig6", "sec4.5", "ablations"}


class TestMain:
    def test_run_single_experiment(self, capsys):
        exit_code = cli.main(["sec4.5", "--scale", "0.0006"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Section 4.5" in output
        assert "fraction_seen" in output
        assert "overhead" in output

    def test_run_fig6_small(self, capsys):
        exit_code = cli.main(["fig6", "--scale", "0.0005"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "adjustable_window" in output
