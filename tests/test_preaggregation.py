"""Tests for adjustable-window pre-aggregation (paper Section 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preaggregation import (
    AdjustableWindowPreAggregate,
    WindowDecision,
    WindowPolicy,
    WindowedPreAggregator,
)
from repro.engine.operators.aggregate import GroupAccumulator, HashAggregate
from repro.engine.operators.base import OperatorError
from repro.engine.operators.scan import Scan
from repro.relational.expressions import Aggregate
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["g", "v"])


def relation_from_groups(groups):
    """groups: list of (group, value) pairs."""
    return Relation("t", SCHEMA, list(groups))


def repeated_groups(n, distinct):
    return relation_from_groups([(i % distinct, i) for i in range(n)])


def unique_groups(n):
    return relation_from_groups([(i, i) for i in range(n)])


AGGS = [Aggregate("sum", "v", "total"), Aggregate("count", None, "n")]


def final_results(operator):
    final = GroupAccumulator(operator.schema, ["g"], AGGS, input_is_partial=True)
    final.accumulate_many(operator.run_to_completion())
    return sorted(final.results())


class TestWindowPolicy:
    def test_grow_on_effective_window(self):
        policy = WindowPolicy(initial_window=8, grow_factor=2, effectiveness_threshold=0.75)
        assert policy.next_size(8, reduction_ratio=0.5) == 16

    def test_shrink_on_ineffective_window(self):
        policy = WindowPolicy(initial_window=8, shrink_factor=2)
        assert policy.next_size(8, reduction_ratio=0.95) == 4

    def test_bounds_respected(self):
        policy = WindowPolicy(initial_window=8, min_window=2, max_window=16)
        assert policy.next_size(16, 0.1) == 16
        assert policy.next_size(2, 1.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowPolicy(min_window=0)
        with pytest.raises(ValueError):
            WindowPolicy(initial_window=100, max_window=50)
        with pytest.raises(ValueError):
            WindowPolicy(grow_factor=1)
        with pytest.raises(ValueError):
            WindowPolicy(effectiveness_threshold=0.0)


class TestCorrectness:
    def test_equals_direct_aggregation_on_repetitive_data(self):
        relation = repeated_groups(500, distinct=10)
        window_op = AdjustableWindowPreAggregate(Scan(relation), ["g"], AGGS)
        direct = HashAggregate(Scan(relation), ["g"], AGGS)
        assert final_results(window_op) == sorted(direct.run_to_completion())

    def test_equals_direct_aggregation_on_unique_data(self):
        relation = unique_groups(300)
        window_op = AdjustableWindowPreAggregate(Scan(relation), ["g"], AGGS)
        direct = HashAggregate(Scan(relation), ["g"], AGGS)
        assert final_results(window_op) == sorted(direct.run_to_completion())

    def test_requires_group_attributes(self):
        with pytest.raises(OperatorError):
            AdjustableWindowPreAggregate(Scan(unique_groups(5)), [], AGGS)


class TestAdaptivity:
    def test_window_grows_on_repetitive_data(self):
        relation = repeated_groups(2000, distinct=4)
        operator = AdjustableWindowPreAggregate(
            Scan(relation), ["g"], AGGS, policy=WindowPolicy(initial_window=16)
        )
        operator.run_to_completion()
        assert operator.current_window_size > 16
        assert operator.overall_reduction < 0.25
        sizes = [d.window_size for d in operator.window_decisions]
        assert sizes == sorted(sizes)  # monotonically growing here

    def test_window_shrinks_to_passthrough_on_unique_data(self):
        relation = unique_groups(2000)
        operator = AdjustableWindowPreAggregate(
            Scan(relation), ["g"], AGGS, policy=WindowPolicy(initial_window=64)
        )
        rows = operator.run_to_completion()
        assert len(rows) == len(relation)  # no coalescing possible
        assert operator.current_window_size <= WindowPolicy().reprobe_window
        assert any(d.next_window_size < d.window_size for d in operator.window_decisions)

    def test_reprobe_after_passthrough(self):
        """Unique prefix then heavily repetitive suffix: the operator recovers."""
        prefix = [(i, i) for i in range(300)]
        suffix = [(9999, i) for i in range(8000)]
        relation = relation_from_groups(prefix + suffix)
        policy = WindowPolicy(initial_window=32, reprobe_interval=1024, reprobe_window=16)
        operator = AdjustableWindowPreAggregate(Scan(relation), ["g"], AGGS, policy=policy)
        operator.run_to_completion()
        assert operator.current_window_size > 1
        assert operator.overall_reduction < 0.9

    def test_decisions_record_reduction(self):
        relation = repeated_groups(200, distinct=2)
        operator = AdjustableWindowPreAggregate(
            Scan(relation), ["g"], AGGS, policy=WindowPolicy(initial_window=50)
        )
        operator.run_to_completion()
        decision = operator.window_decisions[0]
        assert isinstance(decision, WindowDecision)
        assert decision.tuples_in == 50
        assert decision.tuples_out == 2
        assert decision.reduction_ratio == pytest.approx(2 / 50)


class TestPushInterface:
    def test_feed_and_flush(self):
        pre = WindowedPreAggregator(
            SCHEMA, ["g"], AGGS, policy=WindowPolicy(initial_window=4)
        )
        emitted = []
        for row in [(1, 10), (1, 20), (2, 5), (2, 5), (1, 1)]:
            emitted.extend(pre.feed(row))
        emitted.extend(pre.flush())
        final = GroupAccumulator(pre.output_schema, ["g"], AGGS, input_is_partial=True)
        final.accumulate_many(emitted)
        results = dict((row[0], (row[1], row[2])) for row in final.results())
        assert results == {1: (31, 3), 2: (10, 2)}

    def test_output_schema(self):
        pre = WindowedPreAggregator(SCHEMA, ["g"], AGGS)
        assert pre.output_schema.names == ("g", "total", "n")

    def test_overall_reduction_tracking(self):
        pre = WindowedPreAggregator(
            SCHEMA, ["g"], AGGS, policy=WindowPolicy(initial_window=10)
        )
        for i in range(100):
            pre.feed((0, i))
        pre.flush()
        assert pre.overall_reduction < 0.2
        assert pre.current_window_size > 10
        assert pre.window_decisions


# ---------------------------------------------------------------------------
# Property: windowed pre-aggregation followed by coalescing equals direct
# aggregation for every input and window policy — the distributivity of
# aggregation over union that makes the operator safe to insert anywhere.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.integers(-50, 50)),
        max_size=150,
    ),
    initial_window=st.integers(min_value=1, max_value=32),
    threshold=st.floats(min_value=0.1, max_value=1.0),
)
def test_property_windowed_preaggregation_is_exact(rows, initial_window, threshold):
    relation = relation_from_groups(rows)
    policy = WindowPolicy(
        initial_window=initial_window, effectiveness_threshold=threshold
    )
    operator = AdjustableWindowPreAggregate(Scan(relation), ["g"], AGGS, policy=policy)
    direct = HashAggregate(Scan(relation), ["g"], AGGS)
    assert final_results(operator) == sorted(direct.run_to_completion())
