"""Edge-case coverage for the network models and the order detector.

Satellite of the batched-execution PR: the batched cursor leans on network
models for its prefetch/arrival logic, so their corner cases — zero-length
relations, single-tuple bursts, long disconnection windows — get explicit
tests, as do the order detector's degenerate streams (empty, all-equal keys,
strictly descending).
"""

from __future__ import annotations

import pytest

from repro.engine.pipelined import SourceCursor
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.network import (
    BurstyNetworkModel,
    ConstantRateNetworkModel,
    InstantNetworkModel,
)
from repro.sources.remote import RemoteSource
from repro.stats.order_detector import OrderDetector, OrderState


class TestNetworkModelEdges:
    @pytest.mark.parametrize(
        "model",
        [
            InstantNetworkModel(),
            ConstantRateNetworkModel(100.0, latency=0.5),
            BurstyNetworkModel(seed=5),
        ],
        ids=["instant", "constant", "bursty"],
    )
    def test_zero_tuples_yields_empty_schedule(self, model):
        assert list(model.arrival_times(0)) == []

    @pytest.mark.parametrize(
        "model",
        [
            InstantNetworkModel(),
            ConstantRateNetworkModel(100.0, latency=0.5),
            BurstyNetworkModel(seed=5),
        ],
        ids=["instant", "constant", "bursty"],
    )
    def test_single_tuple(self, model):
        arrivals = list(model.arrival_times(1))
        assert len(arrivals) == 1
        assert arrivals[0] >= 0.0

    def test_single_tuple_bursts(self):
        """mean_burst_tuples=1 degenerates to one tuple per burst: every gap
        can strike, yet the schedule stays non-decreasing and complete."""
        model = BurstyNetworkModel(
            burst_rate=1000.0, mean_burst_tuples=1, mean_gap_seconds=0.1, seed=3
        )
        arrivals = list(model.arrival_times(200))
        assert len(arrivals) == 200
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] == pytest.approx(model.latency)

    def test_disconnection_windows(self):
        """Very long gaps model a link that repeatedly disconnects; the
        schedule must contain quiet windows of roughly that magnitude."""
        model = BurstyNetworkModel(
            burst_rate=10_000.0,
            mean_burst_tuples=10,
            mean_gap_seconds=5.0,
            latency=0.0,
            seed=11,
        )
        arrivals = list(model.arrival_times(100))
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert max(gaps) > 1.0, "expected at least one disconnection window"
        # Within a burst tuples are back to back.
        assert min(gaps) == pytest.approx(1.0 / model.burst_rate)

    def test_bursty_determinism_and_seed_sensitivity(self):
        def schedule(seed):
            return list(
                BurstyNetworkModel(mean_burst_tuples=8, seed=seed).arrival_times(64)
            )

        assert schedule(9) == schedule(9)
        assert schedule(9) != schedule(10)

    def test_constant_rate_validation(self):
        with pytest.raises(ValueError):
            ConstantRateNetworkModel(0.0)
        with pytest.raises(ValueError):
            BurstyNetworkModel(burst_rate=-1.0)
        with pytest.raises(ValueError):
            BurstyNetworkModel(mean_burst_tuples=0)
        with pytest.raises(ValueError):
            BurstyNetworkModel(mean_gap_seconds=-0.1)

    def test_expected_transfer_seconds_is_sane(self):
        model = BurstyNetworkModel(
            burst_rate=1000.0, mean_burst_tuples=50, mean_gap_seconds=0.2, seed=1
        )
        arrivals = list(model.arrival_times(500))
        estimate = model.expected_transfer_seconds(500)
        assert 0.2 * estimate < arrivals[-1] < 5.0 * estimate


class TestRemoteSourceEdges:
    def _empty_relation(self):
        return Relation("empty", Schema.from_names(["a", "b"]), [])

    def test_zero_length_relation_over_any_network(self):
        for network in (
            InstantNetworkModel(),
            ConstantRateNetworkModel(10.0),
            BurstyNetworkModel(seed=2),
        ):
            source = RemoteSource(self._empty_relation(), network)
            assert len(source) == 0
            assert list(source.open_stream()) == []
            assert list(source.open_stream_batches(8)) == []
            cursor = SourceCursor("empty", source)
            assert cursor.peek_arrival() is None
            assert cursor.read_batch(16) == ([], None)

    def test_single_tuple_relation(self):
        relation = Relation("one", Schema.from_names(["a"]), [(42,)])
        source = RemoteSource(relation, BurstyNetworkModel(seed=4))
        items = list(source.open_stream())
        assert len(items) == 1
        assert items[0][0] == (42,)
        assert items[0][1] >= 0.0


class TestOrderDetectorEdges:
    def test_empty_stream(self):
        detector = OrderDetector()
        assert detector.state() is OrderState.UNKNOWN
        assert not detector.is_sorted()
        assert detector.ascending_fraction == 1.0
        assert detector.descending_fraction == 1.0
        assert detector.progress_fraction(0.0, 10.0) is None
        assert detector.min_value is None and detector.max_value is None

    def test_single_value_stream(self):
        detector = OrderDetector()
        detector.add(7)
        assert detector.state() is OrderState.UNKNOWN
        assert detector.min_value == detector.max_value == 7

    def test_all_equal_keys_count_as_sorted(self):
        detector = OrderDetector()
        detector.add_many([5, 5, 5, 5, 5])
        assert detector.state() is OrderState.ASCENDING
        assert detector.is_sorted()
        assert detector.ascending_fraction == 1.0
        assert detector.descending_fraction == 1.0
        # A constant stream has a zero-span domain: no progress estimate.
        assert detector.progress_fraction(5, 5) is None

    def test_strictly_descending_stream(self):
        detector = OrderDetector()
        detector.add_many([9, 7, 5, 3, 1])
        assert detector.state() is OrderState.DESCENDING
        assert detector.is_sorted()
        assert detector.ascending_fraction == 0.0
        assert detector.descending_fraction == 1.0
        # Progress extrapolation mirrors the high-water logic via min_value
        # for descending streams: the stream has descended all the way to
        # the bottom of [1, 9], so it is fully consumed.
        assert detector.progress_fraction(1, 9) == 1.0
        assert detector.min_value == 1 and detector.max_value == 9

    def test_tolerance_keeps_mostly_sorted_streams_sorted(self):
        strict = OrderDetector(tolerance=0.0)
        lenient = OrderDetector(tolerance=0.25)
        values = [1, 2, 3, 2, 4, 5, 6, 7, 8, 9]
        strict.add_many(values)
        lenient.add_many(values)
        assert strict.state() is OrderState.UNORDERED
        assert lenient.state() is OrderState.ASCENDING

    def test_progress_fraction_clamps_to_unit_interval(self):
        detector = OrderDetector()
        detector.add_many([2, 4, 6])
        assert detector.progress_fraction(0, 12) == pytest.approx(0.5)
        assert detector.progress_fraction(0, 4) == 1.0
        detector_low = OrderDetector()
        detector_low.add_many([-5, -4])
        assert detector_low.progress_fraction(0, 10) == 0.0
