"""Tests for the AdaptiveIntegrationSystem facade."""

import pytest

from helpers import assert_same_aggregates, reference_spja
from repro.integration.system import AdaptiveIntegrationSystem, UnknownStrategyError
from repro.relational.catalog import TableStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.description import SourceDescription
from repro.sources.network import ConstantRateNetworkModel
from repro.sources.remote import RemoteSource
from repro.workloads.queries import query_3a


@pytest.fixture
def system(tiny_tpch):
    system = AdaptiveIntegrationSystem()
    system.register_sources(tiny_tpch.relations.values())
    return system


class TestRegistration:
    def test_register_sources(self, system, tiny_tpch):
        assert set(system.source_names()) == set(tiny_tpch.relations)
        descriptions = system.describe_sources()
        assert len(descriptions) == 6
        assert all(not d["remote"] for d in descriptions)

    def test_register_with_statistics(self, tiny_tpch):
        system = AdaptiveIntegrationSystem()
        system.register_source(
            tiny_tpch.orders, statistics=TableStatistics(cardinality=len(tiny_tpch.orders))
        )
        assert system.catalog.statistics("orders").cardinality == len(tiny_tpch.orders)

    def test_register_remote_source(self, tiny_tpch):
        system = AdaptiveIntegrationSystem()
        remote = RemoteSource(tiny_tpch.orders, ConstantRateNetworkModel(10_000))
        name = system.register_source(remote)
        assert name == "orders"
        assert system.describe_sources()[0]["remote"] is True

    def test_register_with_description_maps_to_global_schema(self):
        source_schema = Schema.from_names(["id", "segment"], relation="crm")
        crm = Relation("crm_customers", source_schema, [(1, "BUILDING")])
        description = SourceDescription(
            source_name="crm_customers",
            global_relation="customer",
            attribute_mapping={"id": "c_custkey", "segment": "c_mktsegment"},
        )
        system = AdaptiveIntegrationSystem()
        name = system.register_source(crm, description=description)
        assert name == "customer"
        assert system.catalog.schema("customer").names == ("c_custkey", "c_mktsegment")


class TestExecution:
    def test_unknown_strategy_rejected(self, system):
        with pytest.raises(UnknownStrategyError):
            system.execute(query_3a(), strategy="magic")

    def test_unregistered_source_rejected(self, tiny_tpch):
        system = AdaptiveIntegrationSystem()
        system.register_source(tiny_tpch.orders)
        with pytest.raises(KeyError):
            system.execute(query_3a())

    @pytest.mark.parametrize("strategy", ["static", "corrective", "plan_partitioning"])
    def test_all_strategies_agree(self, system, tiny_tpch, strategy):
        expected = reference_spja(query_3a(), tiny_tpch.as_sources())
        answer = system.execute(query_3a(), strategy=strategy)
        assert_same_aggregates(answer.rows, expected)
        assert answer.simulated_seconds > 0
        assert answer.strategy == strategy
        assert len(answer) == len(expected)

    def test_options_forwarded_to_corrective(self, system):
        answer = system.execute(
            query_3a(),
            strategy="corrective",
            polling_interval_seconds=0.05,
            switch_threshold=0.99,
            max_phases=3,
        )
        assert answer.report.num_phases <= 3

    def test_answer_to_dicts_for_spj(self, system, tiny_tpch):
        from repro.relational.algebra import SPJAQuery
        from repro.relational.expressions import JoinPredicate

        query = SPJAQuery(
            name="spj",
            relations=("customer", "orders"),
            join_predicates=(JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),),
        )
        answer = system.execute(query, strategy="static")
        dicts = answer.to_dicts()
        assert len(dicts) == len(answer.rows)
        assert "o_orderkey" in dicts[0]

    def test_aggregate_answer_to_dicts_raises_without_schema(self, system):
        answer = system.execute(query_3a(), strategy="static")
        if answer.schema is None:
            with pytest.raises(ValueError):
                answer.to_dicts()
