"""Tests for join enumeration, the cost model and the optimizer front-end."""

import pytest

from repro.engine.cost import CostModel
from repro.optimizer.cost_model import PlanCostModel
from repro.optimizer.enumerator import JoinEnumerator, Optimizer
from repro.optimizer.plans import JoinTree
from repro.optimizer.statistics import ObservedStatistics, SelectivityEstimator
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate
from repro.workloads.queries import paper_query_workload, query_3a, query_5, query_10


class TestCostModel:
    def test_tree_cost_monotone_in_cardinality(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = query_3a()
        estimator = SelectivityEstimator(catalog, query)
        model = PlanCostModel(CostModel())
        small = model.estimate_tree(query, JoinTree.left_deep(["customer", "orders", "lineitem"]), estimator)
        assert small.total_cost > 0
        assert small.output_cardinality > 0
        assert frozenset({"customer", "orders"}) in small.cardinalities

    def test_scaled(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = query_3a()
        estimator = SelectivityEstimator(catalog, query)
        estimate = PlanCostModel().estimate_tree(
            query, JoinTree.left_deep(["customer", "orders", "lineitem"]), estimator
        )
        assert estimate.scaled(0.5).total_cost == pytest.approx(estimate.total_cost / 2)


class TestJoinEnumerator:
    def test_best_tree_covers_all_relations(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        for query in paper_query_workload().values():
            estimator = SelectivityEstimator(catalog, query)
            tree = JoinEnumerator(query, estimator).best_tree()
            assert tree.relations() == frozenset(query.relations)

    def test_no_cross_products(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = query_5()
        estimator = SelectivityEstimator(catalog, query)
        tree = JoinEnumerator(query, estimator).best_tree()
        # every internal node must be connected by at least one predicate
        for node in tree.internal_nodes():
            assert query.predicates_between(
                node.left.relations(), node.right.relations()
            ), f"cross product at {node}"

    def test_best_tree_avoids_expensive_intermediate(self, tiny_tpch):
        """With true cardinalities, joining customer before lineitem must win for Q3A."""
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = query_3a()
        estimator = SelectivityEstimator(catalog, query)
        enumerator = JoinEnumerator(query, estimator)
        best = enumerator.best_tree()
        good = enumerator.cost_of(best).total_cost
        bad = enumerator.cost_of(
            JoinTree.join(
                JoinTree.leaf("customer"),
                JoinTree.join(JoinTree.leaf("orders"), JoinTree.leaf("lineitem")),
            )
        ).total_cost
        assert good <= bad
        # customer must join orders before lineitem enters
        order = best.leaf_order()
        assert order.index("customer") < order.index("lineitem")

    def test_left_deep_only_mode(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = query_5()
        estimator = SelectivityEstimator(catalog, query)
        tree = JoinEnumerator(query, estimator, bushy=False).best_tree()
        assert tree.is_left_deep()

    def test_unconnected_relations_raise(self, tiny_tpch):
        query = SPJAQuery(
            name="pair",
            relations=("customer", "orders"),
            join_predicates=(JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),),
        )
        catalog = tiny_tpch.catalog()
        estimator = SelectivityEstimator(catalog, query)
        enumerator = JoinEnumerator(query, estimator)
        with pytest.raises(ValueError):
            enumerator._best(frozenset({"customer"}) | frozenset({"nonexistent"}))


class TestOptimizer:
    def test_optimize_produces_valid_plan(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        optimizer = Optimizer(catalog)
        for query in paper_query_workload().values():
            plan = optimizer.optimize(query)
            assert plan.join_tree.relations() == frozenset(query.relations)
            assert plan.estimated_cost > 0

    def test_window_preaggregation_points_inserted(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        optimizer = Optimizer(catalog)
        plan = optimizer.optimize(query_3a(), preaggregation="window")
        assert len(plan.preagg_points) == 1
        assert plan.preagg_points[0].mode == "window"

    def test_traditional_preaggregation_only_where_beneficial(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        optimizer = Optimizer(catalog)
        beneficial = optimizer.optimize(query_3a(), preaggregation="traditional")
        not_beneficial = optimizer.optimize(query_5(), preaggregation="traditional")
        assert len(beneficial.preagg_points) == 1
        assert len(not_beneficial.preagg_points) == 0

    def test_no_preaggregation_for_spj(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        query = SPJAQuery(
            name="spj",
            relations=("customer", "orders"),
            join_predicates=(JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),),
        )
        plan = Optimizer(catalog).optimize(query, preaggregation="window")
        assert plan.preagg_points == ()

    def test_observed_statistics_change_plan_choice(self, tiny_tpch):
        """Feeding the optimizer an observed explosion steers it away from that join."""
        catalog = tiny_tpch.catalog(with_cardinalities=False)
        query = query_10()
        optimizer = Optimizer(catalog)
        baseline = optimizer.optimize_tree(query)

        observed = ObservedStatistics()
        # Claim the baseline plan's first join explodes: selectivity near 1.
        first_join = next(iter(baseline.internal_nodes())).relations
        for node in baseline.subtrees():
            if not node.is_leaf:
                first_join = node.relations()
                break
        observed.record_selectivity(first_join, 0.9)
        revised = optimizer.optimize_tree(query, observed)
        assert revised.leaf_order() != baseline.leaf_order() or str(revised) != str(baseline)

    def test_cost_of_tree_helper(self, tiny_tpch):
        catalog = tiny_tpch.catalog(with_cardinalities=True)
        optimizer = Optimizer(catalog)
        query = query_3a()
        tree = JoinTree.left_deep(["customer", "orders", "lineitem"])
        estimate = optimizer.cost_of_tree(query, tree)
        assert estimate.total_cost > 0
