"""Unit tests for the multi-query serving layer."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.corrective import CorrectiveQueryProcessor
from repro.integration.system import AdaptiveIntegrationSystem
from repro.optimizer.statistics import ObservedStatistics
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog
from repro.relational.expressions import JoinPredicate
from repro.serving import (
    POLICIES,
    QueryServer,
    RoundRobinPolicy,
    SharedStatisticsCache,
    ShortestRemainingCostPolicy,
    make_policy,
)
from repro.sources.network import BurstyNetworkModel
from repro.sources.remote import RemoteSource
from repro.stats.histogram import DynamicCompressedHistogram
from repro.workloads.queries import query_3a, query_5, query_10a


def _people_orders_query() -> SPJAQuery:
    return SPJAQuery(
        name="people_orders",
        relations=("people", "simple_orders"),
        join_predicates=(
            JoinPredicate("people", "pid", "simple_orders", "o_pid"),
        ),
    )


class TestSharedStatisticsCache:
    def test_seed_for_filters_by_query_relations(self):
        cache = SharedStatisticsCache()
        cache.selectivities[frozenset(("a", "b"))] = 0.25
        cache.selectivities[frozenset(("a", "z"))] = 0.5
        cache.multiplicative_factors[frozenset((("a", "x"), ("b", "y")))] = 3.0
        cache.multiplicative_factors[frozenset((("z", "x"), ("b", "y")))] = 9.0
        query = SPJAQuery(
            name="q",
            relations=("a", "b", "c"),
            join_predicates=(
                JoinPredicate("a", "x", "b", "y"),
                JoinPredicate("b", "y", "c", "w"),
            ),
        )
        seed = cache.seed_for(query)
        assert seed.selectivity_of(("a", "b")) == 0.25
        assert seed.selectivity_of(("a", "z")) is None
        assert len(seed.multiplicative_factors) == 1
        assert cache.queries_seeded == 1

    def test_seed_for_returns_none_when_nothing_applies(self):
        cache = SharedStatisticsCache()
        cache.selectivities[frozenset(("x", "y"))] = 0.1
        query = SPJAQuery(name="q", relations=("a",), join_predicates=())
        assert cache.seed_for(query) is None
        assert cache.queries_seeded == 0

    def test_absorb_learns_exhausted_cardinalities_only(self):
        cache = SharedStatisticsCache()
        observed = ObservedStatistics()
        observed.record_source("done", 120, 100, exhausted=True)
        observed.record_source("partial", 50, 50, exhausted=False)
        observed.record_selectivity(("done", "partial"), 0.4)
        cache.absorb(observed)
        assert cache.cardinalities == {"done": 120}
        assert cache.selectivities[frozenset(("done", "partial"))] == 0.4

    def test_absorb_keeps_max_multiplicative_factor(self):
        cache = SharedStatisticsCache()
        predicate = JoinPredicate("a", "x", "b", "y")
        first, second = ObservedStatistics(), ObservedStatistics()
        first.flag_multiplicative(predicate, 4.0)
        second.flag_multiplicative(predicate, 2.0)
        cache.absorb(first)
        cache.absorb(second)
        (factor,) = cache.multiplicative_factors.values()
        assert factor == 4.0

    def test_apply_cardinalities_publishes_into_catalog(self, people, simple_orders):
        catalog = Catalog()
        catalog.register_relation(people)
        catalog.register_relation(simple_orders)
        cache = SharedStatisticsCache()
        cache.cardinalities["people"] = 5
        cache.cardinalities["unknown_relation"] = 7
        assert cache.apply_cardinalities(catalog) == 1
        assert catalog.statistics("people").cardinality == 5
        # Second application is a no-op.
        assert cache.apply_cardinalities(catalog) == 0

    def test_histogram_store(self):
        cache = SharedStatisticsCache()
        histogram = DynamicCompressedHistogram(bucket_target=10)
        histogram.add_many(range(50))
        cache.record_histogram("lineitem", "l_orderkey", histogram)
        assert cache.histogram("lineitem", "l_orderkey") is histogram
        assert cache.histogram("lineitem", "l_suppkey") is None
        assert cache.summary()["histograms"] == 1


class _StubSession:
    def __init__(self, index, last_granted_turn, remaining):
        self.index = index
        self.last_granted_turn = last_granted_turn
        self._remaining = remaining

    def remaining_cost_estimate(self):
        return self._remaining


class TestSchedulingPolicies:
    def test_make_policy_resolves_names_and_instances(self):
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        policy = ShortestRemainingCostPolicy()
        assert make_policy(policy) is policy
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("fifo")
        assert set(POLICIES) == {"round_robin", "shortest_remaining_cost"}

    def test_round_robin_picks_least_recently_served(self):
        sessions = [
            _StubSession(0, last_granted_turn=5, remaining=1.0),
            _StubSession(1, last_granted_turn=2, remaining=9.0),
            _StubSession(2, last_granted_turn=-1, remaining=9.0),
        ]
        assert RoundRobinPolicy().pick(sessions, now=0.0).index == 2

    def test_shortest_remaining_cost_picks_smallest_estimate(self):
        sessions = [
            _StubSession(0, last_granted_turn=-1, remaining=100.0),
            _StubSession(1, last_granted_turn=-1, remaining=10.0),
            _StubSession(2, last_granted_turn=-1, remaining=10.0),
        ]
        # Smallest estimate wins; admission order breaks the tie.
        assert ShortestRemainingCostPolicy().pick(sessions, now=0.0).index == 1


class TestQueryServer:
    def _server(self, people, simple_orders, **kwargs):
        catalog = Catalog()
        catalog.register_relation(people)
        catalog.register_relation(simple_orders)
        sources = {"people": people, "simple_orders": simple_orders}
        kwargs.setdefault("polling_interval_seconds", 0.0001)
        kwargs.setdefault("quantum_tuples", 3)
        return QueryServer(catalog, sources, **kwargs)

    def test_submit_validates_sources_and_admission(self, people, simple_orders):
        server = self._server(people, simple_orders)
        with pytest.raises(KeyError, match="unregistered"):
            server.submit(
                SPJAQuery(name="bad", relations=("ghost",), join_predicates=())
            )
        with pytest.raises(ValueError, match="non-negative"):
            server.submit(_people_orders_query(), admit_at=-1.0)
        with pytest.raises(ValueError, match="quantum_tuples"):
            self._server(people, simple_orders, quantum_tuples=0)

    def test_duplicate_labels_are_uniquified(self, people, simple_orders):
        server = self._server(people, simple_orders)
        first = server.submit(_people_orders_query(), label="same")
        second = server.submit(_people_orders_query(), label="same")
        assert first == "same"
        assert second != "same"

    def test_server_is_single_use(self, people, simple_orders):
        server = self._server(people, simple_orders)
        server.submit(_people_orders_query())
        server.run()
        with pytest.raises(RuntimeError, match="already run"):
            server.run()
        with pytest.raises(RuntimeError, match="already run"):
            server.submit(_people_orders_query())

    def test_concurrent_sessions_interleave_and_match_solo(
        self, people, simple_orders
    ):
        server = self._server(people, simple_orders)
        for index in range(3):
            server.submit(_people_orders_query(), label=f"q{index}")
        report = server.run()
        assert len(report.served) == 3
        # With a tiny quantum every session needs several grants, and the
        # round-robin policy interleaves them rather than running serially.
        assert all(query.quanta >= 3 for query in report.served)
        grants_span = report.total_quanta
        assert grants_span >= sum(query.quanta for query in report.served)

        catalog = Catalog()
        catalog.register_relation(people)
        catalog.register_relation(simple_orders)
        solo = CorrectiveQueryProcessor(
            catalog,
            {"people": people, "simple_orders": simple_orders},
            polling_interval_seconds=0.0001,
        ).execute(_people_orders_query(), poll_step_limit=3)
        for served in report.served:
            assert Counter(served.rows) == Counter(solo.rows)

    def test_staggered_admission_controls_start_times(self, people, simple_orders):
        server = self._server(people, simple_orders)
        server.submit(_people_orders_query(), admit_at=0.0, label="early")
        server.submit(_people_orders_query(), admit_at=5.0, label="late")
        report = server.run()
        by_label = {query.label: query for query in report.served}
        late = by_label["late"]
        early = by_label["early"]
        # The early query finishes long before the late one is admitted; the
        # server's clock then jumps to the late admission time.
        assert early.finished_at < 5.0
        assert late.started_at == pytest.approx(5.0)
        assert late.latency == pytest.approx(late.finished_at - 5.0)
        assert report.makespan >= late.finished_at - report.served[0].admitted_at - 0.0

    def test_report_statistics_shape(self, people, simple_orders):
        server = self._server(people, simple_orders)
        server.submit(_people_orders_query())
        server.submit(_people_orders_query())
        report = server.run()
        assert report.policy == "round_robin"
        assert report.throughput() > 0
        assert report.latency_percentile(0.5) <= report.latency_percentile(0.95)
        assert report.latency_percentile(0.95) <= report.makespan
        rows = report.summary_rows()
        assert len(rows) == 2
        aggregate = report.aggregate_summary()
        assert aggregate["queries"] == 2
        assert aggregate["p50_latency_seconds"] <= aggregate["p95_latency_seconds"]

    def test_learned_statistics_flow_between_sessions(self, people, simple_orders):
        cache = SharedStatisticsCache()
        server = self._server(people, simple_orders, stats_cache=cache)
        server.submit(_people_orders_query(), admit_at=0.0)
        server.submit(_people_orders_query(), admit_at=1.0)
        server.run()
        # The first query exhausts both sources; their exact cardinalities
        # are learned and published into the server catalog before the
        # second query is activated.
        assert cache.cardinalities["people"] == len(people)
        assert cache.cardinalities["simple_orders"] == len(simple_orders)
        assert server.catalog.statistics("people").cardinality == len(people)
        assert cache.queries_absorbed == 2

    def test_share_statistics_can_be_disabled(self, people, simple_orders):
        cache = SharedStatisticsCache()
        server = self._server(
            people, simple_orders, stats_cache=cache, share_statistics=False
        )
        server.submit(_people_orders_query(), admit_at=0.0)
        server.submit(_people_orders_query(), admit_at=1.0)
        server.run()
        assert cache.queries_seeded == 0
        assert server.catalog.statistics("people").cardinality is None


class TestRemoteSourceSharing:
    def _remote(self, relation, seed):
        return RemoteSource(
            relation,
            BurstyNetworkModel(
                burst_rate=50_000.0,
                mean_burst_tuples=4,
                mean_gap_seconds=0.01,
                latency=0.002,
                seed=seed,
            ),
        )

    def test_sessions_share_one_arrival_schedule(self, people, simple_orders):
        people_src = self._remote(people, 3)
        orders_src = self._remote(simple_orders, 4)
        catalog = Catalog()
        catalog.register_relation(people)
        catalog.register_relation(simple_orders)
        server = QueryServer(
            catalog,
            {"people": people_src, "simple_orders": orders_src},
            polling_interval_seconds=0.001,
            quantum_tuples=2,
        )
        server.submit(_people_orders_query(), label="a")
        server.submit(_people_orders_query(), label="b")
        report = server.run()
        # Priming materialized one schedule; both sessions opened streams
        # over the same source objects.
        assert people_src.schedule_materialized
        assert people_src.open_count >= 2
        assert report.source_opens["people"] == people_src.open_count
        # Arrival waits actually showed up on the shared clock.
        assert report.clock_wait_seconds >= 0.0

        solo = CorrectiveQueryProcessor(
            catalog.copy(),
            {"people": self._remote(people, 3), "simple_orders": self._remote(simple_orders, 4)},
            polling_interval_seconds=0.001,
        ).execute(_people_orders_query(), poll_step_limit=2)
        for served in report.served:
            assert Counter(served.rows) == Counter(solo.rows)


class TestSystemServeFacade:
    def _system(self, tiny_tpch):
        system = AdaptiveIntegrationSystem()
        for relation in tiny_tpch.relations.values():
            system.register_source(relation)
        return system

    def test_serve_matches_solo_execute(self, tiny_tpch):
        system = self._system(tiny_tpch)
        queries = [query_3a(), query_10a(), query_5()]
        report = system.serve(queries, policy="shortest_remaining_cost")
        assert len(report.served) == 3
        for query, served in zip(queries, report.served):
            solo = self._system(tiny_tpch).execute(query, strategy="corrective")
            assert Counter(served.rows) == Counter(solo.rows), query.name

    def test_serve_validates_inputs(self, tiny_tpch):
        system = self._system(tiny_tpch)
        with pytest.raises(ValueError, match="at least one"):
            system.serve([])
        with pytest.raises(ValueError, match="admission_times"):
            system.serve([query_3a()], admission_times=[0.0, 1.0])
        with pytest.raises(KeyError, match="unregistered"):
            AdaptiveIntegrationSystem().serve([query_3a()])

    def test_stats_cache_carries_across_serve_calls(self, tiny_tpch):
        system = self._system(tiny_tpch)
        cache = SharedStatisticsCache()
        system.serve([query_3a()], stats_cache=cache)
        absorbed_once = cache.queries_absorbed
        system.serve([query_3a()], stats_cache=cache)
        assert cache.queries_absorbed > absorbed_once
        assert cache.queries_seeded >= 1
        assert cache.cardinalities  # exhausted sources were learned
