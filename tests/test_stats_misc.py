"""Tests for order detection, distinct counting, uniqueness and Zipf sampling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distinct import DistinctCounter, UniquenessDetector
from repro.stats.order_detector import OrderDetector, OrderState
from repro.stats.zipf import ZipfSampler, zipf_weights


class TestOrderDetector:
    def test_ascending_stream(self):
        detector = OrderDetector()
        detector.add_many(range(100))
        assert detector.state() is OrderState.ASCENDING
        assert detector.is_sorted()
        assert detector.ascending_fraction == 1.0

    def test_descending_stream(self):
        detector = OrderDetector()
        detector.add_many(range(100, 0, -1))
        assert detector.state() is OrderState.DESCENDING

    def test_unordered_stream(self):
        detector = OrderDetector()
        detector.add_many([5, 1, 9, 2, 8, 3])
        assert detector.state() is OrderState.UNORDERED
        assert not detector.is_sorted()

    def test_unknown_before_two_values(self):
        detector = OrderDetector()
        assert detector.state() is OrderState.UNKNOWN
        detector.add(1)
        assert detector.state() is OrderState.UNKNOWN

    def test_tolerance_allows_small_disorder(self):
        values = list(range(100))
        values[10], values[11] = values[11], values[10]
        strict, tolerant = OrderDetector(), OrderDetector(tolerance=0.05)
        strict.add_many(values)
        tolerant.add_many(values)
        assert strict.state() is OrderState.UNORDERED
        assert tolerant.state() is OrderState.ASCENDING

    def test_min_max_tracking(self):
        detector = OrderDetector()
        detector.add_many([5, 3, 9])
        assert detector.min_value == 3 and detector.max_value == 9

    def test_progress_fraction_for_sorted_stream(self):
        detector = OrderDetector()
        detector.add_many(range(0, 500))
        assert detector.progress_fraction(0, 1000) == pytest.approx(0.499)

    def test_progress_fraction_undefined_for_unordered(self):
        detector = OrderDetector()
        detector.add_many([5, 1, 9])
        assert detector.progress_fraction(0, 10) is None

    def test_progress_fraction_is_monotone_under_tolerance(self):
        """Regression: progress used to track ``last_value``, so with
        ``tolerance > 0`` a late out-of-order low arrival made the estimate
        jump backwards (e.g. from 0.8 down to 0.1) even though the stream
        stayed classified as ASCENDING."""
        detector = OrderDetector(tolerance=0.05)
        detector.add_many(range(0, 80))  # advanced to 79 of [0, 100]
        before = detector.progress_fraction(0, 100)
        assert before == pytest.approx(0.79)
        detector.add(10)  # one straggler, stream still ASCENDING
        assert detector.state() is OrderState.ASCENDING
        after = detector.progress_fraction(0, 100)
        assert after == pytest.approx(0.79)
        assert after >= before

    def test_progress_fraction_monotone_over_noisy_stream(self):
        detector = OrderDetector(tolerance=0.1)
        values = list(range(100))
        values[30], values[60], values[90] = 2, 5, 1  # sparse stragglers
        last = 0.0
        for value in values:
            detector.add(value)
            fraction = detector.progress_fraction(0, 120)
            if fraction is not None:
                assert fraction >= last
                last = fraction


class TestDistinctCounter:
    def test_exact_mode(self):
        counter = DistinctCounter()
        counter.add_many([1, 2, 2, 3, 3, 3])
        assert counter.estimate() == 3
        assert counter.exact

    def test_degrades_to_estimate(self):
        counter = DistinctCounter(max_exact=10)
        counter.add_many(range(1000))
        assert not counter.exact
        assert counter.estimate() == pytest.approx(1000, rel=0.25)


class TestUniquenessDetector:
    def test_sorted_unique(self):
        detector = UniquenessDetector(assume_sorted=True)
        detector.add_many([1, 2, 3, 4])
        assert detector.is_unique()

    def test_sorted_duplicate_detected(self):
        detector = UniquenessDetector(assume_sorted=True)
        detector.add_many([1, 2, 2, 3])
        assert not detector.is_unique()

    def test_unsorted_mode(self):
        detector = UniquenessDetector(assume_sorted=False)
        detector.add_many([3, 1, 2])
        assert detector.is_unique()
        detector.add(1)
        assert not detector.is_unique()


class TestZipf:
    def test_weights_shape(self):
        weights = zipf_weights(4, 1.0)
        assert weights == pytest.approx([1.0, 0.5, 1 / 3, 0.25])
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, z=0.5, seed=9).sample_many(50)
        b = ZipfSampler(100, z=0.5, seed=9).sample_many(50)
        assert a == b

    def test_zero_exponent_is_roughly_uniform(self):
        sampler = ZipfSampler(10, z=0.0, seed=1)
        samples = sampler.sample_many(5000)
        counts = {value: samples.count(value) for value in set(samples)}
        assert len(counts) == 10
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_skew_concentrates_mass(self):
        sampler = ZipfSampler(1000, z=1.0, seed=1, shuffle_ranks=False)
        samples = sampler.sample_many(5000)
        top_value_share = samples.count(1) / len(samples)
        assert top_value_share > 0.05  # far above the uniform 0.001

    def test_expected_frequency(self):
        sampler = ZipfSampler(10, z=1.0, seed=0)
        assert sampler.expected_frequency(1, 100) > sampler.expected_frequency(10, 100)
        with pytest.raises(ValueError):
            sampler.expected_frequency(0, 100)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([], z=0.5)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200))
def test_property_order_detector_matches_sortedness(values):
    detector = OrderDetector()
    detector.add_many(values)
    is_ascending = all(values[i] <= values[i + 1] for i in range(len(values) - 1))
    if len(values) <= 1:
        assert detector.state() is OrderState.UNKNOWN
    elif is_ascending:
        assert detector.state() in (OrderState.ASCENDING, OrderState.DESCENDING)
    else:
        assert detector.ascending_violations > 0
