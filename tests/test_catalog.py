"""Tests for the catalog and table statistics."""

import pytest

from repro.relational.catalog import (
    Catalog,
    CatalogError,
    DEFAULT_ASSUMED_CARDINALITY,
    TableStatistics,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema


SCHEMA = Schema.from_names(["k", "v"], relation="t")


def make_relation(n=5):
    return Relation("t", SCHEMA, [(i, i * 10) for i in range(n)])


class TestTableStatistics:
    def test_defaults_unknown(self):
        stats = TableStatistics()
        assert stats.cardinality is None
        assert stats.distinct("k") is None
        assert not stats.is_sorted_on("k")
        assert not stats.is_key("k")

    def test_with_cardinality(self):
        stats = TableStatistics().with_cardinality(10)
        assert stats.cardinality == 10

    def test_key_and_sort_flags(self):
        stats = TableStatistics(sorted_on=("k",), key_attributes=("k",))
        assert stats.is_sorted_on("k") and stats.is_key("k")


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register("t", SCHEMA)
        assert "t" in catalog
        assert catalog.schema("t").names == ("k", "v")

    def test_missing_relation_raises(self):
        with pytest.raises(CatalogError):
            Catalog().entry("missing")

    def test_relation_without_data_raises(self):
        catalog = Catalog()
        catalog.register("t", SCHEMA)
        with pytest.raises(CatalogError):
            catalog.relation("t")

    def test_register_relation_attaches_data(self):
        catalog = Catalog()
        catalog.register_relation(make_relation())
        assert catalog.relation("t").cardinality == 5

    def test_register_relations_bulk(self):
        catalog = Catalog()
        other = Relation("u", Schema.from_names(["a"], relation="u"), [(1,)])
        catalog.register_relations([make_relation(), other])
        assert set(catalog.names()) == {"t", "u"}

    def test_assumed_cardinality_default(self):
        catalog = Catalog()
        catalog.register("t", SCHEMA)
        assert catalog.assumed_cardinality("t") == DEFAULT_ASSUMED_CARDINALITY
        assert catalog.assumed_cardinality("t", default=7) == 7

    def test_assumed_cardinality_published(self):
        catalog = Catalog()
        catalog.register("t", SCHEMA, TableStatistics(cardinality=123))
        assert catalog.assumed_cardinality("t") == 123

    def test_with_cardinalities_copy(self):
        catalog = Catalog()
        catalog.register_relation(make_relation(8))
        enriched = catalog.with_cardinalities()
        assert enriched.statistics("t").cardinality == 8
        # original untouched
        assert catalog.statistics("t").cardinality is None

    def test_without_statistics_copy(self):
        catalog = Catalog()
        catalog.register_relation(make_relation(8), TableStatistics(cardinality=8))
        stripped = catalog.without_statistics()
        assert stripped.statistics("t").cardinality is None
        assert catalog.statistics("t").cardinality == 8

    def test_set_statistics(self):
        catalog = Catalog()
        catalog.register("t", SCHEMA)
        catalog.set_statistics("t", TableStatistics(cardinality=3))
        assert catalog.statistics("t").cardinality == 3
