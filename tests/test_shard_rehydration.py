"""Compiled-pipeline rehydration across a real process boundary.

Compiled chains are ``exec``-generated functions — code objects, which must
never cross a process boundary (the shard-safety picklability audit rejects
them).  The sharded tier's contract is therefore *rehydration*: sessions
travel as picklable specs, and a worker process rebuilds every compiled
pipeline from generated source (``__compiled_source__``) plus its own
runtime bindings.  These tests pin the three legs of that contract:

* :func:`~repro.engine.compiled.bind_chain` materializes a chain from
  source + bindings, and stamps the source back onto the function;
* identical plan shapes generate bit-identical source — in one process and
  across a **spawn** boundary (fresh interpreter, nothing shared);
* a session spec pickled to a spawn worker produces bit-identical batches
  and charges: result multiset, every work counter, simulated seconds and
  phase counts equal the parent's solo run.
"""

from __future__ import annotations

import pickle
from collections import Counter
from multiprocessing import get_context

from differential import (
    POLL_STEP_LIMIT,
    POLLING_INTERVAL,
    _bad_initial_tree,
    generate_workload,
    run_solo_corrective,
)

from repro.engine.compiled import bind_chain
from repro.engine.pipelined import PipelinedExecutor
from repro.optimizer.plans import JoinTree
from repro.serving.server import corrective_processor_options
from repro.serving.specs import SessionSpec, ShardTask
from repro.serving.worker import drive_shard

BATCH_SIZE = 64


def test_bind_chain_rebuilds_from_source():
    """The rehydration primitive: source + bindings → working chain, with
    the source stamped back for the next hop (and the exec audit)."""
    out: list[int] = []
    src = "def _chain(rows):\n    _out.extend(rows)\n"
    chain = bind_chain(src, {"_out": out})
    chain([1, 2, 3])
    assert out == [1, 2, 3]
    assert chain.__compiled_source__ == src


def test_identical_plan_shapes_generate_identical_source():
    """Recompiling the same query/tree yields byte-identical chain source —
    the property that lets workers regenerate pipelines instead of
    receiving code objects."""
    workload = generate_workload(22)  # local multi-join, 49 result rows
    tree = JoinTree.left_deep(workload.query.relations)
    sources_by_run = []
    for _ in range(2):
        rows, plan = PipelinedExecutor(
            workload.sources(), batch_size=BATCH_SIZE, engine_mode="compiled"
        ).execute(workload.query, tree)
        assert rows
        chains = plan._compiled_chains
        assert chains, "compiled run never built its chains"
        sources_by_run.append(
            {leaf: fn.__compiled_source__ for leaf, fn in chains.items()}
        )
    assert sources_by_run[0] == sources_by_run[1]


def _spawn_probe(payload: bytes, result_queue) -> None:
    """Runs in a spawn child: rehydrate the pickled shard task, drive it,
    and also compile the raw pipeline to report its generated source."""
    task, query, relations, tree = pickle.loads(payload)
    shard = drive_shard(task)
    report = shard.results[0].report
    rows, plan = PipelinedExecutor(
        relations, batch_size=BATCH_SIZE, engine_mode="compiled"
    ).execute(query, tree)
    chains = plan._compiled_chains or {}
    result_queue.put(
        pickle.dumps(
            {
                "error": shard.error,
                "report_rows": report.rows,
                "report_schema": report.schema.names,
                "metrics": report.metrics.as_dict(),
                "simulated_seconds": report.simulated_seconds,
                "phases": report.num_phases,
                "pipeline_rows": rows,
                "chain_sources": {
                    leaf: fn.__compiled_source__ for leaf, fn in chains.items()
                },
            }
        )
    )
    result_queue.close()
    result_queue.join_thread()


def test_session_spec_rehydrates_across_spawn_boundary():
    """Pickle a compiled-engine session spec to a spawn worker (fresh
    interpreter, nothing inherited) and pin bit-identical batches and
    charges — plus byte-identical generated chain source on both sides."""
    workload = generate_workload(22)
    query = workload.query
    tree = JoinTree.left_deep(query.relations)
    task = ShardTask(
        worker_id=0,
        policy="round_robin",
        catalog=workload.catalog(),
        sources=workload.sources(),
        specs=(
            SessionSpec(
                index=0,
                label=query.name,
                query=query,
                quantum_tuples=POLL_STEP_LIMIT,
                initial_tree=_bad_initial_tree(workload),
            ),
        ),
        processor_options=corrective_processor_options(
            polling_interval_seconds=POLLING_INTERVAL,
            batch_size=BATCH_SIZE,
            engine_mode="compiled",
        ),
    )

    ctx = get_context("spawn")
    result_queue = ctx.Queue()
    payload = pickle.dumps((task, query, workload.sources(), tree))
    process = ctx.Process(target=_spawn_probe, args=(payload, result_queue))
    process.start()
    try:
        child = pickle.loads(result_queue.get(timeout=120))
    finally:
        process.join(timeout=30)
    assert child["error"] is None

    # The parent's solo run with identical parameters.
    solo_report, solo = run_solo_corrective(
        workload, batch_size=BATCH_SIZE, engine_mode="compiled"
    )
    assert Counter(child["report_rows"]) == Counter(solo_report.rows)
    assert child["report_schema"] == solo_report.schema.names
    assert child["metrics"] == solo.metrics
    assert child["simulated_seconds"] == solo.simulated_seconds
    assert child["phases"] == solo.phases

    # The parent's raw compiled pipeline on the same tree: the child's
    # regenerated source must be byte-identical, leaf for leaf.
    parent_rows, parent_plan = PipelinedExecutor(
        workload.sources(), batch_size=BATCH_SIZE, engine_mode="compiled"
    ).execute(query, tree)
    parent_sources = {
        leaf: fn.__compiled_source__
        for leaf, fn in (parent_plan._compiled_chains or {}).items()
    }
    assert parent_sources and child["chain_sources"] == parent_sources
    assert Counter(child["pipeline_rows"]) == Counter(parent_rows)
