"""Tests for repro.relational.schema."""

import pytest

from repro.relational.schema import Attribute, Schema, SchemaError


class TestAttribute:
    def test_qualified_name_with_relation(self):
        attr = Attribute("c_custkey", "int", "customer")
        assert attr.qualified_name == "customer.c_custkey"

    def test_qualified_name_without_relation(self):
        assert Attribute("revenue").qualified_name == "revenue"

    def test_renamed_preserves_type_and_relation(self):
        attr = Attribute("a", "int", "r").renamed("b")
        assert attr.name == "b"
        assert attr.type_name == "int"
        assert attr.relation == "r"

    def test_without_relation(self):
        attr = Attribute("a", "int", "r").without_relation()
        assert attr.relation is None
        assert attr.name == "a"


class TestSchemaConstruction:
    def test_from_names(self):
        schema = Schema.from_names(["a", "b", "c"], relation="r")
        assert schema.names == ("a", "b", "c")
        assert len(schema) == 3

    def test_from_names_with_types(self):
        schema = Schema.from_names(["a", "b"], types=["int", "str"])
        assert schema.attribute("b").type_name == "str"

    def test_from_names_type_length_mismatch(self):
        with pytest.raises(SchemaError):
            Schema.from_names(["a", "b"], types=["int"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Attribute("a"), Attribute("a")))


class TestSchemaLookups:
    def test_position(self):
        schema = Schema.from_names(["x", "y", "z"])
        assert schema.position("y") == 1

    def test_position_qualified(self):
        schema = Schema.from_names(["x", "y"], relation="r")
        assert schema.position("r.y") == 1

    def test_position_missing_raises(self):
        schema = Schema.from_names(["x"])
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_positions_multiple(self):
        schema = Schema.from_names(["a", "b", "c", "d"])
        assert schema.positions(["d", "a"]) == (3, 0)

    def test_contains(self):
        schema = Schema.from_names(["a", "b"])
        assert "a" in schema
        assert "zzz" not in schema

    def test_iteration_yields_attributes(self):
        schema = Schema.from_names(["a", "b"])
        assert [attr.name for attr in schema] == ["a", "b"]


class TestSchemaDerivation:
    def test_project_order_follows_argument(self):
        schema = Schema.from_names(["a", "b", "c"])
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_concat(self):
        left = Schema.from_names(["a", "b"])
        right = Schema.from_names(["c"])
        assert left.concat(right).names == ("a", "b", "c")

    def test_concat_duplicate_raises(self):
        left = Schema.from_names(["a"])
        right = Schema.from_names(["a"])
        with pytest.raises(SchemaError):
            left.concat(right)

    def test_rename_relation(self):
        schema = Schema.from_names(["a"], relation="old").rename_relation("new")
        assert schema.attribute("a").relation == "new"

    def test_extended(self):
        schema = Schema.from_names(["a"]).extended([Attribute("b")])
        assert schema.names == ("a", "b")

    def test_compatible_with(self):
        one = Schema.from_names(["a", "b"])
        two = Schema.from_names(["a", "b"], relation="r")
        three = Schema.from_names(["b", "a"])
        assert one.compatible_with(two)
        assert not one.compatible_with(three)
