"""Tests for the dynamic compressed histogram."""

import random

import pytest

from repro.stats.histogram import DynamicCompressedHistogram
from repro.stats.zipf import ZipfSampler


class TestMaintenance:
    def test_counts_and_flush(self):
        histogram = DynamicCompressedHistogram(bucket_target=10, restructure_interval=50)
        histogram.add_many([1] * 30 + [2] * 10 + list(range(3, 50)))
        histogram.flush()
        assert histogram.total_count == 30 + 10 + 47
        assert histogram.maintenance_operations > 0

    def test_heavy_hitters_promoted_to_singletons(self):
        histogram = DynamicCompressedHistogram(bucket_target=10, restructure_interval=100)
        histogram.add_many([7] * 500 + list(range(100)))
        histogram.flush()
        assert 7 in histogram.singletons
        assert histogram.frequency(7) == pytest.approx(500, rel=0.05)

    def test_invalid_bucket_target(self):
        with pytest.raises(ValueError):
            DynamicCompressedHistogram(bucket_target=2)


class TestEstimation:
    def test_selectivity_of_heavy_value(self):
        histogram = DynamicCompressedHistogram(bucket_target=20, restructure_interval=100)
        values = [1] * 900 + list(range(2, 102))
        histogram.add_many(values)
        histogram.flush()
        assert histogram.selectivity(1) == pytest.approx(0.9, rel=0.05)

    def test_frequency_of_unseen_value(self):
        histogram = DynamicCompressedHistogram()
        histogram.add_many(range(100))
        histogram.flush()
        # An unseen value outside all buckets has frequency ~0 or the bucket average.
        assert histogram.frequency(10_000) <= 2

    def test_distinct_estimate_reasonable(self):
        histogram = DynamicCompressedHistogram(bucket_target=50, restructure_interval=200)
        histogram.add_many(range(500))
        histogram.flush()
        assert histogram.distinct_estimate() >= 50

    def test_uniform_join_size_estimate(self):
        """For uniform same-domain keys, the join estimate should be close to exact."""
        rng = random.Random(0)
        domain = 200
        left = [rng.randrange(domain) for _ in range(2000)]
        right = [rng.randrange(domain) for _ in range(1000)]
        h_left = DynamicCompressedHistogram(bucket_target=50, restructure_interval=200)
        h_right = DynamicCompressedHistogram(bucket_target=50, restructure_interval=200)
        h_left.add_many(left)
        h_right.add_many(right)
        h_left.flush(), h_right.flush()
        exact = 0
        right_counts = {}
        for value in right:
            right_counts[value] = right_counts.get(value, 0) + 1
        for value in left:
            exact += right_counts.get(value, 0)
        estimate = h_left.join_size_estimate(h_right)
        assert estimate == pytest.approx(exact, rel=0.5)

    def test_skewed_join_size_estimate_direction(self):
        """With Zipf skew the estimate must reflect the heavy-hitter inflation."""
        sampler = ZipfSampler(200, z=1.0, seed=3)
        left = sampler.sample_many(2000)
        right = sampler.sample_many(1000)
        h_left = DynamicCompressedHistogram(bucket_target=50, restructure_interval=200)
        h_right = DynamicCompressedHistogram(bucket_target=50, restructure_interval=200)
        h_left.add_many(left)
        h_right.add_many(right)
        h_left.flush(), h_right.flush()
        uniform_guess = len(left) * len(right) / 200
        estimate = h_left.join_size_estimate(h_right)
        exact = 0
        right_counts = {}
        for value in right:
            right_counts[value] = right_counts.get(value, 0) + 1
        for value in left:
            exact += right_counts.get(value, 0)
        # Skew makes the true size much larger than the uniform guess; the
        # histogram-based estimate must capture a substantial part of that gap.
        assert exact > 1.5 * uniform_guess
        assert estimate > 1.2 * uniform_guess
        assert estimate == pytest.approx(exact, rel=0.6)

    def test_empty_histogram(self):
        histogram = DynamicCompressedHistogram()
        assert histogram.selectivity(1) == 0.0
        assert histogram.join_size_estimate(DynamicCompressedHistogram()) == 0.0

    def test_scaled_extrapolation(self):
        histogram = DynamicCompressedHistogram(bucket_target=20, restructure_interval=100)
        histogram.add_many([1] * 100 + list(range(2, 52)))
        histogram.flush()
        doubled = histogram.scaled(2.0)
        assert doubled.total_count == 2 * histogram.total_count
        assert doubled.frequency(1) == pytest.approx(2 * histogram.frequency(1), rel=0.05)

    def test_scaled_down_mass_stays_consistent_with_total(self):
        """Regression: ``max(int(c * factor), 1)`` clamped every singleton /
        value count to >= 1 tuple, so scaling a 1000-distinct-value summary
        down by 100x produced a clone whose summed mass (~1000) exceeded its
        nominal total (~10) by two orders of magnitude."""
        histogram = DynamicCompressedHistogram(
            bucket_target=50, restructure_interval=200
        )
        histogram.add_many(range(1000))  # 1000 distinct values, one each
        histogram.flush()
        clone = histogram.scaled(0.01)
        assert clone.total_count == 10
        assert sum(clone._value_counts.values()) == clone.total_count
        summary_mass = sum(clone.singletons.values()) + sum(
            bucket.count for bucket in clone.buckets
        )
        assert summary_mass <= clone.total_count
        # Selectivities stay probabilities (the inflated clone broke this).
        assert sum(clone.selectivity(v) for v in range(1000)) <= 1.0 + 1e-9

    def test_scaled_up_remains_exact_for_integer_factors(self):
        histogram = DynamicCompressedHistogram(bucket_target=20, restructure_interval=50)
        histogram.add_many([1] * 30 + list(range(2, 40)))
        histogram.flush()
        tripled = histogram.scaled(3.0)
        assert tripled.total_count == 3 * histogram.total_count
        assert tripled.frequency(1) == pytest.approx(3 * histogram.frequency(1))

    def test_find_bucket_binary_search_matches_linear_semantics(self):
        histogram = DynamicCompressedHistogram(bucket_target=10, restructure_interval=50)
        histogram.add_many(range(0, 500, 2))  # even values only
        histogram.flush()
        for value in (-1, 0, 3, 250, 498, 499, 10_000):
            found = histogram._find_bucket(value)
            expected = next(
                (bucket for bucket in histogram.buckets if bucket.contains(value)),
                None,
            )
            assert found is expected

    def test_scaled_preserves_singleton_budget_and_counters(self):
        """Regression: the singleton budget used to round-trip through
        ``singleton_budget / bucket_target``, which float truncation can
        shrink (``int(50 * (29 / 50)) == 28``), and the maintenance counters
        were silently reset on every extrapolation."""
        histogram = DynamicCompressedHistogram(
            bucket_target=50, singleton_fraction=0.59, restructure_interval=100
        )
        assert histogram.singleton_budget == 29
        # The buggy round-trip: int(50 * (29 / 50)) == 28 under IEEE floats.
        assert int(histogram.bucket_target * (29 / 50)) == 28
        histogram.add_many(range(150))
        clone = histogram.scaled(1.5)
        assert clone.singleton_budget == histogram.singleton_budget == 29
        assert clone.maintenance_operations == histogram.maintenance_operations
        assert clone._since_restructure == histogram._since_restructure
