"""Differential tests: every engine, every batch size, identical answers.

The centerpiece of the batched-execution work: ~50 seeded random SPJA
queries over randomized workloads, each executed by the brute-force
reference, the static executor, the tuple-at-a-time pipelined engine, the
batched engine (batch sizes 1, 7, 64, 1024) and the corrective processor in
both modes.  All must produce identical multisets of result rows, and all
corrective configurations must report identical final phase counts (asserted
on local workloads, where the invariant holds by construction; remote
workloads still assert result equality).

A meta-test then checks the generated population actually covers the
interesting regimes (aggregation, multi-phase corrective runs, empty inputs,
remote sources), so the equivalence assertions cannot silently become
vacuous if the generator drifts.
"""

from __future__ import annotations

import pytest

from differential import (
    assert_differential_case,
    generate_workload,
    run_differential_case,
)

SEEDS = tuple(range(50))

_CASE_CACHE: dict[int, object] = {}


def _case(seed: int):
    result = _CASE_CACHE.get(seed)
    if result is None:
        result = run_differential_case(seed)
        _CASE_CACHE[seed] = result
    return result


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree(seed):
    assert_differential_case(_case(seed))


def test_workload_generation_is_deterministic():
    first = generate_workload(17)
    second = generate_workload(17)
    assert first.query.name == second.query.name
    assert first.query.relations == second.query.relations
    assert [str(p) for p in first.query.join_predicates] == [
        str(p) for p in second.query.join_predicates
    ]
    for name in first.relations:
        assert first.relations[name].rows == second.relations[name].rows
    assert first.remote == second.remote


def test_population_covers_interesting_regimes():
    """The equivalence claims above only bite if the population is diverse."""
    cases = [_case(seed) for seed in SEEDS]
    aggregated = sum(1 for case in cases if case.uses_aggregation)
    # Phase-count equality is only *asserted* on local workloads, so the
    # population must include local multi-phase runs for it to bite.
    multi_phase = sum(
        1 for case in cases if not case.workload.remote and case.max_phases >= 2
    )
    multi_join = sum(1 for case in cases if len(case.workload.query.relations) >= 3)
    with_empty_input = sum(
        1
        for case in cases
        if any(len(rel) == 0 for rel in case.workload.relations.values())
    )
    remote = sum(1 for case in cases if case.workload.remote)
    empty_answers = sum(1 for case in cases if not case.reference)
    nonempty_answers = sum(1 for case in cases if case.reference)

    assert aggregated >= 10, f"only {aggregated} aggregation queries generated"
    assert multi_phase >= 3, (
        f"only {multi_phase} seeds produced a multi-phase corrective run — "
        "phase-count equality is at risk of being vacuously true"
    )
    assert multi_join >= 15
    assert with_empty_input >= 2
    assert remote >= 5
    assert empty_answers >= 3
    assert nonempty_answers >= 25
