"""Fixture: uncharged operator mutation paths for accounting.uncharged-mutation."""


class LeakyOperator:
    def push_batch(self, rows):  # LINT: uncharged-entry
        for row in rows:
            self.state.insert(row)  # LINT: uncharged-mutator-call
        return len(rows)


class ChargedOperator:
    # Charges through a helper: the call-graph closure must keep this silent.
    def push_batch(self, rows):
        self._fold(rows)
        self.state.insert_batch(rows)
        return len(rows)

    def _fold(self, rows):
        self.metrics.tuples_read += len(rows)


class BatchChargedOperator:
    # Direct charge_batch call; must not fire.
    def accumulate_batch(self, rows):
        self.groups.add_count(len(rows))
        self.metrics.charge_batch(aggregate_updates=len(rows))
