"""Fixture exec-based codegen that never records its source.

A pipeline compiled with ``exec`` must store the generated text on the
result as ``__compiled_source__`` so a sharded worker can rebuild it after
unpickling; ``build_chain`` does not, and is flagged by
``sharding.picklability``.  ``build_chain_recorded`` shows the compliant
shape.
"""


def build_chain(src: str):
    namespace = {}
    exec(src, {}, namespace)  # LINT: exec-no-source
    return namespace["chain"]


def build_chain_recorded(src: str):
    namespace = {}
    exec(src, {}, namespace)
    chain = namespace["chain"]
    chain.__compiled_source__ = src
    return chain
