"""Fixture: seeded wall-clock violations for the determinism.wall-clock rule.

Never imported — only parsed by the analyzer tests.  ``# LINT:`` markers
anchor the exact-line assertions.
"""

import time as clock_module
from datetime import datetime
from time import perf_counter


class TimingOperator:
    def measure(self):
        start = clock_module.time()  # LINT: wall-clock-attr
        return start

    def stamp(self):
        return datetime.now()  # LINT: wall-clock-datetime


def free_function_timer():
    return perf_counter()  # LINT: wall-clock-member


def simulated_ok(clock):
    # Reading the simulated clock is the sanctioned path; must not fire.
    return clock.now
