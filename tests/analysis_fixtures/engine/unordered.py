"""Fixture: set iteration in emit paths for determinism.unordered-iter."""


class LeakyEmitter:
    def push_batch(self, rows):
        keys = {row[0] for row in rows}
        out = []
        for key in keys:  # LINT: unordered-for
            out.append(key)
        pending = set(rows)
        out.extend(list(pending))  # LINT: unordered-list
        survivors = [row for row in keys | pending]  # LINT: unordered-comp
        out.extend(survivors)
        for key in sorted(keys):  # sorted iteration must not fire
            out.append(key)
        return out

    def helper(self, rows):
        # Not an emit-path method: set iteration here is out of scope.
        return [row for row in set(rows)]
