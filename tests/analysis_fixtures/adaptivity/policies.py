"""Fixture: a self-contained event/policy hierarchy for exhaustiveness.event-policy.

The rule discovers events and policies by base-class name, so this fixture
carries its own ``AdaptationEvent`` / ``AdaptationPolicy`` roots and never
touches the real adaptivity package.
"""


class AdaptationEvent:
    pass


class AlphaEvent(AdaptationEvent):
    pass


class BetaEvent(AdaptationEvent):
    pass


class GammaEvent(AlphaEvent):
    # Transitive subclass: still part of the event population.
    pass


class AdaptationPolicy:
    handles_events = frozenset()
    ignores_events = frozenset()

    def observe(self, run, event):
        pass


class MissingDeclarationPolicy(AdaptationPolicy):  # LINT: missing-declaration
    def observe(self, run, event):
        pass


class IncompletePolicy(AdaptationPolicy):  # LINT: incomplete-coverage
    handles_events = frozenset({"AlphaEvent"})
    ignores_events = frozenset({"BetaEvent"})


class OverlapPolicy(AdaptationPolicy):  # LINT: overlap
    handles_events = frozenset({"AlphaEvent", "BetaEvent", "GammaEvent"})
    ignores_events = frozenset({"AlphaEvent"})


class UnknownEventPolicy(AdaptationPolicy):  # LINT: unknown-event
    handles_events = frozenset({"DeltaEvent"})
    ignores_events = frozenset({"AlphaEvent", "BetaEvent", "GammaEvent"})


class SilentConsumerPolicy(AdaptationPolicy):
    handles_events = frozenset()
    ignores_events = frozenset({"AlphaEvent", "BetaEvent", "GammaEvent"})

    def observe(self, run, event):
        if isinstance(event, BetaEvent):  # LINT: undeclared-reference
            raise RuntimeError("consumed an event it claims to ignore")


class CompliantPolicy(AdaptationPolicy):
    handles_events = frozenset({"AlphaEvent", "GammaEvent"})
    ignores_events = frozenset({"BetaEvent"})

    def observe(self, run, event):
        if isinstance(event, (AlphaEvent, GammaEvent)):
            return
