"""Fixture: module-level random draws for the determinism.module-random rule."""

import random
from random import randint


def unseeded_draw():
    return random.random()  # LINT: module-random-attr


def unseeded_member_draw():
    return randint(1, 6)  # LINT: module-random-member


def seeded_ok(seed):
    # Explicitly seeded instances are the sanctioned path; must not fire.
    rng = random.Random(seed)
    return rng.random() + rng.randint(1, 6)
