"""Fixture module-level globals: mutable, constant, and pragma-suppressed.

``effects.global-mutable`` must flag the lowercase mutable binding and the
upper-case one that the module itself mutates, exempt the never-mutated
upper-case table and ``__all__``, and honor the inline pragma on the memo
cache.  The pragma on ``SHARD_COUNT`` suppresses nothing and is stale.
"""

__all__ = ["lookup"]

DEFAULT_WIDTHS = {"narrow": 1, "wide": 8}

SHARD_COUNT = 4  # lint: ignore[effects.global-mutable]  # LINT: stale-pragma

REGISTRY = {}  # LINT: mutated-constant

open_requests = []  # LINT: lowercase-mutable

_memo_cache = {}  # lint: ignore[effects.global-mutable]  # LINT: memo-cache


def lookup(name: str) -> int:
    if name not in _memo_cache:
        _memo_cache[name] = DEFAULT_WIDTHS.get(name, 0)
    return _memo_cache[name]


def register(name: str, value: int) -> None:
    REGISTRY[name] = value
