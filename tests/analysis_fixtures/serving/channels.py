"""Fixture channel registry for the shard-safety rules.

Never imported — only parsed.  The registry deliberately mixes well-formed
channels (exercised by the other serving fixtures), one stale channel whose
attributes no longer escape, and malformed declarations.
"""

CHANNELS = (
    SharedChannel(  # noqa: F821 - parsed, never executed
        name="clock",
        type_name="MiniClock",
        discipline="single_writer",
        rationale="one clock; only the loop advances it",
        attributes=("clock",),
        mutators=("advance", "wait_until", "charge"),
        writers=("serving/loop.py::MiniLoop.run",),
    ),
    SharedChannel(  # noqa: F821
        name="ledger",
        type_name="SharedLedger",
        discipline="cross_process_safe",
        rationale="crosses the worker boundary whole",
        attributes=("ledger",),
        mutators=("absorb",),
        writers=("serving/loop.py::MiniLoop.finish",),
        payload_types=("HandoffSnapshot",),
    ),
    SharedChannel(  # noqa: F821  # LINT: stale-channel
        name="ghost",
        type_name="GhostPool",
        discipline="single_writer",
        rationale="stale: nothing escapes under this name any more",
        attributes=("ghost_pool",),
        mutators=("fill",),
        writers=("serving/loop.py::MiniLoop.run",),
    ),
    SharedChannel(  # noqa: F821  # LINT: bad-discipline
        name="broken",
        type_name="Broken",
        discipline="two_phase",
        rationale="declared with a discipline the contract does not define",
    ),
    SharedChannel(  # noqa: F821  # LINT: missing-rationale
        name="mute",
        type_name="Mute",
        discipline="read_only",
        rationale="",
    ),
)
