"""Fixture serving layer: session spawning with declared and rogue sharing.

``MiniServer`` hands two declared channels (``clock``, ``ledger``) and one
undeclared mutable scratch dict into the sessions it spawns;
``MiniSession`` additionally stores a declared channel under an alias the
registry does not list.
"""


class MiniSession:
    def __init__(self, label: str, clock, ledger) -> None:
        self.label = label
        self.clock = clock
        self.pool = ledger  # LINT: alias-undeclared
        self.notes = []

    def attach(self, scratch) -> None:
        self.notes.append(len(scratch))


class MiniServer:
    def __init__(self, clock, ledger) -> None:
        self.clock = clock
        self.ledger = ledger
        self.scratch = {}
        self.sessions = []

    def submit(self, label: str):
        session = MiniSession(label, self.clock, self.ledger)
        session.attach(self.scratch)  # LINT: escape-undeclared
        self.sessions.append(session)
        return session
