"""Fixture session-isolation violations: mutating a shared channel from
inside the call-graph closure of ``execute_incremental``.

``MiniProcessor._tick`` calls a ledger mutator and ``_stash`` writes
through the ledger attribute; both are reachable from the session entry
point and neither is a certified writer in the fixture registry.
"""


class MiniProcessor:
    def __init__(self, ledger) -> None:
        self.ledger = ledger

    def execute_incremental(self, query: str):
        self._tick(query)
        self._stash(query)
        return query

    def _tick(self, query: str) -> None:
        self.ledger.absorb(query)  # LINT: isolation-rogue-absorb

    def _stash(self, query: str) -> None:
        self.ledger.totals[query] = 1  # LINT: isolation-rogue-store
