"""Fixture scheduler loop: the one sanctioned clock writer, plus rogues.

``MiniLoop.run`` is certified in the fixture registry as the clock
channel's single writer; ``EagerPolicy`` both calls a clock mutator
directly and aliases one — each a ``sharding.clock-discipline`` violation.
"""


class MiniLoop:
    def __init__(self, clock, ledger) -> None:
        self.clock = clock
        self.ledger = ledger

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.clock.advance(1.0)

    def finish(self, snapshot) -> None:
        self.ledger.absorb(snapshot)


class EagerPolicy:
    def __init__(self, clock) -> None:
        self.clock = clock

    def decide(self) -> None:
        self.clock.wait_until(5.0)  # LINT: rogue-clock-write

    def grab(self):
        hop = self.clock.advance  # LINT: rogue-clock-alias
        return hop
