"""Fixture hand-off payloads with picklability violations.

``HandoffSnapshot`` is declared in the fixture registry as a payload of
the ``cross_process_safe`` ledger channel; the audit walks its annotated
fields (recursing into ``SideState``) and its ``__init__`` stores.
``SharedLedger`` itself is clean — only its payload types are dirty.
"""


class SideState:
    frames: "Iterator[bytes]"  # LINT: unpicklable-nested
    worker: "Thread"  # LINT: unpicklable-thread
    depth: int


class HandoffSnapshot:
    on_flush: "Callable[[], None]"  # LINT: unpicklable-annotation
    detail: "SideState"
    label: str

    def __init__(self, rows) -> None:
        self.rows = list(rows)
        self.render = lambda: self.rows  # LINT: unpicklable-lambda
        self.stream = (row for row in self.rows)  # LINT: unpicklable-genexp
        self.flush = self.close  # LINT: unpicklable-bound

    def close(self) -> None:
        self.rows = []


class SharedLedger:
    def __init__(self) -> None:
        self.totals = {}

    def absorb(self, snapshot) -> None:
        self.totals[snapshot] = 1
