"""Wall-clock reads inside the ``io`` package: every one is sanctioned.

The ``determinism.wall-clock`` rule exempts exactly this top directory —
the real-I/O fabric is the one place allowed to observe real time (its
``wallclock`` module is the surface everything else imports).  None of
the calls below may produce a finding.
"""

import time
from datetime import datetime
from time import perf_counter


def sanctioned_perf_counter() -> float:
    return time.perf_counter()


def sanctioned_monotonic() -> float:
    return time.monotonic()


def sanctioned_datetime() -> str:
    return datetime.now().isoformat()


def sanctioned_member_import() -> float:
    return perf_counter()
