"""RNG audit: every random draw in the workload machinery is explicitly seeded.

The differential harness compares engines on byte-for-byte identical data, so
any draw from the *module-level* ``random`` generator (whose state is global
and mutated by unrelated code) would silently break reproducibility.  These
tests pin the contract behaviorally: generation is bit-identical per seed and
the global generator's state is neither consumed nor disturbed.  The static
side of the contract — rejecting reintroduction of module-level draws at the
source level — is enforced project-wide by the ``determinism.module-random``
lint rule (``repro.analysis``), which replaced the regex scanner that used to
live here.
"""

from __future__ import annotations

import random

from repro.sources.network import BurstyNetworkModel
from repro.workloads.generator import TPCHGenerator
from repro.workloads.perturb import (
    displaced_fraction,
    interleave_relations,
    reorder_fraction,
)


def _generate_everything(seed: int):
    """Exercise every randomized code path of the workload machinery."""
    data = TPCHGenerator(scale_factor=0.0004, zipf_z=0.5, seed=seed).generate()
    reordered = reorder_fraction(data.orders, 0.25, seed=seed + 1)
    halves = [
        type(data.orders)("a", data.orders.schema, data.orders.rows[::2]),
        type(data.orders)("b", data.orders.schema, data.orders.rows[1::2]),
    ]
    interleaved = interleave_relations(halves, seed=seed + 2)
    arrivals = list(BurstyNetworkModel(seed=seed + 3).arrival_times(50))
    return data, reordered, interleaved, arrivals


class TestSeededReproducibility:
    def test_identical_output_for_identical_seed(self):
        first = _generate_everything(31)
        second = _generate_everything(31)
        for name in first[0].relations:
            assert first[0].relations[name].rows == second[0].relations[name].rows
        assert first[1].rows == second[1].rows
        assert first[2].rows == second[2].rows
        assert first[3] == second[3]

    def test_different_seed_changes_output(self):
        assert (
            _generate_everything(31)[0].lineitem.rows
            != _generate_everything(32)[0].lineitem.rows
        )

    def test_global_random_state_is_untouched(self):
        """No module-level ``random`` draws: generation must neither consume
        nor reseed the global generator, and perturbing the global state must
        not change what gets generated."""
        random.seed(1234)
        expected_next = random.Random(1234).random()

        baseline = _generate_everything(7)
        assert random.random() == expected_next, (
            "workload generation consumed or reseeded the global random state"
        )

        # Scrambling the global state must not leak into generation either.
        random.seed(999)
        random.random()
        scrambled = _generate_everything(7)
        assert baseline[0].lineitem.rows == scrambled[0].lineitem.rows
        assert baseline[1].rows == scrambled[1].rows
        assert baseline[2].rows == scrambled[2].rows
        assert baseline[3] == scrambled[3]

    def test_perturbations_are_deterministic_and_effective(self, tiny_tpch):
        orders = tiny_tpch.orders
        once = reorder_fraction(orders, 0.5, seed=3)
        again = reorder_fraction(orders, 0.5, seed=3)
        other = reorder_fraction(orders, 0.5, seed=4)
        assert once.rows == again.rows
        assert once.rows != other.rows
        assert displaced_fraction(orders, once) > 0.2
