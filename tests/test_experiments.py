"""Tests for the experiment harnesses (small scales, shape checks only)."""

import pytest

from repro.experiments.common import (
    build_dataset,
    build_paper_datasets,
    format_table,
    paper_queries,
    wireless_network_for,
)
from repro.experiments.complementary import (
    complementary_distribution,
    run_complementary_comparison,
)
from repro.experiments.corrective import (
    comparison_rows,
    run_corrective_comparison,
    stitchup_breakdown,
    worst_left_deep_tree,
)
from repro.experiments.preaggregation import run_preaggregation_comparison
from repro.experiments.selectivity import build_mid_table, run_selectivity_prediction

SCALE = 0.0006


class TestCommon:
    def test_build_dataset(self):
        dataset = build_dataset("uniform", SCALE, 0.0, seed=3)
        assert dataset.total_tuples > 0
        assert dataset.catalog_no_statistics.statistics("orders").cardinality is None
        assert dataset.catalog_with_cardinalities.statistics("orders").cardinality > 0

    def test_build_paper_datasets(self):
        datasets = build_paper_datasets(SCALE, seed=3)
        assert set(datasets) == {"uniform", "skewed"}
        assert datasets["skewed"].data.zipf_z > 0

    def test_paper_queries_filter(self):
        assert set(paper_queries(("Q3A",))) == {"Q3A"}
        assert set(paper_queries()) == {"Q3A", "Q10", "Q10A", "Q5"}

    def test_wireless_network_deterministic(self):
        a = list(wireless_network_for(0, seed=1).arrival_times(50))
        b = list(wireless_network_for(0, seed=1).arrival_times(50))
        assert a == b

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        assert "a" in text and "10" in text and "0.12" in text
        assert format_table([]) == "(no rows)"


class TestCorrectiveHarness:
    @pytest.fixture(scope="class")
    def results(self):
        return run_corrective_comparison(
            query_names=("Q3A",),
            scale_factor=SCALE,
            include_plan_partitioning=True,
            forced_bad_start=True,
            polling_interval=0.05,
        )

    def test_expected_configurations_present(self, results):
        strategies = {(r.strategy, r.statistics) for r in results}
        assert ("static", "none") in strategies
        assert ("static", "cardinalities") in strategies
        assert ("adaptive", "none") in strategies
        assert ("plan_partitioning", "none") in strategies
        assert ("static_bad_plan", "none") in strategies
        assert ("adaptive_bad_plan", "none") in strategies
        assert {r.dataset for r in results} == {"uniform", "skewed"}

    def test_all_strategies_agree_on_answers(self, results):
        for dataset in ("uniform", "skewed"):
            counts = {r.answers for r in results if r.dataset == dataset}
            assert len(counts) == 1

    def test_rows_and_breakdown(self, results):
        rows = comparison_rows(results)
        assert len(rows) == len(results)
        assert {"query", "dataset", "strategy", "statistics", "seconds", "phases"} <= set(
            rows[0]
        )
        breakdown = stitchup_breakdown(results)
        assert all(row["strategy"].startswith("adaptive") for row in breakdown)

    def test_worst_left_deep_tree_is_connected_and_big_first(self):
        dataset = build_dataset("uniform", SCALE, 0.0, seed=3)
        query = paper_queries(("Q5",))["Q5"]
        tree = worst_left_deep_tree(query, dataset)
        assert tree.relations() == frozenset(query.relations)
        assert tree.leaf_order()[0] == "lineitem"


class TestComplementaryHarness:
    def test_rows_and_distribution(self):
        rows = run_complementary_comparison(
            scale_factor=SCALE,
            datasets=("uniform",),
            reorder_fractions=(0.0, 0.01),
            queue_capacity=64,
        )
        # 1 dataset x 2 fractions x 3 strategies
        assert len(rows) == 6
        outputs = {row["outputs"] for row in rows if row["reordered"] == 0.0}
        assert len(outputs) == 1
        distribution = complementary_distribution(rows)
        assert len(distribution) == 4  # hash baseline excluded
        assert {"hash", "merge", "stitch"} <= set(distribution[0])


class TestPreaggregationHarness:
    def test_rows_cover_strategies(self):
        rows = run_preaggregation_comparison(
            query_names=("Q3A", "Q5"), scale_factor=SCALE
        )
        strategies = {row["strategy"] for row in rows}
        assert strategies == {"single_aggregation", "adjustable_window", "traditional"}
        # answers agree within each (query, dataset)
        keyed = {}
        for row in rows:
            keyed.setdefault((row["query"], row["dataset"]), set()).add(row["answers"])
        assert all(len(v) == 1 for v in keyed.values())


class TestSelectivityHarness:
    def test_mid_table_shape(self):
        dataset = build_dataset("uniform", SCALE, 0.0, seed=3)
        mid = build_mid_table(dataset, rows=500, seed=3)
        assert len(mid) == 500
        order_keys = set(dataset.data.orders.column("o_orderkey"))
        assert set(mid.column("m_orderkey")) <= order_keys

    def test_prediction_result_structure(self):
        result = run_selectivity_prediction(
            scale_factor=SCALE, fractions=(0.5, 1.0)
        )
        rows = result["prediction_rows"]
        assert [row["fraction_seen"] for row in rows] == [0.5, 1.0]
        full = rows[-1]
        assert full["error_2way"] <= 0.15
        assert full["error_3way"] <= 0.15
        assert result["overhead"]["overhead_percent"] > 0
