"""Tests for tuple-routing policies."""

import pytest

from repro.core.router import (
    CallbackRouter,
    HashPartitionRouter,
    OrderConformanceRouter,
    PriorityQueueReorderer,
    RoundRobinRouter,
    RouterPolicy,
)
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["k", "v"])


class TestRoundRobin:
    def test_even_distribution(self):
        router = RoundRobinRouter(targets=3)
        routed = [router((i,)) for i in range(9)]
        assert routed == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_chunked(self):
        router = RoundRobinRouter(targets=2, chunk_size=3)
        routed = [router((i,)) for i in range(8)]
        assert routed == [0, 0, 0, 1, 1, 1, 0, 0]


class TestHashPartition:
    def test_same_key_same_target(self):
        router = HashPartitionRouter(SCHEMA, "k", targets=4)
        assert router((42, "a")) == router((42, "b"))

    def test_target_range(self):
        router = HashPartitionRouter(SCHEMA, "k", targets=3)
        assert all(0 <= router((i, None)) < 3 for i in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPartitionRouter(SCHEMA, "k", targets=0)


class TestOrderConformance:
    def test_sorted_stream_all_ordered(self):
        router = OrderConformanceRouter(SCHEMA, "k")
        assert all(router((i, None)) == router.ORDERED for i in range(20))
        assert router.ordered_fraction == 1.0

    def test_out_of_order_tuples_diverted(self):
        router = OrderConformanceRouter(SCHEMA, "k")
        assert router((5, None)) == router.ORDERED
        assert router((3, None)) == router.UNORDERED
        assert router((6, None)) == router.ORDERED
        assert router.ordered_count == 2
        assert router.unordered_count == 1
        assert 0 < router.ordered_fraction < 1

    def test_duplicates_count_as_ordered(self):
        router = OrderConformanceRouter(SCHEMA, "k")
        router((1, None))
        assert router((1, None)) == router.ORDERED


class TestPriorityQueueReorderer:
    def test_releases_in_key_order(self):
        reorderer = PriorityQueueReorderer(SCHEMA, "k", capacity=3)
        released = []
        for key in [5, 1, 4, 2, 3]:
            released.extend(reorderer.push((key, None)))
        released.extend(reorderer.drain())
        assert [row[0] for row in released] == [1, 2, 3, 4, 5]

    def test_capacity_controls_buffering(self):
        reorderer = PriorityQueueReorderer(SCHEMA, "k", capacity=2)
        assert reorderer.push((3, None)) == []
        assert reorderer.push((1, None)) == []
        released = reorderer.push((2, None))
        assert released == [(1, None)]
        assert len(reorderer) == 2
        assert reorderer.buffered_high_water == 2

    def test_buffer_never_exceeds_capacity(self):
        """Regression: a "capacity" queue used to buffer capacity + 1 tuples
        (release happened only when len(heap) > capacity), so the reported
        high-water mark exceeded the paper's Section 5 queue size."""
        capacity = 4
        reorderer = PriorityQueueReorderer(SCHEMA, "k", capacity=capacity)
        released = []
        for key in [9, 7, 5, 3, 1, 8, 6, 4, 2, 0]:
            released.extend(reorderer.push((key, None)))
            assert len(reorderer) <= capacity
        assert reorderer.buffered_high_water == capacity
        released.extend(reorderer.drain())
        # The released sequence is unchanged by the fix: each release is the
        # minimum of the buffered tuples plus the incoming one.
        assert sorted(row[0] for row in released) == list(range(10))
        assert [row[0] for row in released[:6]] == [1, 3, 5, 4, 2, 0]

    def test_equal_keys_do_not_compare_payloads(self):
        reorderer = PriorityQueueReorderer(SCHEMA, "k", capacity=10)
        # Payloads are dicts, which are not comparable: the sequence number
        # tie-break must prevent TypeError.
        reorderer.push((1, {"a": 1}))
        reorderer.push((1, {"b": 2}))
        assert len(reorderer.drain()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityQueueReorderer(SCHEMA, "k", capacity=0)


class TestCallbackRouter:
    def test_records_decisions(self):
        router = CallbackRouter(fn=lambda row: row[0] % 2)
        assert [router((i,)) for i in range(4)] == [0, 1, 0, 1]
        assert router.routed == [0, 1, 0, 1]


class TestBase:
    def test_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            RouterPolicy()((1,))
