"""Tests for the logical algebra and SPJA query description."""

import pytest

from repro.relational.algebra import (
    AggregateSpec,
    BaseRelation,
    GroupBy,
    Join,
    Project,
    QueryError,
    Select,
    SPJAQuery,
    spj_query,
)
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
    TruePredicate,
)


def two_table_query():
    return SPJAQuery(
        name="q",
        relations=("a", "b"),
        join_predicates=(JoinPredicate("a", "x", "b", "y"),),
        selections={"a": Comparison(AttributeRef("x"), ">", Constant(0))},
    )


class TestLogicalPlanNodes:
    def test_relations_of_tree(self):
        plan = Join(
            Select(BaseRelation("a"), TruePredicate()),
            Project(BaseRelation("b"), ("y",)),
            (JoinPredicate("a", "x", "b", "y"),),
        )
        assert plan.relations() == frozenset({"a", "b"})

    def test_walk_visits_all_nodes(self):
        plan = GroupBy(
            Join(BaseRelation("a"), BaseRelation("b"), ()),
            ("x",),
            (Aggregate("count", None, "n"),),
        )
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds == ["GroupBy", "Join", "BaseRelation", "BaseRelation"]

    def test_base_relation_children_empty(self):
        assert BaseRelation("a").children() == ()


class TestAggregateSpec:
    def test_output_attributes(self):
        spec = AggregateSpec(("g",), (Aggregate("sum", "v", "total"),))
        assert spec.output_attributes == ("g", "total")

    def test_referenced_attributes(self):
        spec = AggregateSpec(("g",), (Aggregate("sum", "v", "total"),))
        assert spec.referenced_attributes() == {"g", "v"}


class TestSPJAQueryValidation:
    def test_valid_query(self):
        query = two_table_query()
        assert query.num_joins == 1

    def test_duplicate_relations_rejected(self):
        with pytest.raises(QueryError):
            SPJAQuery("q", ("a", "a"), ())

    def test_join_predicate_unknown_relation(self):
        with pytest.raises(QueryError):
            SPJAQuery("q", ("a", "b"), (JoinPredicate("a", "x", "c", "y"),))

    def test_selection_unknown_relation(self):
        with pytest.raises(QueryError):
            SPJAQuery(
                "q",
                ("a",),
                (),
                selections={"zzz": TruePredicate()},
            )

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(QueryError):
            SPJAQuery("q", ("a", "b", "c"), (JoinPredicate("a", "x", "b", "y"),))

    def test_single_relation_query_allowed(self):
        query = SPJAQuery("q", ("a",), ())
        assert query.num_joins == 0


class TestSPJAQueryHelpers:
    def test_selection_for_defaults_to_true(self):
        query = two_table_query()
        assert isinstance(query.selection_for("b"), TruePredicate)
        assert not isinstance(query.selection_for("a"), TruePredicate)

    def test_predicates_between(self):
        query = two_table_query()
        preds = query.predicates_between(frozenset(["a"]), frozenset(["b"]))
        assert len(preds) == 1
        assert query.predicates_between(frozenset(["a"]), frozenset(["a"])) == ()

    def test_join_attributes(self):
        query = two_table_query()
        assert query.join_attributes("a") == ("x",)
        assert query.join_attributes("b") == ("y",)

    def test_describe_mentions_pieces(self):
        query = SPJAQuery(
            name="q",
            relations=("a", "b"),
            join_predicates=(JoinPredicate("a", "x", "b", "y"),),
            aggregation=AggregateSpec(("x",), (Aggregate("sum", "y", "s"),)),
        )
        text = query.describe()
        assert "a" in text and "group by" in text and "sum" in text

    def test_spj_query_helper(self):
        query = spj_query("q", ["a", "b"], [JoinPredicate("a", "x", "b", "y")])
        assert query.aggregation is None
        assert query.relations == ("a", "b")
