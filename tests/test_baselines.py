"""Tests for the static and plan-partitioning baselines."""

import pytest

from helpers import assert_same_aggregates, assert_same_bag, reference_spja
from repro.baselines.plan_partitioning import PlanPartitioningExecutor
from repro.baselines.static_executor import StaticExecutor
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate
from repro.workloads.queries import paper_query_workload, query_3a, query_5, query_10a


class TestStaticExecutor:
    @pytest.mark.parametrize("with_cards", [False, True])
    def test_matches_reference_for_all_queries(self, tiny_tpch, with_cards):
        sources = tiny_tpch.as_sources()
        catalog = tiny_tpch.catalog(with_cardinalities=with_cards)
        executor = StaticExecutor(catalog, sources)
        for query in paper_query_workload().values():
            report = executor.execute(query)
            assert_same_aggregates(report.rows, reference_spja(query, sources))

    def test_explicit_tree_override(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        executor = StaticExecutor(tiny_tpch.catalog(), sources)
        tree = JoinTree.left_deep(["lineitem", "orders", "customer"])
        report = executor.execute(query_3a(), join_tree=tree)
        assert report.join_tree is tree
        assert_same_aggregates(report.rows, reference_spja(query_3a(), sources))

    def test_report_fields(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        report = StaticExecutor(tiny_tpch.catalog(), sources).execute(query_3a())
        assert report.simulated_seconds > 0
        assert report.work() > 0
        summary = report.summary()
        assert summary["strategy"] == "static"
        assert summary["answers"] == len(report.rows)

    def test_spj_report_carries_schema(self, tiny_tpch):
        query = SPJAQuery(
            name="spj",
            relations=("customer", "orders"),
            join_predicates=(JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),),
        )
        sources = tiny_tpch.as_sources()
        report = StaticExecutor(tiny_tpch.catalog(), sources).execute(query)
        assert report.schema is not None
        assert_same_bag(report.rows, reference_spja(query, sources))

    def test_better_statistics_never_hurt_much(self, small_tpch):
        """With cardinalities the chosen plan must not be noticeably worse."""
        sources = small_tpch.as_sources()
        for query in (query_3a(), query_10a()):
            no_stats = StaticExecutor(small_tpch.catalog(False), sources).execute(query)
            with_stats = StaticExecutor(small_tpch.catalog(True), sources).execute(query)
            assert with_stats.simulated_seconds <= no_stats.simulated_seconds * 1.05


class TestPlanPartitioning:
    def test_degenerates_to_static_for_small_queries(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        executor = PlanPartitioningExecutor(tiny_tpch.catalog(), sources)
        report = executor.execute(query_3a())
        assert not report.materialized
        assert report.details.get("degenerate")
        assert_same_aggregates(report.rows, reference_spja(query_3a(), sources))

    def test_materializes_for_query_5(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        executor = PlanPartitioningExecutor(tiny_tpch.catalog(), sources)
        report = executor.execute(query_5())
        assert report.materialized
        assert report.stage1_cardinality > 0
        assert report.stage2_tree is not None
        assert_same_aggregates(report.rows, reference_spja(query_5(), sources))

    def test_materializes_with_cardinalities_too(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        executor = PlanPartitioningExecutor(
            tiny_tpch.catalog(with_cardinalities=True), sources
        )
        report = executor.execute(query_5())
        assert_same_aggregates(report.rows, reference_spja(query_5(), sources))

    def test_custom_materialization_point(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        executor = PlanPartitioningExecutor(
            tiny_tpch.catalog(), sources, materialize_after_joins=2
        )
        report = executor.execute(query_10a())
        assert report.materialized
        assert_same_aggregates(report.rows, reference_spja(query_10a(), sources))

    def test_summary(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        report = PlanPartitioningExecutor(tiny_tpch.catalog(), sources).execute(query_5())
        summary = report.summary()
        assert summary["strategy"] == "plan_partitioning"
        assert summary["materialized"] is True
        assert report.work() > 0
