"""Tests for scan, filter, project and union operators."""

import pytest

from repro.engine.cost import ExecutionMetrics, SimulatedClock
from repro.engine.operators.base import Operator, OperatorError
from repro.engine.operators.filter import Filter
from repro.engine.operators.project import ProjectOp
from repro.engine.operators.scan import Scan
from repro.engine.operators.union import UnionAll
from repro.relational.expressions import AttributeRef, Comparison, Constant
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.network import ConstantRateNetworkModel
from repro.sources.remote import RemoteSource


class TestOperatorBase:
    def test_produce_is_abstract(self, people):
        operator = Operator(people.schema)
        with pytest.raises(NotImplementedError):
            list(operator.execute())

    def test_output_counter_and_metrics(self, people):
        scan = Scan(people)
        rows = scan.run_to_completion()
        assert len(rows) == 5
        assert scan.tuples_produced == 5
        assert scan.metrics.tuples_output == 5
        assert scan.metrics.tuples_read == 5

    def test_describe(self, people):
        scan = Scan(people)
        scan.run_to_completion()
        info = scan.describe()
        assert info["operator"] == "Scan"
        assert info["tuples_produced"] == 5


class TestScan:
    def test_scan_relation(self, people):
        assert Scan(people).run_to_completion() == people.rows

    def test_scan_remote_source_waits_on_clock(self, people):
        source = RemoteSource(people, ConstantRateNetworkModel(tuples_per_second=1.0))
        clock = SimulatedClock()
        scan = Scan(source, clock=clock)
        scan.run_to_completion()
        # last tuple arrives at t = 4 seconds with 5 tuples at 1/s
        assert clock.now == pytest.approx(4.0)
        assert clock.wait_time == pytest.approx(4.0)

    def test_scan_shares_metrics(self, people):
        metrics = ExecutionMetrics()
        Scan(people, metrics).run_to_completion()
        assert metrics.tuples_read == 5


class TestFilter:
    def test_filter_rows(self, people):
        predicate = Comparison(AttributeRef("city"), "=", Constant("london"))
        operator = Filter(Scan(people), predicate)
        assert len(operator.run_to_completion()) == 2
        assert operator.metrics.predicate_evals == 5

    def test_observed_selectivity(self, people):
        predicate = Comparison(AttributeRef("age"), ">", Constant(100))
        operator = Filter(Scan(people), predicate)
        assert operator.observed_selectivity is None
        operator.run_to_completion()
        assert operator.observed_selectivity == 0.0


class TestProject:
    def test_project_columns(self, people):
        operator = ProjectOp(Scan(people), ["name", "pid"])
        rows = operator.run_to_completion()
        assert rows[0] == ("ada", 1)
        assert operator.schema.names == ("name", "pid")


class TestUnionAll:
    def test_union_concatenates(self, people):
        union = UnionAll([Scan(people), Scan(people)])
        assert len(union.run_to_completion()) == 10

    def test_union_adapts_layouts(self, people):
        reordered_schema = people.schema.project(["city", "pid", "name", "age"])
        reordered = Relation(
            "people2",
            reordered_schema,
            [(row[3], row[0], row[1], row[2]) for row in people.rows],
        )
        union = UnionAll([Scan(people), Scan(reordered)])
        rows = union.run_to_completion()
        assert len(rows) == 10
        # Every adapted row must match the target layout (pid first).
        assert all(isinstance(row[0], int) for row in rows)

    def test_union_requires_children(self):
        with pytest.raises(OperatorError):
            UnionAll([])

    def test_union_incompatible_attribute_sets(self, people, simple_orders):
        with pytest.raises(OperatorError):
            UnionAll([Scan(people), Scan(simple_orders)])


class TestMaterializeHelper:
    def test_materialize(self, people):
        from repro.engine.executor import materialize

        relation = materialize(Scan(people), name="copy")
        assert relation.name == "copy"
        assert relation.rows == people.rows
        assert relation.schema.names == people.schema.names
