"""Regression tests for three telemetry bugs in the source-rate policy.

Each test fails on the pre-fix code:

* ``decide`` built its read-priority map from **every** relation the
  telemetry had seen — under serving pools the scratch telemetry can cover
  relations foreign to the current query, and those leaked into
  ``ReprioritizeReadsAction.priorities`` (inflating reprioritization counts
  with entries no read schedule uses).
* ``SourceRateEvent.stall_seconds`` returned ``0.0`` whenever
  ``next_arrival`` was ``None`` — reporting a *mid-outage* source (live
  stream, no schedulable arrival) as instantly ready, exactly the source a
  stall guard exists for.  Only an **exhausted** stream stalls nothing.
* with fewer than two rate polls, the remaining-window estimate fell back
  to the cumulative rate ``delivered / now``, which averages a collapsed
  source's healthy opening burst into its trickle and over-states delivery
  on a source that collapsed right at t0; the window history is now seeded
  from the cursor's delivery oracle at the first event.
"""

from __future__ import annotations

import math

import pytest

from repro.adaptivity import (
    AdaptationContext,
    AdaptationController,
    ReprioritizeReadsAction,
    SourceRatePolicy,
)
from repro.adaptivity.events import SourceRateEvent
from repro.workloads.differential import generate_workload


def _workload_with_joins(start_seed: int):
    seed = start_seed
    while True:
        workload = generate_workload(seed)
        if len(workload.query.relations) >= 2:
            return workload
        seed += 1


def _event(**overrides) -> SourceRateEvent:
    base = dict(
        phase_id=0,
        simulated_seconds=1.0,
        relation="f",
        consumed=10,
        next_arrival=None,
        exhausted=False,
        promised_rate=1000.0,
        arrived=10,
    )
    base.update(overrides)
    return SourceRateEvent(**base)


class TestForeignRelationPriorityLeak:
    def test_priorities_cover_only_the_querys_relations(self):
        """Telemetry about a foreign relation must never reach priorities.

        The scratch telemetry is fed one event per relation the monitor has
        ever reported — here the query's own relations plus a foreign one
        (as happens when policy state outlives a query under serving).  Any
        ReprioritizeReadsAction the policy proposes must be restricted to
        the current query's relations.
        """
        workload = _workload_with_joins(5100)
        query = workload.query
        catalog = workload.catalog()
        policy = SourceRatePolicy(catalog)
        controller = AdaptationController([policy])
        run = controller.begin(query, catalog)

        collapsed_relation = query.relations[0]
        healthy_relation = query.relations[-1]
        # A collapsed relation of this query (forces an action), a healthy
        # one (populates telemetry), and a collapsed *foreign* relation.
        policy.observe(
            run, _event(relation=collapsed_relation, consumed=5, arrived=5)
        )
        policy.observe(
            run,
            _event(
                relation=healthy_relation,
                consumed=900,
                arrived=900,
                next_arrival=1.0,
            ),
        )
        policy.observe(
            run, _event(relation="zz_foreign_relation", consumed=3, arrived=3)
        )

        context = AdaptationContext(
            query=query,
            catalog=catalog,
            observed=None,
            phase_id=0,
            now=1.0,
            current_tree=None,
            current_strategies=None,
            can_switch=False,
        )
        actions = policy.decide(run, context)
        assert actions is not None, "a collapsed own-relation must trigger actions"
        reprioritizations = [
            action for action in actions if isinstance(action, ReprioritizeReadsAction)
        ]
        assert reprioritizations, "expected a read re-prioritization"
        for action in reprioritizations:
            assert set(action.priorities) <= set(query.relations), (
                f"foreign relations leaked into the priority map: "
                f"{sorted(set(action.priorities) - set(query.relations))}"
            )
        assert any(
            action.priorities.get(collapsed_relation) == 1
            for action in reprioritizations
        )


class TestStallSecondsAmbiguity:
    def test_exhausted_stream_stalls_nothing(self):
        event = _event(exhausted=True, next_arrival=None)
        assert event.stall_seconds == 0.0

    def test_live_stream_without_schedule_is_an_unbounded_stall(self):
        """Mid-outage (live, no schedulable arrival) must not read as ready."""
        event = _event(exhausted=False, next_arrival=None)
        assert math.isinf(event.stall_seconds), (
            "a live stream with no scheduled arrival reported stall 0.0 — "
            "the stalled source a rate guard exists for read as instantly ready"
        )

    def test_scheduled_arrival_still_measures_normally(self):
        event = _event(next_arrival=3.25, simulated_seconds=1.0)
        assert event.stall_seconds == pytest.approx(2.25)
        past = _event(next_arrival=0.5, simulated_seconds=1.0)
        assert past.stall_seconds == 0.0


class TestCollapseAtT0Window:
    def test_first_event_seeds_the_rate_window_from_the_delivery_oracle(self):
        """A single poll must already yield a *windowed* rate estimate.

        Scenario: a source bursts 100 tuples early, then collapses to a
        trickle; the first rate poll lands at t=1.0 with 102 delivered.  The
        cumulative rate (102 t/s) wildly over-states the post-collapse
        delivery; the delivery oracle knows 100 tuples had already arrived
        by t=0.75, so the recent rate is 2 / 0.25 = 8 t/s.  Pre-fix, one
        poll meant no windowed estimate at all (falling back to the
        cumulative rate downstream).
        """
        workload = _workload_with_joins(5200)
        query = workload.query
        catalog = workload.catalog()
        relation = query.relations[0]

        class OracleCursor:
            consumed = 102

            @staticmethod
            def arrived_by(now: float) -> int:
                return 100 if now < 0.99 else 102

        policy = SourceRatePolicy(catalog)
        controller = AdaptationController([policy])
        run = controller.begin(query, catalog, cursors={relation: OracleCursor()})

        policy.observe(
            run,
            _event(relation=relation, simulated_seconds=1.0, consumed=102, arrived=102),
        )
        history = run.scratch(policy)["history"][relation]
        assert len(history) == 2, (
            "the first event must seed a synthetic earlier sample from the "
            "cursor's delivery oracle"
        )
        assert history[0] == (pytest.approx(0.75), 100)
        rate = policy._recent_rate(run, relation)
        assert rate is not None, (
            "one poll left the windowed rate unmeasurable — the remaining-"
            "window estimate falls back to the cumulative delivered/now, "
            "over-stating a source that collapsed at t0"
        )
        assert rate == pytest.approx(8.0)

    def test_seed_is_clamped_and_skipped_without_an_oracle(self):
        workload = _workload_with_joins(5200)
        query = workload.query
        catalog = workload.catalog()
        relation = query.relations[0]
        policy = SourceRatePolicy(catalog)
        controller = AdaptationController([policy])
        # No cursor → no oracle → no synthetic sample (and no crash).
        run = controller.begin(query, catalog)
        policy.observe(run, _event(relation=relation, simulated_seconds=1.0))
        assert len(run.scratch(policy)["history"][relation]) == 1
        # t=0 → nothing to backfill.
        run2 = controller.begin(query, catalog)
        policy.observe(run2, _event(relation=relation, simulated_seconds=0.0))
        assert len(run2.scratch(policy)["history"][relation]) == 1
