"""Tests for the tuple queue and the split/combine routing operators."""

import pytest

from repro.engine.operators.queue import QueueClosed, TupleQueue
from repro.engine.operators.scan import Scan
from repro.engine.operators.split import Combine, Split
from repro.core.router import RoundRobinRouter
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["k", "v"])


class TestTupleQueue:
    def test_push_pop_fifo(self):
        queue = TupleQueue()
        queue.push((1,))
        queue.push((2,))
        assert queue.pop() == (1,)
        assert queue.pop() == (2,)
        assert queue.pop() is None

    def test_close_semantics(self):
        queue = TupleQueue()
        queue.push((1,))
        queue.close()
        assert queue.is_closed
        assert not queue.is_exhausted  # one item still buffered
        with pytest.raises(QueueClosed):
            queue.push((2,))
        assert queue.pop() == (1,)
        assert queue.is_exhausted

    def test_capacity_and_counters(self):
        queue = TupleQueue(capacity=2)
        queue.push((1,))
        assert not queue.is_full
        queue.push((2,))
        assert queue.is_full
        assert queue.total_enqueued == 2
        assert len(queue) == 2

    def test_drain(self):
        queue = TupleQueue()
        for i in range(3):
            queue.push((i,))
        assert list(queue.drain()) == [(0,), (1,), (2,)]
        assert len(queue) == 0


class TestSplit:
    def test_routes_by_router_policy(self):
        targets = [TupleQueue("a"), TupleQueue("b")]
        split = Split(SCHEMA, targets, router=lambda row: row[0] % 2)
        for key in range(6):
            split.push((key, "x"))
        assert len(targets[0]) == 3
        assert len(targets[1]) == 3
        assert split.distribution() == {0: 3, 1: 3}

    def test_round_robin_router_with_split(self):
        targets = [TupleQueue(), TupleQueue(), TupleQueue()]
        split = Split(SCHEMA, targets, RoundRobinRouter(targets=3, chunk_size=2))
        split.push_all(iter([(i, None) for i in range(6)]))
        assert [len(q) for q in targets] == [2, 2, 2]

    def test_invalid_router_index(self):
        split = Split(SCHEMA, [TupleQueue()], router=lambda row: 5)
        with pytest.raises(IndexError):
            split.push((1, "x"))

    def test_requires_targets(self):
        with pytest.raises(ValueError):
            Split(SCHEMA, [], router=lambda row: 0)

    def test_close_closes_all_targets(self):
        targets = [TupleQueue(), TupleQueue()]
        split = Split(SCHEMA, targets, router=lambda row: 0)
        split.close()
        assert all(q.is_closed for q in targets)


class TestCombine:
    def test_round_robin_union(self):
        q1, q2 = TupleQueue(), TupleQueue()
        for i in range(3):
            q1.push((i, "q1"))
        q2.push((99, "q2"))
        q1.close(), q2.close()
        combine = Combine(SCHEMA, [q1, q2])
        rows = combine.run_to_completion()
        assert len(rows) == 4
        assert (99, "q2") in rows

    def test_adapts_source_layouts(self):
        reordered = Schema.from_names(["v", "k"])
        q1, q2 = TupleQueue(), TupleQueue()
        q1.push((1, "a"))
        q2.push(("b", 2))  # reordered layout
        q1.close(), q2.close()
        combine = Combine(SCHEMA, [q1, q2], source_schemas=[SCHEMA, reordered])
        rows = combine.run_to_completion()
        assert (1, "a") in rows and (2, "b") in rows

    def test_split_then_combine_is_lossless(self, people):
        queues = [TupleQueue(), TupleQueue()]
        split = Split(people.schema, queues, router=lambda row: row[0] % 2)
        split.push_all(Scan(people).execute())
        split.close()
        combine = Combine(people.schema, queues)
        assert sorted(combine.run_to_completion()) == sorted(people.rows)
