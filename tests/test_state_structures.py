"""Tests for state structures, including property-based consistency checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.state.base import StateStructure, StateStructureError
from repro.engine.state.btree import BPlusTreeState
from repro.engine.state.hash_sorted import SortedHashState
from repro.engine.state.hash_table import HashTableState
from repro.engine.state.list_state import ListState
from repro.engine.state.sorted_list import SortedListState
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["k", "v"])


def rows_from_keys(keys):
    return [(k, f"v{k}") for k in keys]


class TestBaseBehaviour:
    def test_probe_unsupported_on_list(self):
        state = ListState(SCHEMA)
        with pytest.raises(StateStructureError):
            state.probe(1)

    def test_describe_reports_properties(self):
        state = HashTableState(SCHEMA, "k")
        state.insert((1, "a"))
        info = state.describe()
        assert info["cardinality"] == 1
        assert info["key"] == "k"
        assert info["supports_key_access"] is True

    def test_adapted_scan_permutes(self):
        state = ListState(SCHEMA)
        state.insert((1, "a"))
        target = Schema.from_names(["v", "k"])
        assert list(state.adapted_scan(target)) == [("a", 1)]

    def test_swap_flags(self):
        state = ListState(SCHEMA)
        state.swap_to_disk()
        assert state.swapped_to_disk
        state.restore_from_disk()
        assert not state.swapped_to_disk

    def test_key_position_requires_key(self):
        with pytest.raises(StateStructureError):
            ListState(SCHEMA).key_position()
        assert HashTableState(SCHEMA, "v").key_position() == 1

    def test_base_class_is_abstract(self):
        base = StateStructure(SCHEMA)
        with pytest.raises(NotImplementedError):
            base.insert((1, "a"))
        with pytest.raises(NotImplementedError):
            base.scan()


class TestListState:
    def test_insert_scan_order_preserved(self):
        state = ListState(SCHEMA)
        state.insert_many(rows_from_keys([3, 1, 2]))
        assert [r[0] for r in state.scan()] == [3, 1, 2]
        assert len(state) == 3


class TestSortedListState:
    def test_keeps_sorted_under_random_inserts(self):
        state = SortedListState(SCHEMA, "k")
        state.insert_many(rows_from_keys([5, 1, 3, 2, 4]))
        assert [r[0] for r in state.scan()] == [1, 2, 3, 4, 5]

    def test_probe_duplicates(self):
        state = SortedListState(SCHEMA, "k")
        state.insert((1, "a"))
        state.insert((1, "b"))
        state.insert((2, "c"))
        assert len(state.probe(1)) == 2
        assert state.probe(9) == []

    def test_range_scan(self):
        state = SortedListState(SCHEMA, "k")
        state.insert_many(rows_from_keys(range(10)))
        assert [r[0] for r in state.range_scan(3, 6)] == [3, 4, 5, 6]

    def test_min_max(self):
        state = SortedListState(SCHEMA, "k")
        with pytest.raises(StateStructureError):
            state.min_key()
        state.insert_many(rows_from_keys([7, 2]))
        assert state.min_key() == 2 and state.max_key() == 7


class TestHashTableState:
    def test_probe(self):
        state = HashTableState(SCHEMA, "k")
        state.insert_many(rows_from_keys([1, 2, 1]))
        assert len(state.probe(1)) == 2
        assert state.probe(3) == []
        assert 1 in state and 3 not in state

    def test_scan_covers_everything(self):
        state = HashTableState(SCHEMA, "k")
        state.insert_many(rows_from_keys(range(20)))
        assert sorted(r[0] for r in state.scan()) == list(range(20))
        assert state.bucket_count() == 20

    def test_rehashed(self):
        state = HashTableState(SCHEMA, "k")
        state.insert((1, "a"))
        state.insert((2, "a"))
        rekeyed = state.rehashed("v")
        assert rekeyed.key == "v"
        assert len(rekeyed.probe("a")) == 2

    def test_spill_partition(self):
        state = HashTableState(SCHEMA, "k")
        state.insert_many(rows_from_keys(range(10)))
        spilled = state.spill_partition(lambda key: key % 2 == 0)
        assert spilled == 5
        assert state.is_spilled(4) and not state.is_spilled(3)
        assert state.swapped_to_disk
        state.unspill_all()
        assert not state.swapped_to_disk and not state.spilled_keys


class TestSortedHashState:
    def test_probe_and_sorted_scan(self):
        state = SortedHashState(SCHEMA, "k", bucket_count=4)
        state.insert_many(rows_from_keys([9, 3, 7, 1, 3]))
        assert len(state.probe(3)) == 2
        assert [r[0] for r in state.sorted_scan()] == [1, 3, 3, 7, 9]
        assert sorted(r[0] for r in state.scan()) == [1, 3, 3, 7, 9]
        assert sum(state.bucket_sizes()) == 5

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            SortedHashState(SCHEMA, "k", bucket_count=0)


class TestBPlusTree:
    def test_probe_and_duplicates(self):
        tree = BPlusTreeState(SCHEMA, "k", order=4)
        tree.insert_many(rows_from_keys([5, 1, 5, 3]))
        assert len(tree.probe(5)) == 2
        assert tree.probe(2) == []

    def test_sorted_full_scan_after_many_inserts(self):
        tree = BPlusTreeState(SCHEMA, "k", order=4)
        keys = [37, 2, 99, 4, 4, 58, 21, 13, 8, 71, 64, 50, 1, 90, 33]
        tree.insert_many(rows_from_keys(keys))
        assert [r[0] for r in tree.scan()] == sorted(keys)
        assert tree.min_key() == 1 and tree.max_key() == 99
        assert tree.height >= 2

    def test_range_scan(self):
        tree = BPlusTreeState(SCHEMA, "k", order=4)
        tree.insert_many(rows_from_keys(range(50)))
        assert [r[0] for r in tree.range_scan(10, 15)] == list(range(10, 16))
        assert list(tree.range_scan(30, 20)) == []

    def test_empty_tree_min_raises(self):
        tree = BPlusTreeState(SCHEMA, "k")
        with pytest.raises(StateStructureError):
            tree.min_key()

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTreeState(SCHEMA, "k", order=2)


# ---------------------------------------------------------------------------
# Property-based consistency: every keyed structure must agree with a naive
# dict-of-lists reference under arbitrary insertion sequences.
# ---------------------------------------------------------------------------

keys_strategy = st.lists(st.integers(min_value=-50, max_value=50), max_size=200)


@settings(max_examples=60, deadline=None)
@given(keys=keys_strategy)
def test_property_keyed_structures_agree_with_reference(keys):
    rows = [(k, i) for i, k in enumerate(keys)]
    reference: dict[int, list[tuple]] = {}
    for row in rows:
        reference.setdefault(row[0], []).append(row)

    structures = [
        HashTableState(SCHEMA, "k"),
        SortedListState(SCHEMA, "k"),
        SortedHashState(SCHEMA, "k", bucket_count=8),
        BPlusTreeState(SCHEMA, "k", order=4),
    ]
    for structure in structures:
        structure.insert_many(rows)
        assert len(structure) == len(rows)
        for key in set(keys) | {999}:
            assert sorted(structure.probe(key)) == sorted(reference.get(key, []))
        assert sorted(structure.scan()) == sorted(rows)


@settings(max_examples=60, deadline=None)
@given(keys=keys_strategy)
def test_property_ordered_structures_scan_in_key_order(keys):
    rows = [(k, i) for i, k in enumerate(keys)]
    sorted_list = SortedListState(SCHEMA, "k")
    btree = BPlusTreeState(SCHEMA, "k", order=4)
    sorted_hash = SortedHashState(SCHEMA, "k", bucket_count=8)
    for structure in (sorted_list, btree, sorted_hash):
        structure.insert_many(rows)
    expected_keys = sorted(k for k, _ in rows)
    assert [r[0] for r in sorted_list.scan()] == expected_keys
    assert [r[0] for r in btree.scan()] == expected_keys
    assert [r[0] for r in sorted_hash.sorted_scan()] == expected_keys
