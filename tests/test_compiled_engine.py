"""Unit tests for the compiled fused-pipeline engine and its satellites.

The differential suites (``test_differential_compiled.py``) prove
end-to-end bit-identity; these tests pin the individual contracts — the
deferred-charging API, predicate source emission, the specialized
aggregation fold, the tuple-adapter fast path, arrival-schedule priming
memoization, recompilation per phase and the engine-mode validation
surface — so a regression is reported at the component that broke.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.compiled import ENGINE_MODES, _Env, predicate_source
from repro.engine.cost import CostModel, ExecutionMetrics
from repro.engine.operators.aggregate import GroupAccumulator
from repro.engine.pipelined import PipelinedExecutor, PipelinedPlan, SourceCursor
from repro.core.corrective import CorrectiveQueryProcessor
from repro.optimizer.plans import JoinTree, PlanError
from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    BinaryPredicate,
    Comparison,
    Conjunction,
    Constant,
    Disjunction,
    JoinPredicate,
    Negation,
    TruePredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import TupleAdapter
from repro.sources.network import BurstyNetworkModel, NetworkModel
from repro.sources.remote import RemoteSource


class TestChargeBatch:
    def test_batch_charge_equals_per_tuple_charges(self):
        per_tuple = ExecutionMetrics()
        for _ in range(17):
            per_tuple.tuples_read += 1
            per_tuple.hash_inserts += 1
            per_tuple.hash_probes += 1
        for _ in range(5):
            per_tuple.predicate_evals += 1
        for _ in range(3):
            per_tuple.tuple_copies += 1
            per_tuple.tuples_output += 1
        batched = ExecutionMetrics()
        batched.charge_batch(
            tuples_read=17,
            hash_inserts=17,
            hash_probes=17,
            predicate_evals=5,
            tuple_copies=3,
            tuples_output=3,
        )
        assert batched.as_dict() == per_tuple.as_dict()
        assert batched.work(CostModel()) == per_tuple.work(CostModel())

    def test_all_counters_reachable(self):
        metrics = ExecutionMetrics()
        metrics.charge_batch(
            tuples_read=1,
            hash_inserts=2,
            hash_probes=3,
            comparisons=4,
            predicate_evals=5,
            tuple_copies=6,
            aggregate_updates=7,
            tuples_output=8,
            batches_read=9,
        )
        assert metrics.as_dict() == {
            "tuples_read": 1,
            "hash_inserts": 2,
            "hash_probes": 3,
            "comparisons": 4,
            "predicate_evals": 5,
            "tuple_copies": 6,
            "aggregate_updates": 7,
            "tuples_output": 8,
            "batches_read": 9,
        }


class TestPredicateSource:
    SCHEMA = Schema.from_names(["a", "b", "c"])

    def _check(self, predicate, rows):
        env = _Env()
        src = predicate_source(predicate, self.SCHEMA, env)
        compiled_fn = predicate.compile(self.SCHEMA)
        namespace = dict(env.bindings)
        generated = eval(  # noqa: S307 - test mirror of the engine's exec
            f"lambda row: bool({src})", namespace
        )
        for row in rows:
            assert generated(row) == bool(compiled_fn(row)), (
                f"{src} disagrees with interpreter on {row}"
            )

    def test_comparisons_match_interpreter(self):
        rng = random.Random(0)
        rows = [tuple(rng.randrange(6) for _ in range(3)) for _ in range(50)]
        for op in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            self._check(Comparison(AttributeRef("a"), op, Constant(3)), rows)
            self._check(Comparison(AttributeRef("a"), op, AttributeRef("b")), rows)

    def test_boolean_connectives_match_interpreter(self):
        rng = random.Random(1)
        rows = [tuple(rng.randrange(4) for _ in range(3)) for _ in range(60)]
        a_eq = Comparison(AttributeRef("a"), "=", Constant(1))
        b_lt = Comparison(AttributeRef("b"), "<", Constant(2))
        self._check(Conjunction((a_eq, b_lt)), rows)
        self._check(Disjunction((a_eq, b_lt)), rows)
        self._check(Negation(a_eq), rows)
        self._check(Conjunction((Disjunction((a_eq, b_lt)), Negation(b_lt))), rows)
        self._check(TruePredicate(), rows)
        self._check(Conjunction(()), rows)
        self._check(Disjunction(()), rows)

    def test_binary_predicate_binds_callable(self):
        rows = [(1, 2, 0), (2, 1, 0), (3, 3, 0)]
        self._check(
            BinaryPredicate("a", "b", lambda x, y: x > y, label="gt"), rows
        )

    def test_constants_are_bound_not_inlined(self):
        """Mutable/odd constants must round-trip through env bindings."""
        marker = object()
        env = _Env()
        src = predicate_source(
            Comparison(AttributeRef("a"), "=", Constant(marker)),
            self.SCHEMA,
            env,
        )
        namespace = dict(env.bindings)
        fn = eval(f"lambda row: {src}", namespace)
        assert fn((marker, 0, 0)) is True
        assert fn((object(), 0, 0)) is False


class TestBatchFold:
    SCHEMA = Schema.from_names(["g", "h", "v", "w"])

    def _rows(self, n=200, seed=3):
        rng = random.Random(seed)
        return [
            (rng.randrange(5), rng.randrange(3), rng.randrange(100), rng.random())
            for _ in range(n)
        ]

    @pytest.mark.parametrize(
        "aggregates",
        [
            [Aggregate("sum", "v", "s")],
            [Aggregate("count", None, "n")],
            [Aggregate("min", "v", "lo"), Aggregate("max", "v", "hi")],
            [Aggregate("avg", "w", "m")],
            [
                Aggregate("sum", "w", "s"),
                Aggregate("count", None, "n"),
                Aggregate("min", "v", "lo"),
            ],
        ],
    )
    @pytest.mark.parametrize("group", [["g"], ["g", "h"]])
    def test_fold_matches_accumulate_batch(self, aggregates, group):
        rows = self._rows()
        reference = GroupAccumulator(self.SCHEMA, group, aggregates)
        reference.accumulate_batch(rows)
        folded = GroupAccumulator(self.SCHEMA, group, aggregates)
        fold = folded.make_batch_fold()
        assert fold is not None
        fold(rows)
        assert folded._groups == reference._groups
        assert sorted(map(repr, folded.results())) == sorted(
            map(repr, reference.results())
        )
        assert folded.tuples_consumed == reference.tuples_consumed
        assert (
            folded.metrics.aggregate_updates == reference.metrics.aggregate_updates
        )

    def test_fold_float_sum_order_is_identical(self):
        """Float folds must accumulate in row order, like the interpreter."""
        rows = self._rows(500, seed=9)
        aggregates = [Aggregate("sum", "w", "s")]
        reference = GroupAccumulator(self.SCHEMA, ["g"], aggregates)
        reference.accumulate_batch(rows)
        folded = GroupAccumulator(self.SCHEMA, ["g"], aggregates)
        folded.make_batch_fold()(rows)
        # Exact equality: same fold order, bit-identical float results.
        assert folded._groups == reference._groups

    def test_fold_with_position_map_composes_adapter(self):
        rows = self._rows()
        source = Schema.from_names(["w", "v", "h", "g"])  # permuted layout
        adapter = TupleAdapter(source, self.SCHEMA)
        aggregates = [Aggregate("sum", "v", "s"), Aggregate("count", None, "n")]
        reference = GroupAccumulator(self.SCHEMA, ["g"], aggregates)
        reference.accumulate_batch(adapter.adapt_many(rows))
        folded = GroupAccumulator(self.SCHEMA, ["g"], aggregates)
        fold = folded.make_batch_fold(position_map=adapter._mapping)
        assert fold is not None
        fold(rows)  # un-adapted rows; permutation composed into the fold
        assert folded._groups == reference._groups

    def test_fold_refuses_partial_input(self):
        partial_schema = Schema.from_names(["g", "s"])
        accumulator = GroupAccumulator(
            partial_schema, ["g"], [Aggregate("sum", "v", "s")], input_is_partial=True
        )
        assert accumulator.make_batch_fold() is None

    def test_fold_refuses_unmapped_attributes(self):
        accumulator = GroupAccumulator(
            self.SCHEMA, ["g"], [Aggregate("sum", "v", "s")]
        )
        # position_map sending the value column nowhere (missing attribute).
        assert accumulator.make_batch_fold(position_map=(0, 1, -1, 3)) is None


class TestTupleAdapterFastPath:
    def test_itemgetter_path_matches_generic_loop(self):
        """Satellite: the fast path must equal the per-tuple slow path."""
        rng = random.Random(5)
        for arity in (1, 2, 3, 6):
            names = [f"a{i}" for i in range(arity)]
            source = Schema.from_names(names)
            for _ in range(10):
                order = names[:]
                rng.shuffle(order)
                keep = order[: rng.randint(1, arity)]
                target = Schema.from_names(keep)
                adapter = TupleAdapter(source, target)
                assert adapter._getter is not None  # fast path engaged
                for _ in range(5):
                    row = tuple(rng.randrange(100) for _ in range(arity))
                    # The generic (slow) gather, inlined as the oracle:
                    expected = tuple(
                        row[i] if i >= 0 else adapter.fill_value
                        for i in adapter._mapping
                    )
                    assert adapter.adapt(row) == expected
                    assert adapter(row) == expected  # __call__ alias
                assert adapter.adapt_many([row]) == [expected]

    def test_zero_and_single_attribute_targets(self):
        source = Schema.from_names(["a", "b"])
        single = TupleAdapter(source, Schema.from_names(["b"]))
        assert single.adapt((1, 2)) == (2,)
        empty = TupleAdapter(source, Schema(()))
        assert empty.adapt((1, 2)) == ()

    def test_missing_attributes_take_slow_path(self):
        source = Schema.from_names(["a"])
        target = Schema.from_names(["a", "pad"])
        adapter = TupleAdapter(source, target, fill_value="x")
        assert adapter._getter is None
        assert adapter.adapt((1,)) == (1, "x")
        assert adapter.adapt_many([(1,), (2,)]) == [(1, "x"), (2, "x")]


class _CountingNetwork(NetworkModel):
    """Wraps a network model, counting arrival_times materializations."""

    def __init__(self, inner: NetworkModel) -> None:
        self.inner = inner
        self.calls = 0

    def arrival_times(self, tuple_count: int):
        self.calls += 1
        return self.inner.arrival_times(tuple_count)


class TestArrivalSchedulePriming:
    def _relation(self, n=40):
        schema = Schema.from_names(["k", "v"], relation="r")
        return Relation("r", schema, [(i, i * 2) for i in range(n)])

    def test_priming_happens_at_most_once_per_source_network_pair(self):
        """Satellite regression: every access path shares one materialization."""
        network = _CountingNetwork(BurstyNetworkModel(seed=11))
        source = RemoteSource(self._relation(), network)
        source.prime()
        assert network.calls == 1
        # Every subsequent consumer — column streams, batch streams, tuple
        # streams, cursors, repeated opens — reuses the cached schedule.
        list(source.open_stream_columns(8))
        list(source.open_stream_batches(8))
        list(source.open_stream())
        for _ in range(3):
            cursor = SourceCursor("r", source, prefetch=4)
            while cursor.read() is not None:
                pass
        assert network.calls == 1
        assert source.open_count == 6

    def test_unprimed_source_materializes_lazily_once(self):
        network = _CountingNetwork(BurstyNetworkModel(seed=12))
        source = RemoteSource(self._relation(), network)
        assert network.calls == 0
        cursor = SourceCursor("r", source, prefetch=4)
        cursor.read_batch(1000)
        assert network.calls == 1
        SourceCursor("r", source, prefetch=4).read_batch(1000)
        assert network.calls == 1

    def test_column_chunks_match_pair_chunks(self):
        source = RemoteSource(self._relation(), BurstyNetworkModel(seed=13))
        pairs = [item for chunk in source.open_stream_batches(7) for item in chunk]
        flattened = []
        for rows, arrivals in source.open_stream_columns(7):
            if arrivals is None:
                arrivals = [0.0] * len(rows)
            flattened.extend(zip(rows, arrivals))
        assert flattened == pairs


def _tiny_workload():
    r = Relation(
        "r", Schema.from_names(["r_pk", "r_v"], relation="r"),
        [(i % 4, i) for i in range(24)],
    )
    s = Relation(
        "s", Schema.from_names(["s_fk", "s_v"], relation="s"),
        [(i % 4, i * 10) for i in range(16)],
    )
    query = SPJAQuery(
        name="tiny",
        relations=("r", "s"),
        join_predicates=(JoinPredicate("s", "s_fk", "r", "r_pk"),),
        selections={},
        aggregation=None,
    )
    return query, {"r": r, "s": s}


class TestEngineModeSurface:
    def test_unknown_mode_rejected(self):
        query, sources = _tiny_workload()
        with pytest.raises(PlanError, match="engine_mode"):
            PipelinedExecutor(sources, batch_size=8, engine_mode="jit").execute(
                query, JoinTree.left_deep(["r", "s"])
            )

    def test_compiled_requires_batch_size(self):
        query, sources = _tiny_workload()
        with pytest.raises(PlanError, match="batch_size"):
            PipelinedExecutor(sources, engine_mode="compiled").execute(
                query, JoinTree.left_deep(["r", "s"])
            )

    def test_corrective_validates_eagerly(self):
        query, sources = _tiny_workload()
        from repro.relational.catalog import Catalog

        catalog = Catalog()
        for name, relation in sources.items():
            catalog.register(name, relation.schema)
        with pytest.raises(ValueError, match="batch_size"):
            CorrectiveQueryProcessor(catalog, sources, engine_mode="compiled")
        with pytest.raises(ValueError, match="engine_mode"):
            CorrectiveQueryProcessor(catalog, sources, engine_mode="fused")

    def test_server_validates_eagerly(self):
        from repro.relational.catalog import Catalog
        from repro.serving.server import QueryServer

        query, sources = _tiny_workload()
        catalog = Catalog()
        for name, relation in sources.items():
            catalog.register(name, relation.schema)
        with pytest.raises(ValueError, match="batch_size"):
            QueryServer(catalog, sources, engine_mode="compiled")

    def test_modes_constant(self):
        assert ENGINE_MODES == ("interpreted", "compiled")

    def test_compiled_executor_matches_interpreted(self):
        query, sources = _tiny_workload()
        tree = JoinTree.left_deep(["r", "s"])
        interpreted_rows, interpreted_plan = PipelinedExecutor(
            sources, batch_size=8
        ).execute(query, tree)
        compiled_rows, compiled_plan = PipelinedExecutor(
            sources, batch_size=8, engine_mode="compiled"
        ).execute(query, tree)
        assert sorted(compiled_rows) == sorted(interpreted_rows)
        assert compiled_plan.metrics.as_dict() == interpreted_plan.metrics.as_dict()
        assert compiled_plan.clock.now == interpreted_plan.clock.now


class TestRecompilation:
    def test_chains_are_compiled_lazily_per_plan(self):
        query, sources = _tiny_workload()
        tree = JoinTree.left_deep(["r", "s"])
        cursors = {
            name: SourceCursor(name, source) for name, source in sources.items()
        }
        plan = PipelinedPlan(
            query,
            tree,
            cursors,
            output_sink=lambda row: None,
            batch_size=8,
            engine_mode="compiled",
        )
        assert plan._compiled_chains is None  # not yet compiled
        plan.run()
        assert set(plan._compiled_chains) == {"r", "s"}

    def test_each_phase_gets_fresh_chains(self):
        """A corrective phase switch rebuilds the plan ⇒ recompiles chains."""
        query, sources = _tiny_workload()
        tree = JoinTree.left_deep(["r", "s"])

        def build_and_run():
            cursors = {
                name: SourceCursor(name, source)
                for name, source in sources.items()
            }
            plan = PipelinedPlan(
                query,
                tree,
                cursors,
                output_sink=lambda row: None,
                batch_size=8,
                engine_mode="compiled",
            )
            plan.run()
            return plan._compiled_chains

        first = build_and_run()
        second = build_and_run()
        # Fresh closures per plan (bound to that plan's states/metrics)...
        assert first["r"] is not second["r"]
        # ...but the generated source is cached and reused verbatim.
        assert (
            first["r"].__compiled_source__ == second["r"].__compiled_source__
        )

    def test_source_text_is_deterministic_for_identical_structure(self):
        from repro.engine.compiled import _code_cache, _code_for

        src = "def _probe_cache_fn():\n    return 1\n"
        code_a = _code_for(src)
        code_b = _code_for(src)
        assert code_a is code_b
        assert src in _code_cache
