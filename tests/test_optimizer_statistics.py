"""Tests for runtime statistics and the selectivity estimator."""

import pytest

from repro.optimizer.statistics import (
    ObservedStatistics,
    SelectivityEstimator,
    fraction_consumed,
    predicate_key,
    selectivity_key,
)
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, DEFAULT_ASSUMED_CARDINALITY, TableStatistics
from repro.relational.expressions import (
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.relational.schema import Schema


def make_catalog(with_stats=True):
    catalog = Catalog()
    catalog.register(
        "r",
        Schema.from_names(["rk", "rv"], relation="r"),
        TableStatistics(cardinality=1000, key_attributes=("rk",), distinct_counts={"rk": 1000, "rv": 10})
        if with_stats
        else None,
    )
    catalog.register(
        "s",
        Schema.from_names(["sk", "s_rk"], relation="s"),
        TableStatistics(cardinality=10_000, key_attributes=("sk",), distinct_counts={"s_rk": 1000})
        if with_stats
        else None,
    )
    return catalog


def make_query(selection=None):
    return SPJAQuery(
        name="rs",
        relations=("r", "s"),
        join_predicates=(JoinPredicate("r", "rk", "s", "s_rk"),),
        selections=selection or {},
    )


class TestObservedStatistics:
    def test_record_and_lookup_selectivity(self):
        observed = ObservedStatistics()
        observed.record_selectivity(["r", "s"], 0.25)
        assert observed.selectivity_of(["s", "r"]) == 0.25
        assert observed.selectivity_of(["r"]) is None

    def test_record_source_keeps_maxima(self):
        observed = ObservedStatistics()
        observed.record_source("r", 10, 5, False)
        observed.record_source("r", 8, 4, True)
        source = observed.source("r")
        assert source.tuples_read == 10
        assert source.tuples_passed_selection == 5
        assert source.exhausted
        assert source.observed_selection_selectivity == pytest.approx(0.5)

    def test_multiplicative_flags_keep_largest_factor(self):
        observed = ObservedStatistics()
        predicate = JoinPredicate("r", "rk", "s", "s_rk")
        observed.flag_multiplicative(predicate, 2.0)
        observed.flag_multiplicative(predicate, 1.5)
        assert observed.multiplicative_factor(predicate) == 2.0

    def test_merge(self):
        a, b = ObservedStatistics(), ObservedStatistics()
        a.record_selectivity(["r"], 0.5)
        b.record_selectivity(["r"], 0.7)
        b.record_source("s", 3, 3, False)
        a.merge(b)
        assert a.selectivity_of(["r"]) == 0.7
        assert a.source("s").tuples_read == 3

    def test_keys(self):
        assert selectivity_key(["a", "b"]) == frozenset({"a", "b"})
        p = JoinPredicate("a", "x", "b", "y")
        q = JoinPredicate("b", "y", "a", "x")
        assert predicate_key(p) == predicate_key(q)


class TestSelectivityEstimator:
    def test_base_cardinality_prefers_exact_then_published_then_default(self):
        catalog = make_catalog()
        query = make_query()
        estimator = SelectivityEstimator(catalog, query)
        assert estimator.base_cardinality("r") == 1000

        no_stats = SelectivityEstimator(make_catalog(with_stats=False), query)
        assert no_stats.base_cardinality("r") == DEFAULT_ASSUMED_CARDINALITY

        observed = ObservedStatistics()
        observed.record_source("r", 1234, 1234, exhausted=True)
        exact = SelectivityEstimator(catalog, query, observed)
        assert exact.base_cardinality("r") == 1234

    def test_base_cardinality_never_below_observed(self):
        observed = ObservedStatistics()
        observed.record_source("r", 5000, 5000, exhausted=False)
        estimator = SelectivityEstimator(make_catalog(), make_query(), observed)
        assert estimator.base_cardinality("r") == 5000

    def test_selected_cardinality_uses_equality_distinct_counts(self):
        catalog = make_catalog()
        query = make_query({"r": Comparison(AttributeRef("rv"), "=", Constant(3))})
        estimator = SelectivityEstimator(catalog, query)
        # distinct(rv) = 10 -> selectivity 1/10
        assert estimator.selected_cardinality("r") == pytest.approx(100)

    def test_selected_cardinality_prefers_observed_selectivity(self):
        observed = ObservedStatistics()
        observed.record_source("r", 100, 50, False)
        query = make_query({"r": Comparison(AttributeRef("rv"), "=", Constant(3))})
        estimator = SelectivityEstimator(make_catalog(), query, observed)
        assert estimator.selected_cardinality("r") == pytest.approx(500)

    def test_join_estimate_averages_system_r_and_fk_speculation(self):
        estimator = SelectivityEstimator(make_catalog(), make_query())
        estimate = estimator.estimate_cardinality(frozenset({"r", "s"}))
        system_r = 1000 * 10_000 / 1000  # 1/max(distinct) on the join keys
        fk = 10_000
        assert estimate == pytest.approx((system_r + fk) / 2)

    def test_observed_selectivity_overrides_heuristics(self):
        observed = ObservedStatistics()
        observed.record_selectivity(["r", "s"], 1e-4)
        estimator = SelectivityEstimator(make_catalog(), make_query(), observed)
        assert estimator.estimate_cardinality(frozenset({"r", "s"})) == pytest.approx(
            1e-4 * 1000 * 10_000
        )

    def test_multiplicative_flag_scales_estimate(self):
        observed = ObservedStatistics()
        observed.flag_multiplicative(JoinPredicate("r", "rk", "s", "s_rk"), 3.0)
        baseline = SelectivityEstimator(make_catalog(), make_query()).estimate_cardinality(
            frozenset({"r", "s"})
        )
        flagged = SelectivityEstimator(make_catalog(), make_query(), observed).estimate_cardinality(
            frozenset({"r", "s"})
        )
        assert flagged == pytest.approx(3.0 * baseline)

    def test_selectivity_definition(self):
        estimator = SelectivityEstimator(make_catalog(), make_query())
        relations = frozenset({"r", "s"})
        expected = estimator.estimate_cardinality(relations) / (1000 * 10_000)
        assert estimator.selectivity(relations) == pytest.approx(expected)

    def test_cache_invalidation(self):
        estimator = SelectivityEstimator(make_catalog(), make_query())
        first = estimator.estimate_cardinality(frozenset({"r", "s"}))
        estimator.observed.record_selectivity(["r", "s"], 1.0)
        # cached value still returned until invalidated
        assert estimator.estimate_cardinality(frozenset({"r", "s"})) == first
        estimator.invalidate_cache()
        assert estimator.estimate_cardinality(frozenset({"r", "s"})) != first


class TestFractionConsumed:
    def test_fractions(self):
        catalog = make_catalog()
        observed = ObservedStatistics()
        observed.record_source("r", 500, 500, False)
        observed.record_source("s", 10_000, 10_000, True)
        fractions = fraction_consumed(observed, catalog, ["r", "s"])
        assert fractions["r"] == pytest.approx(0.5)
        assert fractions["s"] == 1.0

    def test_unknown_source_is_zero(self):
        fractions = fraction_consumed(ObservedStatistics(), make_catalog(), ["r"])
        assert fractions["r"] == 0.0
