"""Units for the order-adaptive join subsystem.

Covers the pieces end to end at small scale: order detectors on source
cursors, ordering knowledge fusion (promises vs observations), strategy
selection over join trees, the sorted-run state structure, the pipelined
merge-join node (including robustness to out-of-order input), order-aware
costing/re-optimization, the sorted-input cardinality extrapolation, and the
serving-layer sharing of discovered orderings.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.corrective import CorrectiveQueryProcessor
from repro.core.monitor import ExecutionMonitor
from repro.engine.cost import ExecutionMetrics
from repro.engine.pipelined import PipelinedExecutor, PipelinedPlan, SourceCursor
from repro.engine.pipelined_merge import PipelinedMergeJoinNode
from repro.engine.state.sorted_run import SortedRunState
from repro.optimizer.ordering import (
    JoinStrategy,
    OrderingKnowledge,
    plan_join_strategies,
    refresh_strategies,
)
from repro.optimizer.plans import JoinTree
from repro.optimizer.reoptimizer import ReOptimizer
from repro.optimizer.statistics import ObservedStatistics, SelectivityEstimator
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.expressions import JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving.stats_cache import SharedStatisticsCache
from repro.stats.order_detector import OrderDetector


def _two_source_fixture(n=600, sorted_s=True, seed=11):
    rng = random.Random(seed)
    r_schema = Schema.from_names(["r_pk", "r_val"], relation="r")
    s_schema = Schema.from_names(["s_fk", "s_val"], relation="s")
    r_rows = [(i, rng.randrange(50)) for i in range(n)]
    s_rows = [(rng.randrange(n), rng.randrange(50)) for _ in range(n)]
    if sorted_s:
        s_rows.sort()
    relations = {
        "r": Relation("r", r_schema, r_rows),
        "s": Relation("s", s_schema, s_rows),
    }
    query = SPJAQuery("q", ("r", "s"), (JoinPredicate("s", "s_fk", "r", "r_pk"),))
    return query, relations


def _reference_join(relations):
    r_index = {}
    for row in relations["r"].rows:
        r_index.setdefault(row[0], []).append(row)
    out = []
    for s_row in relations["s"].rows:
        for r_row in r_index.get(s_row[0], []):
            out.append(r_row + s_row)
    return Counter(out)


class TestCursorOrderDetectors:
    def test_detector_sees_every_consumed_tuple_in_order(self):
        relation = Relation(
            "t", Schema.from_names(["a", "b"]), [(i, i * 2) for i in range(100)]
        )
        cursor = SourceCursor("t", relation)
        detector = cursor.ensure_order_detector("a")
        # Mixed read APIs must all feed the detector.
        cursor.read()
        cursor.read_batch(10)
        cursor.read_zero_batch(20)
        while cursor.read() is not None:
            pass
        assert detector.observed == 100
        assert detector.direction() == 1
        assert detector.min_value == 0 and detector.max_value == 99

    def test_ensure_is_idempotent_and_persists(self):
        relation = Relation("t", Schema.from_names(["a"]), [(3,), (1,), (2,)])
        cursor = SourceCursor("t", relation)
        first = cursor.ensure_order_detector("a", tolerance=0.1)
        again = cursor.ensure_order_detector("a", tolerance=0.5)
        assert first is again
        assert first.tolerance == 0.1
        assert set(cursor.order_detectors) == {"a"}


class TestOrderDetectorLateness:
    def test_in_order_fraction_stricter_than_adjacent_violations(self):
        detector = OrderDetector()
        # One early high value: a single adjacent inversion, but every later
        # arrival is below the high-water mark.
        detector.add_many([100, 1, 2, 3, 4, 5])
        assert detector.ascending_violations == 1
        assert detector.below_highwater == 5
        assert detector.in_order_fraction(1) == 0.0

    def test_descending_in_order_fraction(self):
        detector = OrderDetector()
        detector.add_many([9, 7, 5, 3])
        assert detector.in_order_fraction(-1) == 1.0
        assert detector.above_lowwater == 0

    def test_descending_progress_fraction(self):
        detector = OrderDetector()
        detector.add_many([100, 90, 80, 70, 60])
        assert detector.progress_fraction(0, 100) == pytest.approx(0.4)


class TestOrderingKnowledge:
    def _catalog(self, promise=True):
        catalog = Catalog()
        catalog.register(
            "r",
            Schema.from_names(["r_pk"], relation="r"),
            TableStatistics(sorted_on=("r_pk",) if promise else ()),
        )
        catalog.register(
            "s",
            Schema.from_names(["s_fk"], relation="s"),
            TableStatistics(sorted_on=("s_fk",) if promise else ()),
        )
        return catalog

    def _query(self):
        return SPJAQuery("q", ("r", "s"), (JoinPredicate("s", "s_fk", "r", "r_pk"),))

    def test_promises_seed_knowledge(self):
        knowledge = OrderingKnowledge.gather(self._catalog(), self._query())
        assert knowledge.side("r", "r_pk").direction == 1
        assert knowledge.side("r", "r_pk").source == "promise"

    def test_observation_overrides_lying_promise(self):
        observed = ObservedStatistics()
        detector = OrderDetector(tolerance=0.05)
        detector.add_many(random.Random(3).sample(range(100), 100))
        observed.record_ordering("r", "r_pk", detector)
        knowledge = OrderingKnowledge.gather(self._catalog(), self._query(), observed)
        assert knowledge.side("r", "r_pk").direction is None
        assert knowledge.side("r", "r_pk").source == "observed"

    def test_small_observation_keeps_promise(self):
        observed = ObservedStatistics()
        detector = OrderDetector()
        detector.add_many([5, 3, 1])  # too few arrivals to trust
        observed.record_ordering("r", "r_pk", detector)
        knowledge = OrderingKnowledge.gather(self._catalog(), self._query(), observed)
        assert knowledge.side("r", "r_pk").direction == 1
        assert knowledge.side("r", "r_pk").source == "promise"

    def test_strategy_selection_and_refresh(self):
        query = self._query()
        tree = JoinTree.left_deep(("r", "s"))
        knowledge = OrderingKnowledge.gather(self._catalog(), query)
        strategies = plan_join_strategies(query, tree, knowledge)
        strategy = strategies[frozenset(("r", "s"))]
        assert strategy.algorithm == "merge"
        assert strategy.direction == 1
        assert {strategy.left_key, strategy.right_key} == {"r_pk", "s_fk"}

        # After the detectors expose s as unordered, refresh keeps the
        # (running) merge algorithm but re-prices its in-order fraction,
        # while a fresh selection no longer picks merge at all.
        observed = ObservedStatistics()
        detector = OrderDetector(tolerance=0.05)
        detector.add_many(random.Random(5).sample(range(200), 200))
        observed.record_ordering("s", "s_fk", detector)
        newer = OrderingKnowledge.gather(self._catalog(), query, observed)
        assert plan_join_strategies(query, tree, newer) == {}
        refreshed = refresh_strategies(query, tree, strategies, newer)
        merged = refreshed[frozenset(("r", "s"))]
        assert merged.algorithm == "merge"
        side_fraction = (
            merged.left_in_order if merged.left_key == "s_fk" else merged.right_in_order
        )
        assert side_fraction < 0.5

    def test_mixed_directions_are_not_merge_eligible(self):
        query = self._query()
        observed = ObservedStatistics()
        asc, desc = OrderDetector(), OrderDetector()
        asc.add_many(range(50))
        desc.add_many(range(50, 0, -1))
        observed.record_ordering("r", "r_pk", asc)
        observed.record_ordering("s", "s_fk", desc)
        knowledge = OrderingKnowledge.gather(self._catalog(False), query, observed)
        assert plan_join_strategies(query, JoinTree.left_deep(("r", "s")), knowledge) == {}

    def test_descending_both_sides_selects_descending_merge(self):
        query = self._query()
        observed = ObservedStatistics()
        for relation, attr in (("r", "r_pk"), ("s", "s_fk")):
            detector = OrderDetector()
            detector.add_many(range(50, 0, -1))
            observed.record_ordering(relation, attr, detector)
        knowledge = OrderingKnowledge.gather(self._catalog(False), query, observed)
        strategies = plan_join_strategies(query, JoinTree.left_deep(("r", "s")), knowledge)
        assert strategies[frozenset(("r", "s"))].direction == -1


class TestSortedRunState:
    def test_two_tier_probe_and_eviction(self):
        schema = Schema.from_names(["k", "v"])
        state = SortedRunState(schema, "k")
        for key in (1, 2, 2, 3, 5):
            state.insert((key, key * 10))
        assert state.active_size() == 5
        moved = state.evict_below(3)
        assert moved == 3
        assert state.active_size() == 2 and state.archived_size() == 3
        assert state.probe_active(2) == []
        assert sorted(state.probe_archive(2)) == [(2, 20), (2, 20)]
        # probe() spans both tiers; scan()/len() always cover everything.
        assert sorted(state.probe(2)) == [(2, 20), (2, 20)]
        assert len(state) == 5
        assert sorted(state.scan()) == [(1, 10), (2, 20), (2, 20), (3, 30), (5, 50)]
        assert state.peak_active == 5
        assert state.swapped_to_disk

    def test_out_of_order_insert_after_eviction_stays_probeable(self):
        schema = Schema.from_names(["k"])
        state = SortedRunState(schema, "k")
        for key in (1, 2, 3, 4):
            state.insert((key,))
        state.evict_below(4)
        state.insert((2,))  # straggler below the eviction bound
        assert state.probe_active(2) == [(2,)]
        assert state.probe(2) == [(2,), (2,)]

    def test_evict_above_for_descending_streams(self):
        schema = Schema.from_names(["k"])
        state = SortedRunState(schema, "k")
        for key in (9, 7, 5, 3):
            state.insert((key,))
        moved = state.evict_above(5)
        assert moved == 2
        assert state.active_size() == 2 and state.archived_size() == 2
        assert state.probe_archive(9) == [(9,)]


class TestPipelinedMergeNode:
    def _node(self, direction=1):
        left = Schema.from_names(["a"], relation="l")
        right = Schema.from_names(["b"], relation="r")
        node = PipelinedMergeJoinNode(
            left, right, "a", "b", None, ExecutionMetrics(), direction=direction
        )
        node.left_relations = frozenset(("l",))
        node.right_relations = frozenset(("r",))
        out = []
        node.sink = out.append
        node.sink_batch = out.extend
        return node, out

    def test_sorted_streams_join_with_bounded_window(self):
        node, out = self._node()
        for i in range(100):
            node.push((i,), "left")
            node.push((i,), "right")
        assert sorted(out) == [(i, i) for i in range(100)]
        assert node.late_arrivals == 0
        # The active window stays tiny: eviction tracks the watermarks.
        assert node.peak_state_tuples() <= 6
        assert node.metrics.comparisons == 2 * 200
        assert node.metrics.hash_inserts == 0

    def test_unordered_streams_still_join_exactly(self):
        rng = random.Random(17)
        left_rows = [(rng.randrange(30),) for _ in range(200)]
        right_rows = [(rng.randrange(30),) for _ in range(200)]
        node, out = self._node()
        for l, r in zip(left_rows, right_rows):
            node.push(l, "left")
            node.push(r, "right")
        expected = Counter(
            (l[0], r[0]) for l in left_rows for r in right_rows if l[0] == r[0]
        )
        assert Counter(out) == expected
        assert node.late_arrivals > 0
        assert node.metrics.hash_inserts == node.metrics.hash_probes > 0

    def test_push_batch_matches_push_exactly(self):
        rng = random.Random(23)
        left_rows = [(rng.randrange(20),) for _ in range(150)]
        right_rows = [(rng.randrange(20),) for _ in range(150)]
        tuple_node, tuple_out = self._node()
        for row in left_rows:
            tuple_node.push(row, "left")
        for row in right_rows:
            tuple_node.push(row, "right")
        batch_node, batch_out = self._node()
        batch_node.push_batch(left_rows, "left")
        batch_node.push_batch(right_rows, "right")
        assert Counter(batch_out) == Counter(tuple_out)
        assert batch_node.metrics.as_dict() == tuple_node.metrics.as_dict()

    def test_descending_direction(self):
        node, out = self._node(direction=-1)
        for i in range(50, 0, -1):
            node.push((i,), "left")
            node.push((i,), "right")
        assert sorted(out) == [(i, i) for i in range(1, 51)]
        assert node.late_arrivals == 0
        assert node.peak_state_tuples() <= 6


class TestOrderAdaptiveExecution:
    def test_forced_merge_plan_equals_hash_plan(self):
        query, relations = _two_source_fixture(sorted_s=False)
        tree = JoinTree.left_deep(("r", "s"))
        forced = {
            frozenset(("r", "s")): JoinStrategy(
                "merge", 1, left_key="r_pk", right_key="s_fk"
            )
        }
        hash_rows, _ = PipelinedExecutor(dict(relations)).execute(query, tree)
        merge_rows, merge_plan = PipelinedExecutor(
            dict(relations), join_strategies=forced
        ).execute(query, tree)
        assert Counter(merge_rows) == Counter(hash_rows) == _reference_join(relations)
        assert merge_plan.join_algorithms()[frozenset(("r", "s"))] == "merge"

    def test_corrective_selects_merge_on_promised_sorted_sources(self):
        query, relations = _two_source_fixture()
        relations["r"] = Relation(
            "r", relations["r"].schema, sorted(relations["r"].rows)
        )
        catalog = Catalog()
        catalog.register("r", relations["r"].schema, TableStatistics(sorted_on=("r_pk",)))
        catalog.register("s", relations["s"].schema, TableStatistics(sorted_on=("s_fk",)))
        processor = CorrectiveQueryProcessor(
            catalog, dict(relations), order_adaptive=True
        )
        report = processor.execute(query)
        assert report.details["phase_join_algorithms"][0] == {"r ⋈ s": "merge"}
        assert Counter(report.rows) == _reference_join(relations)
        baseline = CorrectiveQueryProcessor(catalog, dict(relations)).execute(query)
        assert report.details["peak_state_tuples"] < baseline.details["peak_state_tuples"]
        assert report.simulated_seconds < baseline.simulated_seconds

    def test_corrective_switches_to_merge_mid_flight_without_promises(self):
        query, relations = _two_source_fixture(n=2500)
        catalog = Catalog()
        catalog.register("r", relations["r"].schema)
        catalog.register("s", relations["s"].schema)
        processor = CorrectiveQueryProcessor(
            catalog,
            dict(relations),
            polling_interval_seconds=0.01,
            order_adaptive=True,
        )
        report = processor.execute(query, poll_step_limit=200)
        algorithms = report.details["phase_join_algorithms"]
        assert algorithms[0] == {"r ⋈ s": "hash"}
        assert {"r ⋈ s": "merge"} in algorithms[1:]
        assert Counter(report.rows) == _reference_join(relations)

    def test_monitor_records_orderings(self):
        query, relations = _two_source_fixture(n=60)
        cursors = {name: SourceCursor(name, rel) for name, rel in relations.items()}
        cursors["s"].ensure_order_detector("s_fk")
        plan = PipelinedPlan(
            query, JoinTree.left_deep(("r", "s")), cursors, lambda row: None
        )
        plan.run()
        monitor = ExecutionMonitor(query)
        observed = monitor.observe(plan, cursors)
        ordering = observed.ordering_of("s", "s_fk")
        assert ordering is not None
        assert ordering.direction == 1
        assert ordering.observed == 60


class TestSortedInputExtrapolation:
    def test_progress_based_cardinality_prediction(self):
        catalog = Catalog()
        schema = Schema.from_names(["k"], relation="t")
        catalog.register(
            "t", schema, TableStatistics(attribute_ranges={"k": (0.0, 1000.0)})
        )
        query = SPJAQuery("q", ("t",), ())
        observed = ObservedStatistics()
        detector = OrderDetector()
        detector.add_many(range(0, 250))  # advanced to 249 of [0, 1000]
        observed.record_ordering("t", "k", detector)
        observed.record_source("t", tuples_read=250, tuples_passed=250, exhausted=False)
        estimator = SelectivityEstimator(catalog, query, observed)
        # 250 tuples over ~25% of the domain extrapolates to ~1000 total —
        # overriding the 20k default assumption.
        assert estimator.base_cardinality("t") == pytest.approx(1004, rel=0.01)

    def test_seeded_ordering_does_not_collapse_estimate(self):
        """Regression: the extrapolation used to divide *this query's*
        ``tuples_read`` by a progress fraction frozen at a seeded (donor)
        observation's near-complete advance, collapsing the estimate to
        roughly the tuples read so far and overriding a correct published
        cardinality.  Numerator and progress must come from the same
        ordering observation."""
        catalog = Catalog()
        schema = Schema.from_names(["k"], relation="t")
        catalog.register(
            "t",
            schema,
            TableStatistics(cardinality=10_000, attribute_ranges={"k": (0.0, 9999.0)}),
        )
        query = SPJAQuery("q", ("t",), ())
        # Donor query fully read the stream; its observation is seeded.
        donor = OrderDetector()
        donor.add_many(range(10_000))
        observed = ObservedStatistics()
        observed.record_ordering("t", "k", donor)
        # This query has only read 30 tuples so far; its own detector
        # snapshot is staler than the seed and must not shrink the estimate.
        local = OrderDetector()
        local.add_many(range(30))
        observed.record_ordering("t", "k", local)
        observed.record_source("t", tuples_read=30, tuples_passed=30, exhausted=False)
        estimator = SelectivityEstimator(catalog, query, observed)
        assert estimator.base_cardinality("t") == pytest.approx(10_000, rel=0.01)

    def test_no_extrapolation_without_domain_or_order(self):
        catalog = Catalog()
        schema = Schema.from_names(["k"], relation="t")
        catalog.register("t", schema)
        query = SPJAQuery("q", ("t",), ())
        observed = ObservedStatistics()
        detector = OrderDetector()
        detector.add_many(range(0, 250))
        observed.record_ordering("t", "k", detector)
        estimator = SelectivityEstimator(catalog, query, observed)
        assert estimator.base_cardinality("t") == 20_000


class TestReOptimizerStrategySwitch:
    def test_same_tree_strategy_switch_is_recommended(self):
        query, relations = _two_source_fixture(n=400)
        catalog = Catalog()
        for name, rel in relations.items():
            catalog.register(name, rel.schema)
        observed = ObservedStatistics()
        for relation, attr in (("r", "r_pk"), ("s", "s_fk")):
            detector = OrderDetector()
            detector.add_many(range(40))
            observed.record_ordering(relation, attr, detector)
            observed.record_source(relation, 40, 40, exhausted=False)
        catalog.set_statistics("r", TableStatistics(cardinality=400))
        catalog.set_statistics("s", TableStatistics(cardinality=400))
        reopt = ReOptimizer(catalog, order_adaptive=True)
        decision = reopt.evaluate(query, JoinTree.left_deep(("r", "s")), observed)
        assert decision.strategies_changed
        assert decision.switch
        recommended = decision.recommended_strategies[frozenset(("r", "s"))]
        assert recommended.algorithm == "merge"

    def test_without_order_adaptivity_behaviour_is_unchanged(self):
        query, relations = _two_source_fixture(n=400)
        catalog = Catalog()
        for name, rel in relations.items():
            catalog.register(name, rel.schema)
        reopt = ReOptimizer(catalog)
        decision = reopt.evaluate(query, JoinTree.left_deep(("r", "s")), ObservedStatistics())
        assert not decision.strategies_changed
        assert decision.recommended_strategies == {}


class TestServingOrderSharing:
    def test_cache_seeds_orderings_for_later_queries(self):
        cache = SharedStatisticsCache()
        observed = ObservedStatistics()
        detector = OrderDetector()
        detector.add_many(range(64))
        observed.record_ordering("r", "r_pk", detector)
        cache.absorb(observed)
        assert cache.summary()["orderings"] == 1
        query = SPJAQuery("q", ("r", "s"), (JoinPredicate("s", "s_fk", "r", "r_pk"),))
        seed = cache.seed_for(query)
        assert seed is not None
        assert seed.ordering_of("r", "r_pk").observed == 64
        unrelated = SPJAQuery("u", ("x",), ())
        assert cache.seed_for(unrelated) is None
