"""Unit tests for the adaptivity kernel (events, controller, policies).

The headline guarantee tested here is the extension contract: a brand-new
adaptation policy can be registered on a processor's (or server's)
controller and participate fully — receive typed events, propose plan
switches and read re-prioritizations, have them applied — **without any
change to** ``core/corrective.py`` **or** ``serving/server.py``.
"""

from __future__ import annotations

import pytest

from differential import (
    generate_workload,
    rate_collapse_setup,
    _bad_initial_tree,
    _canonical_multiset,
    _canonical_names,
    POLL_STEP_LIMIT,
    POLLING_INTERVAL,
)
from helpers import reference_spja
from collections import Counter

from repro.adaptivity import (
    AdaptationController,
    AdaptationPolicy,
    JoinStrategyPolicy,
    PlanSwitchPolicy,
    ReprioritizeReadsAction,
    SourceRatePolicy,
    SwitchPlanAction,
)
from repro.adaptivity.events import (
    OrderingObservedEvent,
    SelectivityDriftEvent,
    SourceExhaustedEvent,
    SourceRateEvent,
)
from repro.core.corrective import CorrectiveQueryProcessor
from repro.core.monitor import ExecutionMonitor
from repro.engine.pipelined import PipelinedPlan, SourceCursor
from repro.optimizer.enumerator import JoinEnumerator, Optimizer
from repro.optimizer.plans import JoinTree
from repro.optimizer.statistics import ObservedStatistics, SelectivityEstimator
from repro.relational.catalog import Catalog, TableStatistics
from repro.serving.server import QueryServer


class RecordingPolicy(AdaptationPolicy):
    """Stub policy: records every hook invocation, acts on command."""

    name = "recording_stub"

    def __init__(self, force_switch_to=None, demote=None):
        self.began = 0
        self.events = []
        self.decides = 0
        self.force_switch_to = force_switch_to
        self.demote = demote
        self.switched = False

    def begin_run(self, run):
        self.began += 1

    def observe(self, run, event):
        self.events.append(event)

    def decide(self, run, context):
        self.decides += 1
        actions = []
        if self.demote is not None:
            actions.append(
                ReprioritizeReadsAction(
                    {self.demote: 1}, reason="stub demotion", policy=self.name
                )
            )
        if self.force_switch_to is not None and not self.switched:
            tree = self.force_switch_to(context)
            if tree is not None and str(tree) != str(context.current_tree):
                self.switched = True
                actions.append(
                    SwitchPlanAction(tree, reason="stub forced switch", policy=self.name)
                )
        return actions or None


def _rotated_tree(context):
    """A different (connected) left-deep order than the current tree's."""
    order = list(context.current_tree.leaf_order())
    if len(order) < 2:
        return None
    rotated = order[::-1]
    query = context.query
    # Only propose when the reversed order is join-connected left-deep.
    for i in range(1, len(rotated)):
        if not query.predicates_between(
            frozenset(rotated[:i]), frozenset((rotated[i],))
        ):
            return None
    return JoinTree.left_deep(rotated)


def _workload_with_joins(start_seed: int):
    """First generated workload with >= 2 relations (so switches exist)."""
    seed = start_seed
    while True:
        workload = generate_workload(seed)
        if len(workload.query.relations) >= 2:
            return workload
        seed += 1


class TestStubPolicyExtension:
    """The acceptance contract: new policies need no executor changes."""

    def test_stub_policy_registers_and_switches_on_processor(self):
        workload = _workload_with_joins(4200)
        stub = RecordingPolicy(force_switch_to=_rotated_tree)
        processor = CorrectiveQueryProcessor(
            workload.catalog(),
            workload.sources(),
            polling_interval_seconds=POLLING_INTERVAL,
            batch_size=64,
        )
        processor.adaptation.register(stub)
        report = processor.execute(
            workload.query,
            initial_tree=_bad_initial_tree(workload),
            poll_step_limit=POLL_STEP_LIMIT,
        )
        assert stub.began == 1
        assert stub.decides >= 1
        assert any(isinstance(event, SourceRateEvent) for event in stub.events)
        if stub.switched:
            assert report.num_phases >= 2
            assert any(
                switch["policy"] == "recording_stub"
                for switch in report.details["adaptation"]["switches"]
            )
            assert any(
                "stub forced switch" in phase.switch_reason
                for phase in report.phases
            )
        # Whatever the stub did, answers are still exactly the oracle's.
        assert _canonical_multiset(
            report.rows, report.schema.names, _canonical_names(workload)
        ) == Counter(reference_spja(workload.query, workload.relations))

    def test_stub_policy_sees_population_where_forced_switch_lands(self):
        """At least one seed in a small population lets the stub switch."""
        switched = 0
        for seed in range(4200, 4210):
            workload = _workload_with_joins(seed)
            stub = RecordingPolicy(force_switch_to=_rotated_tree)
            processor = CorrectiveQueryProcessor(
                workload.catalog(),
                workload.sources(),
                polling_interval_seconds=POLLING_INTERVAL,
                batch_size=64,
            )
            processor.adaptation.register(stub)
            report = processor.execute(
                workload.query,
                initial_tree=_bad_initial_tree(workload),
                poll_step_limit=POLL_STEP_LIMIT,
            )
            if stub.switched:
                switched += 1
                assert report.num_phases >= 2
        assert switched >= 1

    def test_stub_demotion_reaches_live_plan_priorities(self):
        workload = _workload_with_joins(4300)
        demoted = workload.query.relations[0]
        stub = RecordingPolicy(demote=demoted)
        processor = CorrectiveQueryProcessor(
            workload.catalog(),
            workload.sources(),
            polling_interval_seconds=POLLING_INTERVAL,
            batch_size=64,
        )
        processor.adaptation.register(stub)
        report = processor.execute(
            workload.query, initial_tree=_bad_initial_tree(workload)
        )
        adaptation = report.details["adaptation"]
        if stub.decides:
            assert adaptation["read_priorities"] == {demoted: 1}
            assert adaptation["reprioritizations"] == 1  # applied once, not per poll
        assert _canonical_multiset(
            report.rows, report.schema.names, _canonical_names(workload)
        ) == Counter(reference_spja(workload.query, workload.relations))

    def test_stub_session_policy_on_server(self):
        seeds = (4200, 4201)
        workloads = [
            generate_workload(seed, name_prefix=f"w{i}_")
            for i, seed in enumerate(seeds)
        ]
        catalog = Catalog()
        sources: dict[str, object] = {}
        for workload in workloads:
            for name, relation in workload.relations.items():
                catalog.register(name, relation.schema)
            sources.update(workload.sources())
        stub = RecordingPolicy()
        server = QueryServer(
            catalog,
            sources,
            batch_size=64,
            quantum_tuples=POLL_STEP_LIMIT,
            polling_interval_seconds=POLLING_INTERVAL,
            session_policies=(stub,),
        )
        for workload in workloads:
            server.submit(workload.query, label=workload.query.name)
        report = server.run()
        assert len(report.served) == 2
        # One begin_run per session, and events flowed to the stub.
        assert stub.began == 2
        for served, workload in zip(report.served, workloads):
            assert _canonical_multiset(
                served.rows, served.report.schema.names, _canonical_names(workload)
            ) == Counter(reference_spja(workload.query, workload.relations))


class TestControllerArbitration:
    def _context_bits(self):
        workload = _workload_with_joins(4400)
        monitor = ExecutionMonitor(workload.query)
        catalog = workload.catalog()
        return workload, monitor, catalog

    def test_first_registered_switch_wins_and_can_switch_gates(self):
        workload, monitor, catalog = self._context_bits()
        tree_a = JoinTree.left_deep(workload.query.relations)

        class Always(AdaptationPolicy):
            def __init__(self, name, tree):
                self.name = name
                self.tree = tree

            def decide(self, run, context):
                return SwitchPlanAction(self.tree, reason=f"{self.name} says so")

        first = Always("first", tree_a)
        second = Always("second", tree_a)
        controller = AdaptationController([first, second])
        run = controller.begin(workload.query, catalog, monitor=monitor)
        winner = run.poll(
            plan=None,
            current_tree=tree_a,
            current_strategies=None,
            phase_id=0,
            now=0.0,
            can_switch=True,
        )
        assert winner is not None and winner.policy == "first"
        suppressed = run.poll(
            plan=None,
            current_tree=tree_a,
            current_strategies=None,
            phase_id=7,
            now=0.0,
            can_switch=False,
        )
        assert suppressed is None
        assert len(run.switches) == 1

    def test_restored_priorities_leave_the_dict_empty(self):
        """Recovery must re-enable the engine's priority-free fast paths:
        zero (default) priorities are dropped, not stored."""
        workload, monitor, catalog = self._context_bits()
        relation = workload.query.relations[0]

        class Demote(AdaptationPolicy):
            name = "demote_then_restore"

            def __init__(self):
                self.priority = 1

            def decide(self, run, context):
                return ReprioritizeReadsAction(
                    {relation: self.priority}, reason="test"
                )

        policy = Demote()
        controller = AdaptationController([policy])
        run = controller.begin(workload.query, catalog, monitor=monitor)
        tree = JoinTree.left_deep(workload.query.relations)

        class FakePlan:
            read_priorities: dict = {}

        plan = FakePlan()
        run.poll(plan, tree, None, 0, 0.0, can_switch=True)
        assert run.read_priorities == {relation: 1}
        assert plan.read_priorities == {relation: 1}
        policy.priority = 0  # recovered
        run.poll(plan, tree, None, 0, 0.1, can_switch=True)
        assert run.read_priorities == {}
        assert plan.read_priorities == {}
        assert run.reprioritizations == 2
        # A redundant restore is a no-op, not another reprioritization.
        run.poll(plan, tree, None, 0, 0.2, can_switch=True)
        assert run.reprioritizations == 2

    def test_policy_lookup_and_describe(self):
        catalog = Catalog()
        plan_switch = PlanSwitchPolicy(catalog)
        controller = AdaptationController([plan_switch])
        assert controller.policy("plan_switch") is plan_switch
        assert controller.policy("missing") is None
        stub = RecordingPolicy()
        assert controller.register(stub) is stub
        assert controller.describe()["policies"] == ["plan_switch", "recording_stub"]


class TestEventReprs:
    def test_reprs_are_informative(self):
        rate = SourceRateEvent(
            phase_id=1,
            simulated_seconds=2.5,
            relation="orders",
            consumed=120,
            next_arrival=3.25,
            exhausted=False,
            promised_rate=4000.0,
        )
        assert "orders" in repr(rate)
        assert "next_arrival=3.250s" in repr(rate)
        assert "promised=4000tps" in repr(rate)
        assert rate.stall_seconds == pytest.approx(0.75)

        drift = SelectivityDriftEvent(
            phase_id=0,
            simulated_seconds=0.1,
            relations=frozenset({"a", "b"}),
            selectivity=0.25,
            previous=0.5,
        )
        assert "0.500000 -> 0.250000" in repr(drift)
        fresh = SelectivityDriftEvent(
            phase_id=0,
            simulated_seconds=0.1,
            relations=frozenset({"a"}),
            selectivity=0.25,
        )
        assert "first observation" in repr(fresh)

        ordering = OrderingObservedEvent(
            phase_id=0,
            simulated_seconds=0.2,
            relation="r",
            attribute="k",
            direction=1,
            in_order_fraction=0.97,
            observed=64,
        )
        assert "r.k asc" in repr(ordering)
        done = SourceExhaustedEvent(
            phase_id=2, simulated_seconds=1.0, relation="r", tuples_read=90
        )
        assert "90 tuples" in repr(done)


class TestMonitorEvents:
    def _run_plan(self, workload):
        query = workload.query
        cursors = {
            name: SourceCursor(name, source)
            for name, source in workload.sources().items()
        }
        tree = JoinTree.left_deep(query.relations)
        plan = PipelinedPlan(query, tree, cursors, lambda row: None)
        monitor = ExecutionMonitor(query)
        return plan, cursors, monitor

    def test_drain_events_returns_and_clears(self):
        workload = _workload_with_joins(4500)
        plan, cursors, monitor = self._run_plan(workload)
        plan.run_chunk(50)
        monitor.observe(plan, cursors)
        events = monitor.drain_events()
        assert events, "a poll must emit telemetry events"
        assert monitor.drain_events() == []
        assert all(
            isinstance(
                event,
                (
                    SourceRateEvent,
                    SelectivityDriftEvent,
                    OrderingObservedEvent,
                    SourceExhaustedEvent,
                ),
            )
            for event in events
        )
        rate_events = [e for e in events if isinstance(e, SourceRateEvent)]
        assert {e.relation for e in rate_events} == set(workload.query.relations)

    def test_exhausted_event_emitted_once(self):
        workload = _workload_with_joins(4500)
        plan, cursors, monitor = self._run_plan(workload)
        plan.run()
        monitor.observe(plan, cursors)
        monitor.observe(plan, cursors)
        events = monitor.drain_events()
        exhausted = [e for e in events if isinstance(e, SourceExhaustedEvent)]
        assert len(exhausted) == len(workload.query.relations)

    def test_selectivity_drift_only_on_change(self):
        workload = _workload_with_joins(4500)
        plan, cursors, monitor = self._run_plan(workload)
        plan.run()
        monitor.observe(plan, cursors)
        first = [
            e
            for e in monitor.drain_events()
            if isinstance(e, SelectivityDriftEvent)
        ]
        monitor.observe(plan, cursors)
        second = [
            e
            for e in monitor.drain_events()
            if isinstance(e, SelectivityDriftEvent)
        ]
        # Re-observing identical state records no new drift.
        assert not second or len(second) < max(len(first), 1)


class TestIncrementalSnapshots:
    def test_snapshots_equal_full_copy_oracle(self):
        """The incremental snapshot path records exactly what a naive
        full-copy per poll (the old behaviour) would have recorded."""
        workload = _workload_with_joins(4600)
        query = workload.query
        cursors = {
            name: SourceCursor(name, source)
            for name, source in workload.sources().items()
        }
        tree = JoinTree.left_deep(query.relations)
        plan = PipelinedPlan(query, tree, cursors, lambda row: None)
        monitor = ExecutionMonitor(query)
        oracle = []
        for _ in range(12):
            plan.run_chunk(7)
            oracle.append(
                {
                    "phase_id": plan.phase_id,
                    "simulated_seconds": plan.clock.now,
                    "tuples_read": plan.statistics.tuples_read,
                    "node_outputs": dict(plan.node_output_counts()),
                }
            )
            monitor.observe(plan, cursors)
        assert len(monitor.snapshots) == len(oracle)
        for snapshot, expected in zip(monitor.snapshots, oracle):
            assert snapshot.phase_id == expected["phase_id"]
            assert snapshot.simulated_seconds == expected["simulated_seconds"]
            assert snapshot.tuples_read == expected["tuples_read"]
            assert snapshot.node_outputs == expected["node_outputs"]

    def test_unchanged_snapshots_share_storage(self):
        workload = _workload_with_joins(4600)
        query = workload.query
        cursors = {
            name: SourceCursor(name, source)
            for name, source in workload.sources().items()
        }
        tree = JoinTree.left_deep(query.relations)
        plan = PipelinedPlan(query, tree, cursors, lambda row: None)
        monitor = ExecutionMonitor(query)
        plan.run()  # exhaust: counters frozen from here on
        monitor.observe(plan, cursors)
        monitor.observe(plan, cursors)
        a, b = monitor.snapshots[-2:]
        assert a.node_outputs == b.node_outputs
        assert a.node_outputs is b.node_outputs, (
            "identical consecutive observations must share one dict instead "
            "of deep-copying per poll"
        )

    def test_snapshot_repr(self):
        workload = _workload_with_joins(4600)
        query = workload.query
        cursors = {
            name: SourceCursor(name, source)
            for name, source in workload.sources().items()
        }
        plan = PipelinedPlan(
            query, JoinTree.left_deep(query.relations), cursors, lambda row: None
        )
        monitor = ExecutionMonitor(query)
        plan.run_chunk(5)
        snapshot = monitor.snapshot(plan)
        assert "MonitorSnapshot(phase=0" in repr(snapshot)


class TestSourceRatePolicyUnits:
    def _event(self, **overrides):
        base = dict(
            phase_id=0,
            simulated_seconds=1.0,
            relation="f",
            consumed=10,
            next_arrival=None,
            exhausted=False,
            promised_rate=1000.0,
            arrived=10,
        )
        base.update(overrides)
        return SourceRateEvent(**base)

    def test_collapse_detection(self):
        policy = SourceRatePolicy(Catalog(), collapse_fraction=0.5)
        assert policy._collapsed(self._event())  # 10 << 500 expected
        assert not policy._collapsed(self._event(arrived=600, consumed=0))
        assert not policy._collapsed(self._event(exhausted=True))
        assert not policy._collapsed(self._event(promised_rate=None))
        # Too early to judge: only 8 tuples were even promised by now.
        assert not policy._collapsed(
            self._event(simulated_seconds=0.008, arrived=0, consumed=0)
        )

    def test_fully_delivered_small_source_never_collapses(self):
        """promised_rate * elapsed must be capped at the source's size: a
        100-tuple source that delivered everything early is healthy forever,
        however long the rest of the query keeps running."""
        from repro.relational.schema import Schema

        catalog = Catalog()
        catalog.register(
            "f",
            Schema.from_names(["f_k"], relation="f"),
            TableStatistics(cardinality=100, promised_rate=1000.0),
        )
        policy = SourceRatePolicy(catalog)
        event = self._event(
            relation="f",
            simulated_seconds=5.0,  # expected-by-promise would be 5000
            consumed=40,
            arrived=100,
            next_arrival=0.0,
            promised_rate=1000.0,
        )
        assert not policy._collapsed(event)
        # Without a published cardinality the cap cannot apply, and the
        # same telemetry still reads as collapsed.
        assert SourceRatePolicy(Catalog())._collapsed(event)

    def test_delivery_beats_consumption(self):
        """Tuples sitting unread in the buffer are not a collapse."""
        policy = SourceRatePolicy(Catalog())
        event = self._event(consumed=0, arrived=900)
        assert policy._delivered(event) == 900
        assert not policy._collapsed(event)

    def test_promise_from_catalog_when_event_lacks_it(self):
        catalog = Catalog()
        from repro.relational.schema import Schema

        catalog.register(
            "f",
            Schema.from_names(["f_k"], relation="f"),
            TableStatistics(promised_rate=1000.0),
        )
        policy = SourceRatePolicy(catalog)
        # The event carries no promise, but the catalog's stands in.
        assert policy._promised_rate("f") == 1000.0
        assert policy._collapsed(self._event(promised_rate=None, relation="f"))
        # A relation with no catalog entry (and no event promise) never
        # counts as collapsed.
        assert not policy._collapsed(
            self._event(promised_rate=None, relation="unknown")
        )

    def test_gating_tree_puts_slow_relation_on_top(self):
        workload = _workload_with_joins(4700)
        query = workload.query
        catalog = workload.catalog()
        estimator = SelectivityEstimator(catalog, query, ObservedStatistics())
        enumerator = JoinEnumerator(query, estimator)
        slow = query.relations[0]
        tree = SourceRatePolicy._gating_tree(query, enumerator, slow)
        if tree is not None:
            assert tree.right.is_leaf and tree.right.relation == slow
            assert tree.relations() == frozenset(query.relations)

    def test_split_cost_accounts_every_term(self):
        """gated + ungated equals the same model's total, fresh run."""
        workload = _workload_with_joins(4700)
        query = workload.query
        catalog = workload.catalog()
        policy = SourceRatePolicy(catalog)
        estimator = SelectivityEstimator(catalog, query, ObservedStatistics())
        tree = Optimizer(catalog).optimize_tree(query)
        slow = query.relations[0]
        gated, ungated = policy._split_cost(
            query, tree, estimator, slow, ObservedStatistics()
        )
        assert gated > 0
        assert gated + ungated > 0
        other = query.relations[-1]
        gated2, ungated2 = policy._split_cost(
            query, tree, estimator, other, ObservedStatistics()
        )
        # Same tree, same totals — only the split moves.
        assert gated + ungated == pytest.approx(gated2 + ungated2)
