"""Pin the differential harness's re-export shim to the package module.

The seeded workload generator lives in :mod:`repro.workloads.differential`
(the compiled-codegen audit draws from the same population);
``tests/differential.py`` re-exports it so the differential suites keep one
import path.  This pin catches the shim and the package drifting apart —
in-repo code should import the package module directly, the shim exists for
the harness's own suites.
"""

import differential

import repro.workloads.differential as workloads_differential


def test_shim_reexports_the_package_generator() -> None:
    assert differential.generate_workload is workloads_differential.generate_workload
    assert (
        differential.DifferentialWorkload
        is workloads_differential.DifferentialWorkload
    )
