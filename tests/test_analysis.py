"""The static analyzer's own test suite.

Two layers:

* **fixture tests** — ``tests/analysis_fixtures/`` is a miniature package
  tree with ``# LINT:`` marker comments on every seeded violation; each
  rule is asserted to fire at exactly the marked file/line, and sanctioned
  neighbouring constructs (seeded RNGs, ``sorted`` iteration, charged
  operators, compliant policies) are asserted silent;
* **gate tests** — the real package must lint clean (zero unwhitelisted
  findings, no stale whitelist entries), and the compiled-codegen audit
  must cover the required corpus breadth and come back clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    PragmaIgnore,
    Whitelist,
    WhitelistEntry,
    collect_pragmas,
    default_rules,
    registered_rules,
    run_lint,
)
from repro.analysis.codegen_audit import (
    RULE_ACCOUNTING,
    RULE_DETERMINISM,
    RULE_PURITY,
    audit_chain_source,
    audit_fold_source,
    audit_generated_pipelines,
)
from repro.analysis.runner import (
    STALE_ENTRY_RULE,
    STALE_PRAGMA_RULE,
    apply_rules,
    load_contexts,
)
from repro.analysis.sharding import parse_channel_registry
from repro.serving import channels

FIXTURE_ROOT = Path(__file__).parent / "analysis_fixtures"
PACKAGE_ROOT = Path(__file__).parent.parent / "src" / "repro"


def line_of(relpath: str, marker: str) -> int:
    """1-based line of the unique ``# LINT: <marker>`` comment in a fixture."""
    lines = (FIXTURE_ROOT / relpath).read_text().splitlines()
    hits = [i + 1 for i, line in enumerate(lines) if f"# LINT: {marker}" in line]
    assert len(hits) == 1, f"marker {marker!r} not unique in {relpath}: {hits}"
    return hits[0]


@pytest.fixture(scope="module")
def fixture_findings():
    """All raw findings of every rule over the fixture tree (no whitelist)."""
    contexts = load_contexts(FIXTURE_ROOT)
    return apply_rules(contexts, default_rules())


def findings_for(findings, rule: str, path: str):
    return [f for f in findings if f.rule == rule and f.path == path]


class TestWallClockRule:
    def test_fires_at_each_marked_site(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "determinism.wall-clock", "engine/wall_clock.py"
        )
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (line_of("engine/wall_clock.py", "wall-clock-attr"), "TimingOperator.measure"),
            (line_of("engine/wall_clock.py", "wall-clock-datetime"), "TimingOperator.stamp"),
            (line_of("engine/wall_clock.py", "wall-clock-member"), "free_function_timer"),
        }

    def test_simulated_clock_reads_are_silent(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "determinism.wall-clock", "engine/wall_clock.py"
        )
        assert all(f.symbol != "simulated_ok" for f in hits)

    def test_io_package_is_exempt(self, fixture_findings):
        """The package-scope exemption: io/ may read the wall clock freely."""
        hits = findings_for(
            fixture_findings, "determinism.wall-clock", "io/wallclock_ok.py"
        )
        assert hits == []


class TestModuleRandomRule:
    def test_fires_on_module_level_draws(self, fixture_findings):
        hits = findings_for(
            fixture_findings,
            "determinism.module-random",
            "workloads/module_random.py",
        )
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (line_of("workloads/module_random.py", "module-random-attr"), "unseeded_draw"),
            (
                line_of("workloads/module_random.py", "module-random-member"),
                "unseeded_member_draw",
            ),
        }

    def test_seeded_instances_are_silent(self, fixture_findings):
        hits = findings_for(
            fixture_findings,
            "determinism.module-random",
            "workloads/module_random.py",
        )
        assert all(f.symbol != "seeded_ok" for f in hits)


class TestUnorderedIterationRule:
    def test_fires_on_set_iteration_in_emit_path(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "determinism.unordered-iter", "engine/unordered.py"
        )
        lines = {f.line for f in hits}
        assert lines == {
            line_of("engine/unordered.py", "unordered-for"),
            line_of("engine/unordered.py", "unordered-list"),
            line_of("engine/unordered.py", "unordered-comp"),
        }
        assert all(f.symbol == "LeakyEmitter.push_batch" for f in hits)

    def test_sorted_iteration_and_non_emit_methods_are_silent(
        self, fixture_findings
    ):
        hits = findings_for(
            fixture_findings, "determinism.unordered-iter", "engine/unordered.py"
        )
        source = (FIXTURE_ROOT / "engine/unordered.py").read_text().splitlines()
        for finding in hits:
            assert "sorted(" not in source[finding.line - 1]
            assert "helper" not in finding.symbol


class TestWorkAccountingRule:
    def test_uncharged_entry_point_and_mutator_call_fire(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "accounting.uncharged-mutation", "engine/uncharged.py"
        )
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (
                line_of("engine/uncharged.py", "uncharged-entry"),
                "LeakyOperator.push_batch",
            ),
            (
                line_of("engine/uncharged.py", "uncharged-mutator-call"),
                "LeakyOperator.push_batch",
            ),
        }

    def test_charging_closure_covers_helpers_and_charge_batch(
        self, fixture_findings
    ):
        hits = findings_for(
            fixture_findings, "accounting.uncharged-mutation", "engine/uncharged.py"
        )
        assert all("ChargedOperator" not in f.symbol for f in hits)
        assert all("BatchChargedOperator" not in f.symbol for f in hits)


class TestEventExhaustivenessRule:
    PATH = "adaptivity/policies.py"

    def test_each_violation_kind_fires_at_its_class(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "exhaustiveness.event-policy", self.PATH
        )
        by_symbol = {}
        for finding in hits:
            by_symbol.setdefault(finding.symbol, []).append(finding)

        missing = by_symbol.pop("MissingDeclarationPolicy")
        assert len(missing) == 2  # handles_events and ignores_events both absent
        assert {f.line for f in missing} == {
            line_of(self.PATH, "missing-declaration")
        }

        (incomplete,) = by_symbol.pop("IncompletePolicy")
        assert incomplete.line == line_of(self.PATH, "incomplete-coverage")
        assert "'GammaEvent'" in incomplete.message

        (overlap,) = by_symbol.pop("OverlapPolicy")
        assert overlap.line == line_of(self.PATH, "overlap")
        assert "'AlphaEvent'" in overlap.message

        (unknown,) = by_symbol.pop("UnknownEventPolicy")
        assert unknown.line == line_of(self.PATH, "unknown-event")
        assert "'DeltaEvent'" in unknown.message

        (silent,) = by_symbol.pop("SilentConsumerPolicy")
        assert silent.line == line_of(self.PATH, "undeclared-reference")
        assert "'BetaEvent'" in silent.message

        # The compliant policy (and the skipped base class) stay silent.
        assert by_symbol == {}


class TestWhitelist:
    def test_entry_suppresses_exactly_its_site(self):
        whitelist = Whitelist(
            entries=(
                WhitelistEntry(
                    rule="determinism.wall-clock",
                    path="engine/wall_clock.py",
                    symbol="TimingOperator.measure",
                    reason="fixture: deliberate suppression",
                ),
            )
        )
        report = run_lint(FIXTURE_ROOT, whitelist=whitelist)
        suppressed = {
            (f.rule, f.path, f.symbol)
            for f, by in report.suppressed
            if isinstance(by, WhitelistEntry)
        }
        assert suppressed == {
            (
                "determinism.wall-clock",
                "engine/wall_clock.py",
                "TimingOperator.measure",
            )
        }
        # Every other wall-clock finding in the same file survives.
        remaining = findings_for(
            report.findings, "determinism.wall-clock", "engine/wall_clock.py"
        )
        assert {f.symbol for f in remaining} == {
            "TimingOperator.stamp",
            "free_function_timer",
        }

    def test_stale_entry_is_reported_as_a_finding(self):
        whitelist = Whitelist(
            entries=(
                WhitelistEntry(
                    rule="determinism.wall-clock",
                    path="engine/wall_clock.py",
                    symbol="NoSuch.symbol",
                    reason="fixture: describes nothing",
                ),
            )
        )
        report = run_lint(FIXTURE_ROOT, whitelist=whitelist)
        stale = [f for f in report.findings if f.rule == STALE_ENTRY_RULE]
        assert len(stale) == 1
        assert stale[0].symbol == "NoSuch.symbol"


class TestSharedChannelRule:
    RULE = "sharding.shared-channel"
    REGISTRY = "serving/channels.py"

    def test_registry_problems_fire_at_declaration_lines(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.REGISTRY)
        by_line = {f.line: f for f in hits}

        bad = by_line.pop(line_of(self.REGISTRY, "bad-discipline"))
        assert bad.symbol == "CHANNELS.broken"
        assert "two_phase" in bad.message

        mute = by_line.pop(line_of(self.REGISTRY, "missing-rationale"))
        assert mute.symbol == "CHANNELS.mute"
        assert "rationale" in mute.message

        stale = by_line.pop(line_of(self.REGISTRY, "stale-channel"))
        assert stale.symbol == "CHANNELS.ghost"
        assert "ghost_pool" in stale.message

        assert by_line == {}

    def test_undeclared_escape_and_alias_fire(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, "serving/server.py")
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (
                line_of("serving/server.py", "escape-undeclared"),
                "MiniServer.submit",
            ),
            (
                line_of("serving/server.py", "alias-undeclared"),
                "MiniSession.__init__",
            ),
        }

    def test_declared_channel_hand_offs_are_silent(self, fixture_findings):
        # The clock and ledger escape into MiniSession on the construction
        # line; both are declared, so only the scratch dict is flagged.
        hits = findings_for(fixture_findings, self.RULE, "serving/server.py")
        assert all("scratch" in f.message or "pool" in f.message for f in hits)


class TestClockDisciplineRule:
    RULE = "sharding.clock-discipline"
    PATH = "serving/loop.py"

    def test_rogue_mutator_call_and_alias_fire(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.PATH)
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (line_of(self.PATH, "rogue-clock-write"), "EagerPolicy.decide"),
            (line_of(self.PATH, "rogue-clock-alias"), "EagerPolicy.grab"),
        }

    def test_certified_writer_is_silent(self, fixture_findings):
        hits = [f for f in fixture_findings if f.rule == self.RULE]
        assert all(f.symbol != "MiniLoop.run" for f in hits)


class TestSessionIsolationRule:
    RULE = "sharding.session-isolation"
    PATH = "serving/isolation.py"

    def test_closure_from_execute_incremental_is_checked(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.PATH)
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (
                line_of(self.PATH, "isolation-rogue-absorb"),
                "MiniProcessor._tick",
            ),
            (
                line_of(self.PATH, "isolation-rogue-store"),
                "MiniProcessor._stash",
            ),
        }
        assert all("'ledger'" in f.message for f in hits)

    def test_certified_writer_outside_the_closure_is_silent(
        self, fixture_findings
    ):
        # MiniLoop.finish calls the same mutator but is a sanctioned writer
        # and not reachable from execute_incremental.
        hits = [f for f in fixture_findings if f.rule == self.RULE]
        assert all(f.path != "serving/loop.py" for f in hits)


class TestPicklabilityRule:
    RULE = "sharding.picklability"
    PATH = "serving/payloads.py"

    def test_payload_fields_fire_including_recursion(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.PATH)
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (line_of(self.PATH, "unpicklable-annotation"), "HandoffSnapshot"),
            (line_of(self.PATH, "unpicklable-lambda"), "HandoffSnapshot"),
            (line_of(self.PATH, "unpicklable-genexp"), "HandoffSnapshot"),
            (line_of(self.PATH, "unpicklable-bound"), "HandoffSnapshot"),
            # SideState is reached transitively through HandoffSnapshot.detail.
            (line_of(self.PATH, "unpicklable-nested"), "SideState"),
            (line_of(self.PATH, "unpicklable-thread"), "SideState"),
        }

    def test_the_channel_type_itself_is_clean(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.PATH)
        assert all(f.symbol != "SharedLedger" for f in hits)

    def test_exec_without_source_record_fires(self, fixture_findings):
        hits = findings_for(
            fixture_findings, self.RULE, "engine/exec_pipeline.py"
        )
        assert {(f.line, f.symbol) for f in hits} == {
            (
                line_of("engine/exec_pipeline.py", "exec-no-source"),
                "build_chain",
            ),
        }


class TestGlobalMutableRule:
    RULE = "effects.global-mutable"
    PATH = "workloads/mutable_globals.py"

    def test_fires_on_each_marked_binding(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.PATH)
        locations = {(f.line, f.symbol) for f in hits}
        assert locations == {
            (line_of(self.PATH, "mutated-constant"), "<module>"),
            (line_of(self.PATH, "lowercase-mutable"), "<module>"),
            # Raw rule output includes the pragma'd cache; the pragma only
            # applies inside run_lint.
            (line_of(self.PATH, "memo-cache"), "<module>"),
        }

    def test_never_mutated_constant_table_is_exempt(self, fixture_findings):
        hits = findings_for(fixture_findings, self.RULE, self.PATH)
        source_lines = (FIXTURE_ROOT / self.PATH).read_text().splitlines()
        widths_line = next(
            i + 1
            for i, line in enumerate(source_lines)
            if line.startswith("DEFAULT_WIDTHS")
        )
        assert widths_line not in {f.line for f in hits}


class TestInlinePragmas:
    PATH = "workloads/mutable_globals.py"

    def test_pragma_suppresses_exactly_its_line(self):
        report = run_lint(FIXTURE_ROOT, whitelist=Whitelist())
        pragma_suppressed = {
            (f.rule, f.path, f.line)
            for f, by in report.suppressed
            if isinstance(by, PragmaIgnore)
        }
        assert pragma_suppressed == {
            (
                "effects.global-mutable",
                self.PATH,
                line_of(self.PATH, "memo-cache"),
            ),
        }

    def test_stale_pragma_is_reported_as_a_finding(self):
        report = run_lint(FIXTURE_ROOT, whitelist=Whitelist())
        stale = [f for f in report.findings if f.rule == STALE_PRAGMA_RULE]
        assert {(f.path, f.line) for f in stale} == {
            (self.PATH, line_of(self.PATH, "stale-pragma")),
        }
        assert stale[0].symbol == "<pragma>"

    def test_prose_mentions_never_register(self):
        source = (
            '"""Suppress with a # lint: ignore[rule-name] comment."""\n'
            "\n"
            "x = 1  # lint: ignore[some.rule]\n"
        )
        pragmas = collect_pragmas("mod.py", source)
        assert [(p.line, p.rule) for p in pragmas] == [(3, "some.rule")]


class TestJsonReport:
    def test_to_json_round_trips_and_has_the_documented_shape(self):
        report = run_lint(FIXTURE_ROOT, whitelist=Whitelist())
        payload = report.to_json()
        assert set(payload) == {
            "clean",
            "files_scanned",
            "rules_run",
            "findings",
            "suppressed",
        }
        assert payload["clean"] is False
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "symbol", "message"}
        for entry in payload["suppressed"]:
            assert isinstance(entry["suppressed_by"], str)
        assert json.loads(json.dumps(payload)) == payload


class TestChannelRegistry:
    def test_real_registry_validates(self):
        assert channels.validate_registry() == []
        names = set(channels.registered_channels())
        assert {"clock", "catalog", "sources", "stats_cache"} <= names
        inventory = channels.render_inventory()
        for name in names:
            assert name in inventory

    def test_transport_channel_stays_process_local(self):
        """Real-I/O envelopes hold sockets/threads: never cross_process_safe."""
        registry = channels.registered_channels()
        transports = registry["transports"]
        assert transports.discipline == "single_writer"
        unsafe = {
            "FixtureServer",
            "InjectedTransport",
            "ResilientSource",
            "ThreadedPrefetchSource",
            "Transport",
        }
        for channel in channels.CHANNELS:
            if channel.discipline != "cross_process_safe":
                continue
            assert channel.type_name not in unsafe
            assert not set(channel.payload_types) & unsafe

    def test_analyzer_parses_the_real_registry(self):
        contexts = load_contexts(PACKAGE_ROOT)
        registry = parse_channel_registry(contexts)
        assert registry is not None
        assert registry.problems == []
        parsed = {channel.name for channel in registry.channels}
        assert parsed == set(channels.registered_channels())
        assert all(not channel.malformed for channel in registry.channels)


class TestRulePopulation:
    def test_every_registered_rule_fires_on_the_fixtures(self, fixture_findings):
        """Population meta-test: a rule nothing can trip is a dead rule."""
        fired = {finding.rule for finding in fixture_findings}
        assert fired == set(registered_rules())

    def test_shard_audit_rule_population_is_registered(self):
        """The shard-audit families must all be present in the registry."""
        assert {
            "sharding.shared-channel",
            "sharding.session-isolation",
            "sharding.clock-discipline",
            "sharding.picklability",
            "effects.global-mutable",
        } <= set(registered_rules())


class TestPackageGate:
    def test_package_lints_clean(self):
        """The real package: zero unwhitelisted findings, no stale entries."""
        report = run_lint()
        assert report.clean, "\n" + report.render()
        assert report.files_scanned > 80
        # The whitelist is empty — the io/ package-scope exemption replaced
        # the per-site wall-clock entries — so the only suppressions left
        # are the reviewed inline pragmas (stale ones would be findings).
        assert report.suppressed, "expected the reviewed inline pragmas"
        assert all(
            isinstance(by, PragmaIgnore) for _, by in report.suppressed
        ), "the whitelist is empty; only pragma suppressions should remain"

    def test_cli_gate_exits_zero(self, capsys):
        from repro.experiments.cli import main

        assert main(["repro-lint", "--no-codegen"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_shard_audit_json_report(self, capsys, tmp_path):
        from repro.experiments.cli import main

        out_path = tmp_path / "lint.json"
        argv = [
            "repro-lint",
            "--no-codegen",
            "--shard-audit",
            "--format",
            "json",
            "--report-output",
            str(out_path),
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["registry_problems"] == []
        assert {c["name"] for c in payload["channels"]} == set(
            channels.registered_channels()
        )
        # The artifact file carries the same payload CI uploads.
        assert json.loads(out_path.read_text()) == payload

    def test_cli_usage_error_exits_two(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["repro-lint", "--format", "yaml"])
        assert exc.value.code == 2


class TestCodegenAudit:
    @pytest.fixture(scope="class")
    def report(self):
        return audit_generated_pipelines()

    def test_generated_corpus_is_clean(self, report):
        assert report.clean, "\n" + report.render()

    def test_corpus_breadth(self, report):
        assert report.pipelines_audited >= 20
        assert report.hash_pipelines > 0
        assert report.merge_pipelines > 0
        assert report.inline_predicate_chains > 0
        assert report.opaque_predicate_chains > 0
        assert report.folds_audited > 0
        assert report.chains_audited >= report.pipelines_audited

    def test_missing_charge_fires(self):
        src = "def _chain(rows, _b=None, _sink=None):\n    _tr = len(rows)\n    _sink(rows)\n"
        findings = audit_chain_source(src, "<doctored>")
        assert any(
            f.rule == RULE_ACCOUNTING and "exactly one top-level _charge" in f.message
            for f in findings
        )

    def test_conditional_charge_fires(self):
        src = (
            "def _chain(rows, _charge=None, _sink=None):\n"
            "    _tr = len(rows)\n"
            "    _sink(rows)\n"
            "    if _tr:\n"
            "        _charge(tuples_read=_tr, predicate_evals=0, hash_inserts=0, "
            "hash_probes=0, tuple_copies=0, tuples_output=0)\n"
        )
        findings = audit_chain_source(src, "<doctored>")
        assert any(
            f.rule == RULE_ACCOUNTING and "exactly one top-level _charge" in f.message
            for f in findings
        )

    def test_incomplete_counter_set_fires(self):
        src = (
            "def _chain(rows, _charge=None, _sink=None):\n"
            "    _tr = len(rows)\n"
            "    _sink(rows)\n"
            "    _charge(tuples_read=_tr)\n"
        )
        findings = audit_chain_source(src, "<doctored>")
        assert any(
            f.rule == RULE_ACCOUNTING and "omits counters" in f.message
            for f in findings
        )

    def test_impure_predicate_fires(self):
        src = (
            "def _chain(rows, _charge=None, _sink=None):\n"
            "    _tr = len(rows)\n"
            "    rows = [row for row in rows if row[0] > len(row)]\n"
            "    _sink(rows)\n"
            "    _charge(tuples_read=_tr, predicate_evals=0, hash_inserts=0, "
            "hash_probes=0, tuple_copies=0, tuples_output=0)\n"
        )
        findings = audit_chain_source(src, "<doctored>")
        assert any(
            f.rule == RULE_PURITY and "len" in f.message for f in findings
        )

    def test_banned_name_in_generated_source_fires(self):
        src = (
            "def _chain(rows, _charge=None, _sink=None):\n"
            "    _tr = len(rows)\n"
            "    _t0 = time.time()\n"
            "    _sink(rows)\n"
            "    _charge(tuples_read=_tr, predicate_evals=0, hash_inserts=0, "
            "hash_probes=0, tuple_copies=0, tuples_output=0)\n"
        )
        findings = audit_chain_source(src, "<doctored>")
        assert any(
            f.rule == RULE_DETERMINISM and "'time'" in f.message for f in findings
        )

    def test_uncharged_fold_fires(self):
        src = "def _fold(rows, _self=None, _metrics=None):\n    for row in rows:\n        pass\n"
        findings = audit_fold_source(src, "<doctored-fold>")
        messages = " | ".join(f.message for f in findings)
        assert "aggregate_updates" in messages
        assert "tuples_consumed" in messages
