"""Differential testing harness for the execution engines.

Generates seeded random SPJA queries over randomized relations and runs each
one through every engine configuration:

* a brute-force reference evaluation (``helpers.reference_spja``) — the
  independent oracle;
* the static executor (optimizer-chosen tree, tuple-at-a-time);
* the pipelined engine, tuple-at-a-time, on a fixed join tree;
* the batched pipelined engine on the same tree at several batch sizes;
* the corrective query processor, tuple-at-a-time and batched, forced to
  start from a deliberately poor plan so that multi-phase executions (and
  therefore stitch-up and phase accounting) get exercised.

Every configuration must produce the **identical multiset** of result rows,
and — on local (immediately-available) sources — every corrective
configuration must report the **identical number of corrective phases**.
Phase-count equality across batch sizes is by construction there: batches
consume the same per-source tuple counts at every poll boundary as
tuple-at-a-time execution (see ``PipelinedPlan._read_schedule``), and on
local sources the simulated clock that drives polling is a pure function of
those counts.  On remote sources the clock can drift slightly within a
batch (arrival waits and work charges interleave differently), so phase
counts are recorded but not asserted equal; the result multisets still
must match exactly.

All aggregate input values are integers, so grouped sums compare exactly
regardless of the order in which each engine folds them.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from helpers import reference_spja

from repro.baselines.static_executor import StaticExecutor
from repro.core.corrective import CorrectiveQueryProcessor
from repro.engine.pipelined import PipelinedExecutor
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving.server import QueryServer
from repro.sources.network import BurstyNetworkModel, PhasedRateNetworkModel
from repro.sources.remote import RemoteSource

#: Batch sizes every differential case is executed with (issue-mandated).
BATCH_SIZES = (1, 7, 64, 1024)

#: Batch sizes the compiled engine column runs at (a subset keeps the base
#: suite's runtime in check; the dedicated compiled differential suite in
#: ``test_differential_compiled.py`` covers the full equivalence contract).
COMPILED_BATCH_SIZES = (7, 64)

#: Re-optimization poll interval for the corrective runs.  Small enough that
#: even the tiny randomized workloads get polled several times, so plan
#: switches actually happen on a healthy fraction of the seeds.
POLLING_INTERVAL = 0.002

#: Tuples between clock checks (shared by every corrective configuration).
POLL_STEP_LIMIT = 40


# The workload generator lives in the package now (the compiled-codegen
# audit draws from the same seeded population); re-exported here so every
# differential suite keeps importing it from this harness.
from repro.workloads.differential import (  # noqa: F401  (re-export)
    DifferentialWorkload,
    generate_workload,
)


def order_workload_variant(
    workload: DifferentialWorkload, variant: str
) -> tuple[DifferentialWorkload, dict[str, str]]:
    """Derive a sorted / perturbed-sorted variant of a generated workload.

    Each relation is re-ordered on one of its join attributes — the foreign
    key when it has one (so child⋈parent joins line up sorted streams on
    both sides), else its primary key.  ``variant``:

    * ``"sorted"`` — rows exactly sorted on the chosen attribute;
    * ``"perturbed"`` — sorted, then ~5% of adjacent pairs swapped (a
      near-sorted stream that stays within the order detectors' tolerance).

    Returns the re-ordered workload plus the chosen sort attribute per
    relation (for registering ordering promises).  Row *multisets* are
    unchanged, so the original workload's reference results still apply.
    """
    if variant not in ("sorted", "perturbed"):
        raise ValueError(f"unknown order variant {variant!r}")
    rng = random.Random(workload.seed * 7919 + 13)
    relations: dict[str, Relation] = {}
    sort_attrs: dict[str, str] = {}
    for name, relation in workload.relations.items():
        names = relation.schema.names
        attr = next((a for a in names if a.endswith("_fk")), names[0])
        position = relation.schema.position(attr)
        rows = sorted(relation.rows, key=lambda row: row[position])
        if variant == "perturbed" and len(rows) > 3:
            for _ in range(max(1, len(rows) // 20)):
                i = rng.randrange(len(rows) - 1)
                rows[i], rows[i + 1] = rows[i + 1], rows[i]
        relations[name] = Relation(name, relation.schema, rows)
        sort_attrs[name] = attr
    ordered = DifferentialWorkload(
        seed=workload.seed,
        query=workload.query,
        relations=relations,
        remote=workload.remote,
    )
    return ordered, sort_attrs


def order_catalog(
    workload: DifferentialWorkload,
    sort_attrs: dict[str, str],
    with_promises: bool,
) -> Catalog:
    """Catalog for an ordered workload, optionally carrying sort promises."""
    from repro.relational.catalog import TableStatistics

    catalog = Catalog()
    for name, relation in workload.relations.items():
        statistics = None
        if with_promises:
            statistics = TableStatistics(sorted_on=(sort_attrs[name],))
        catalog.register(name, relation.schema, statistics)
    return catalog


def _bad_initial_tree(workload: DifferentialWorkload) -> JoinTree:
    """A deliberately poor left-deep order: largest relations first (kept
    connected), so the corrective processor has something worth switching
    away from."""
    query = workload.query
    order = sorted(query.relations, key=lambda name: -len(workload.relations[name]))
    chosen = [order[0]]
    remaining = [name for name in order[1:]]
    while remaining:
        for name in list(remaining):
            if query.predicates_between(frozenset(chosen), frozenset((name,))):
                chosen.append(name)
                remaining.remove(name)
                break
        else:  # pragma: no cover - generated join graphs are connected
            chosen.extend(remaining)
            break
    return JoinTree.left_deep(chosen)


def _canonical_names(workload: DifferentialWorkload) -> list[str]:
    """Canonical column order for a workload's results.

    The reference evaluation's layout: relation schemas concatenated in
    query order for SPJ queries; group attributes plus aggregate aliases for
    aggregation queries (a layout every engine shares).
    """
    query = workload.query
    if query.aggregation is None:
        names: list[str] = []
        for relation in query.relations:
            names.extend(workload.relations[relation].schema.names)
        return names
    return list(query.aggregation.output_attributes)


def _canonical_multiset(rows, schema_names, canonical_names) -> Counter:
    """Multiset of rows with columns permuted into the canonical order.

    Different join trees emit SPJ result tuples with the same values in
    different column orders (each engine's layout follows its tree); since
    attribute names are globally unique, permuting by name makes the
    multisets directly comparable.
    """
    schema_names = tuple(schema_names)
    canonical_names = tuple(canonical_names)
    if schema_names == canonical_names:
        return Counter(rows)
    positions = [schema_names.index(name) for name in canonical_names]
    return Counter(tuple(row[p] for p in positions) for row in rows)


@dataclass
class EngineObservables:
    """Everything the engine-equivalence contracts pin for one run."""

    multiset: Counter
    metrics: dict[str, int]
    simulated_seconds: float
    phases: int


def run_solo_corrective(
    workload: DifferentialWorkload,
    batch_size: int | None = None,
    engine_mode: str = "interpreted",
    catalog: Catalog | None = None,
    sources: dict | None = None,
    initial_tree: JoinTree | None = None,
    polling_interval: float = POLLING_INTERVAL,
    poll_step_limit: int = POLL_STEP_LIMIT,
    **processor_options,
):
    """One solo corrective run of a differential workload.

    The parameterized runner behind every solo differential column: engine
    mode, batch size, and any extra processor options (``order_adaptive``,
    ``rate_adaptive``, …) vary; the bad initial tree, polling cadence and
    canonicalization are shared.  Returns ``(report, EngineObservables)``.
    """
    query = workload.query
    report = CorrectiveQueryProcessor(
        catalog if catalog is not None else workload.catalog(),
        sources if sources is not None else workload.sources(),
        polling_interval_seconds=polling_interval,
        batch_size=batch_size,
        engine_mode=engine_mode,
        **processor_options,
    ).execute(
        query,
        initial_tree=initial_tree if initial_tree is not None else _bad_initial_tree(workload),
        poll_step_limit=poll_step_limit,
    )
    observables = EngineObservables(
        multiset=_canonical_multiset(
            report.rows, report.schema.names, _canonical_names(workload)
        ),
        metrics=report.metrics.as_dict(),
        simulated_seconds=report.simulated_seconds,
        phases=report.num_phases,
    )
    return report, observables


def run_served_workloads(
    workloads: list[DifferentialWorkload],
    policy: str,
    batch_size: int | None = None,
    engine_mode: str = "interpreted",
    **server_options,
):
    """One serving run over prefix-namespaced differential workloads.

    The parameterized runner behind every served differential column: all
    workloads are admitted at time zero to one :class:`QueryServer` (shared
    catalog / source pool), each forced to start from its deliberately bad
    join order.  Returns ``(ServingReport, [EngineObservables])`` with one
    observables entry per workload, in admission order.
    """
    catalog = Catalog()
    sources: dict[str, object] = {}
    for workload in workloads:
        for name, relation in workload.relations.items():
            catalog.register(name, relation.schema)
        sources.update(workload.sources())
    server = QueryServer(
        catalog,
        sources,
        policy=policy,
        batch_size=batch_size,
        quantum_tuples=POLL_STEP_LIMIT,
        polling_interval_seconds=POLLING_INTERVAL,
        engine_mode=engine_mode,
        **server_options,
    )
    for workload in workloads:
        server.submit(
            workload.query,
            initial_tree=_bad_initial_tree(workload),
            label=workload.query.name,
        )
    report = server.run()
    assert len(report.served) == len(workloads)
    observables = []
    for served, workload in zip(report.served, workloads):
        assert served.query_name == workload.query.name
        observables.append(
            EngineObservables(
                multiset=_canonical_multiset(
                    served.rows,
                    served.report.schema.names,
                    _canonical_names(workload),
                ),
                metrics=served.report.metrics.as_dict(),
                simulated_seconds=served.report.simulated_seconds,
                phases=served.phases,
            )
        )
    return report, observables


@dataclass
class DifferentialResult:
    """Everything a differential case produced, for assertions and reports."""

    seed: int
    workload: DifferentialWorkload
    reference: Counter
    row_multisets: dict[str, Counter] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)

    @property
    def uses_aggregation(self) -> bool:
        return self.workload.query.aggregation is not None

    @property
    def max_phases(self) -> int:
        return max(self.phase_counts.values(), default=0)


def run_differential_case(seed: int) -> DifferentialResult:
    """Run one seed through every engine configuration and compare."""
    workload = generate_workload(seed)
    query = workload.query
    catalog = workload.catalog()
    fixed_tree = JoinTree.left_deep(query.relations)
    bad_tree = _bad_initial_tree(workload)

    canonical_names = _canonical_names(workload)

    result = DifferentialResult(
        seed=seed,
        workload=workload,
        reference=Counter(reference_spja(query, workload.relations)),
    )

    static_report = StaticExecutor(catalog, workload.sources()).execute(query)
    result.row_multisets["static"] = _canonical_multiset(
        static_report.rows,
        canonical_names
        if static_report.schema is None
        else static_report.schema.names,
        canonical_names,
    )

    engine_columns = [("pipelined", None, "interpreted")] + [
        (f"batched[{batch_size}]", batch_size, "interpreted")
        for batch_size in BATCH_SIZES
    ] + [
        (f"compiled[{batch_size}]", batch_size, "compiled")
        for batch_size in COMPILED_BATCH_SIZES
    ]
    for label, batch_size, engine_mode in engine_columns:
        rows, plan = PipelinedExecutor(
            workload.sources(), batch_size=batch_size, engine_mode=engine_mode
        ).execute(query, fixed_tree)
        names = (
            canonical_names
            if query.aggregation is not None
            else plan.output_schema.names
        )
        result.row_multisets[label] = _canonical_multiset(
            rows, names, canonical_names
        )

    corrective_columns = [("corrective", None, "interpreted")] + [
        (f"corrective[{batch_size}]", batch_size, "interpreted")
        for batch_size in BATCH_SIZES
    ] + [
        (f"corrective-compiled[{batch_size}]", batch_size, "compiled")
        for batch_size in COMPILED_BATCH_SIZES
    ]
    for label, batch_size, engine_mode in corrective_columns:
        _, observables = run_solo_corrective(
            workload,
            batch_size=batch_size,
            engine_mode=engine_mode,
            catalog=catalog,
            initial_tree=bad_tree,
        )
        result.row_multisets[label] = observables.multiset
        result.phase_counts[label] = observables.phases

    return result


@dataclass
class ServingDifferentialResult:
    """One serving-vs-solo differential run, for assertions and meta-tests."""

    seeds: tuple[int, ...]
    policy: str
    batch_size: int | None
    workloads: list[DifferentialWorkload]
    serving_report: object  # repro.serving.server.ServingReport
    solo_phase_counts: list[int]
    served_phase_counts: list[int]

    @property
    def num_remote(self) -> int:
        return sum(1 for workload in self.workloads if workload.remote)

    @property
    def max_served_phases(self) -> int:
        return max(self.served_phase_counts, default=0)


def run_serving_differential_case(
    seeds, policy: str, batch_size: int | None = None
) -> ServingDifferentialResult:
    """Serve several differential workloads concurrently; verify each answer.

    The workloads (one per seed, relation names prefixed ``w<i>_`` so they
    coexist in one catalog) are all admitted at time zero to a
    :class:`~repro.serving.server.QueryServer` under ``policy``, each forced
    to start from its deliberately bad join order.  Every served query's
    result multiset must equal both the brute-force reference oracle and a
    solo corrective run with identical parameters — interleaving, shared
    clocks and cross-query statistics seeding may change plans and timing
    but never answers.
    """
    workloads = [
        generate_workload(seed, name_prefix=f"w{index}_")
        for index, seed in enumerate(seeds)
    ]

    expectations = []
    solo_phase_counts = []
    for workload in workloads:
        query = workload.query
        reference = Counter(reference_spja(query, workload.relations))
        _, solo = run_solo_corrective(workload, batch_size=batch_size)
        assert solo.multiset == reference, (
            f"solo corrective run disagrees with the reference oracle on "
            f"query {query.name} (seed {workload.seed})"
        )
        solo_phase_counts.append(solo.phases)
        expectations.append((workload, reference))

    report, served_observables = run_served_workloads(
        workloads, policy, batch_size=batch_size
    )
    served_phase_counts = []
    for served, (workload, reference) in zip(served_observables, expectations):
        assert served.multiset == reference, (
            f"policy {policy!r} (batch_size={batch_size}): served query "
            f"{workload.query.name!r} disagrees with its solo/reference "
            f"result on seed {workload.seed}; query:\n{workload.query.describe()}"
        )
        served_phase_counts.append(served.phases)
    return ServingDifferentialResult(
        seeds=tuple(seeds),
        policy=policy,
        batch_size=batch_size,
        workloads=workloads,
        serving_report=report,
        solo_phase_counts=solo_phase_counts,
        served_phase_counts=served_phase_counts,
    )


@dataclass
class CompiledDifferentialResult:
    """Interpreted-vs-compiled observables for one workload (solo corrective)."""

    seed: int
    workload: DifferentialWorkload
    reference: Counter
    interpreted: EngineObservables
    compiled: EngineObservables


def run_compiled_differential_case(
    seed: int, batch_size: int = 64
) -> CompiledDifferentialResult:
    """Run one workload through corrective processing with both engines.

    Both runs start from the same deliberately bad plan with identical
    polling parameters, so they traverse the same phases — the compiled
    engine must match the interpreted batched engine **bit for bit**:
    result multiset, every work counter, simulated seconds (local *and*
    remote sources — the compiled engine preserves even the clock-charge
    granularity) and the number of corrective phases.
    """
    workload = generate_workload(seed)
    query = workload.query
    observed = {}
    for engine_mode in ("interpreted", "compiled"):
        _, observed[engine_mode] = run_solo_corrective(
            workload, batch_size=batch_size, engine_mode=engine_mode
        )
    return CompiledDifferentialResult(
        seed=seed,
        workload=workload,
        reference=Counter(reference_spja(query, workload.relations)),
        interpreted=observed["interpreted"],
        compiled=observed["compiled"],
    )


def assert_compiled_differential_case(result: CompiledDifferentialResult) -> None:
    """Assert the full bit-identical contract for one solo compiled case."""
    name = result.workload.query.name
    assert result.interpreted.multiset == result.reference, (
        f"seed {result.seed}: interpreted corrective run disagrees with the "
        f"reference oracle on {name}"
    )
    assert result.compiled.multiset == result.reference, (
        f"seed {result.seed}: compiled corrective run disagrees with the "
        f"reference oracle on {name}"
    )
    assert result.compiled.metrics == result.interpreted.metrics, (
        f"seed {result.seed}: compiled work counters diverge on {name}: "
        f"{result.compiled.metrics} vs {result.interpreted.metrics}"
    )
    assert result.compiled.simulated_seconds == result.interpreted.simulated_seconds, (
        f"seed {result.seed}: compiled simulated seconds diverge on {name} "
        f"({result.compiled.simulated_seconds!r} vs "
        f"{result.interpreted.simulated_seconds!r})"
    )
    assert result.compiled.phases == result.interpreted.phases, (
        f"seed {result.seed}: compiled phase count diverges on {name} "
        f"({result.compiled.phases} vs {result.interpreted.phases})"
    )


@dataclass
class CompiledServingDifferentialResult:
    """Interpreted-vs-compiled comparison of one whole serving run."""

    seeds: tuple[int, ...]
    policy: str
    batch_size: int
    workloads: list[DifferentialWorkload]
    references: list[Counter]
    interpreted: list[EngineObservables]
    compiled: list[EngineObservables]
    interpreted_makespan: float
    compiled_makespan: float


def run_compiled_serving_differential_case(
    seeds, policy: str = "round_robin", batch_size: int = 64
) -> CompiledServingDifferentialResult:
    """Serve the same workload mix with both engines and collect observables.

    The servers are configured identically (shared clock, same policy and
    quantum); because the compiled engine charges bit-identical work at
    bit-identical points, the schedulers make identical decisions and every
    served query must report identical answers, counters, simulated timings
    and phase counts — the whole serving run is replayed exactly.
    """
    workloads = [
        generate_workload(seed, name_prefix=f"w{index}_")
        for index, seed in enumerate(seeds)
    ]
    references = [
        Counter(reference_spja(workload.query, workload.relations))
        for workload in workloads
    ]

    observed: dict[str, list[EngineObservables]] = {}
    makespans: dict[str, float] = {}
    for engine_mode in ("interpreted", "compiled"):
        report, observed[engine_mode] = run_served_workloads(
            workloads, policy, batch_size=batch_size, engine_mode=engine_mode
        )
        makespans[engine_mode] = report.makespan
    return CompiledServingDifferentialResult(
        seeds=tuple(seeds),
        policy=policy,
        batch_size=batch_size,
        workloads=workloads,
        references=references,
        interpreted=observed["interpreted"],
        compiled=observed["compiled"],
        interpreted_makespan=makespans["interpreted"],
        compiled_makespan=makespans["compiled"],
    )


def assert_compiled_serving_differential_case(
    result: CompiledServingDifferentialResult,
) -> None:
    """Assert the bit-identical contract for one served workload mix."""
    for workload, reference, interpreted, compiled in zip(
        result.workloads, result.references, result.interpreted, result.compiled
    ):
        name = workload.query.name
        context = (
            f"policy {result.policy!r}, batch_size={result.batch_size}, "
            f"query {name} (seed {workload.seed})"
        )
        assert interpreted.multiset == reference, (
            f"{context}: interpreted served answer disagrees with the oracle"
        )
        assert compiled.multiset == reference, (
            f"{context}: compiled served answer disagrees with the oracle"
        )
        assert compiled.metrics == interpreted.metrics, (
            f"{context}: served work counters diverge"
        )
        assert compiled.simulated_seconds == interpreted.simulated_seconds, (
            f"{context}: served simulated seconds diverge"
        )
        assert compiled.phases == interpreted.phases, (
            f"{context}: served phase counts diverge"
        )
    assert result.compiled_makespan == result.interpreted_makespan, (
        f"policy {result.policy!r}: serving makespans diverge "
        f"({result.compiled_makespan!r} vs {result.interpreted_makespan!r})"
    )


def rate_collapse_setup(
    workload: DifferentialWorkload, promised_rate: float = 4000.0
) -> tuple[Catalog, dict[str, object]]:
    """Every source behind a rate-promising link that collapses then recovers.

    The catalog carries each source's ``promised_rate`` and the network
    delivers a 2% trickle before recovering at full rate, so the
    source-rate policy's collapse detector fires on most seeds — the rate
    differential suite then pins that whatever it does (read demotions,
    rate-aware plan switches) never changes answers.
    """
    catalog = Catalog()
    sources: dict[str, object] = {}
    for index, (name, relation) in enumerate(workload.relations.items()):
        network = PhasedRateNetworkModel(
            [(0.004 + 0.002 * index, 0.02 * promised_rate)],
            tail_rate=promised_rate,
            latency=0.0005,
        )
        sources[name] = RemoteSource(
            relation, network, promised_rate=promised_rate
        )
        catalog.register(
            name, relation.schema, TableStatistics(promised_rate=promised_rate)
        )
    return catalog, sources


@dataclass
class RateDifferentialResult:
    """Static-vs-rate-adaptive observables for one collapsed-source workload."""

    seed: int
    workload: DifferentialWorkload
    reference: Counter
    static: EngineObservables
    adaptive: EngineObservables
    rate_switches: int
    reprioritizations: int


def run_rate_differential_case(
    seed: int, batch_size: int | None = 64
) -> RateDifferentialResult:
    """Run one workload over collapsing sources with and without rate adaptivity.

    Both runs start from the same deliberately bad plan; the adaptive run's
    result multiset must match the static run and the reference oracle no
    matter what the source-rate policy decided to do.
    """
    workload = generate_workload(seed)
    observed = {}
    details = {}
    for rate_adaptive in (False, True):
        catalog, sources = rate_collapse_setup(workload)
        report, observables = run_solo_corrective(
            workload,
            batch_size=batch_size,
            catalog=catalog,
            sources=sources,
            rate_adaptive=rate_adaptive,
        )
        observed[rate_adaptive] = observables
        details[rate_adaptive] = report.details.get("adaptation", {})
    switches = [
        switch
        for switch in details[True].get("switches", [])
        if switch["policy"] == "source_rate"
    ]
    return RateDifferentialResult(
        seed=seed,
        workload=workload,
        reference=Counter(reference_spja(workload.query, workload.relations)),
        static=observed[False],
        adaptive=observed[True],
        rate_switches=len(switches),
        reprioritizations=details[True].get("reprioritizations", 0),
    )


def assert_rate_differential_case(result: RateDifferentialResult) -> None:
    """Assert the answers-never-change contract for one rate case."""
    name = result.workload.query.name
    assert result.static.multiset == result.reference, (
        f"seed {result.seed}: static run over collapsing sources disagrees "
        f"with the reference oracle on {name}"
    )
    assert result.adaptive.multiset == result.reference, (
        f"seed {result.seed}: rate-adaptive run disagrees with the reference "
        f"oracle on {name} (switches={result.rate_switches}, "
        f"reprioritizations={result.reprioritizations})"
    )


def mirror_outage_setup(
    workload: DifferentialWorkload, promised_rate: float = 4000.0
) -> tuple[Catalog, dict[str, object]]:
    """Every source: healthy opening burst, then a sustained outage — with a
    healthy mirror registered on each primary.

    The primary delivers at full promised rate for a few milliseconds, then
    collapses into a deep trickle (0.5% of the promise) for the rest of the
    run; a replica behind a healthy constant-rate link is registered as its
    mirror.  With ``failover_adaptive=True`` the mirror-failover policy
    detects the sustained outage and resumes the remainder of each stream
    from the mirror; the differential suite pins that the stitched
    partial-primary + resumed-mirror reads answer bit-identically to the
    no-failover run and the brute-force oracle.
    """
    catalog = Catalog()
    sources: dict[str, object] = {}
    for index, (name, relation) in enumerate(workload.relations.items()):
        outage_network = PhasedRateNetworkModel(
            [
                (0.003 + 0.001 * index, promised_rate),
                (30.0, 0.005 * promised_rate),
            ],
            tail_rate=promised_rate,
            latency=0.0005,
        )
        mirror_network = PhasedRateNetworkModel(
            [(0.001, promised_rate)],
            tail_rate=promised_rate,
            latency=0.0005,
        )
        primary = RemoteSource(relation, outage_network, promised_rate=promised_rate)
        primary.register_mirror(
            RemoteSource(
                relation,
                mirror_network,
                name=f"{name}_mirror",
                promised_rate=promised_rate,
            )
        )
        sources[name] = primary
        catalog.register(
            name, relation.schema, TableStatistics(promised_rate=promised_rate)
        )
    return catalog, sources


@dataclass
class MirrorDifferentialResult:
    """No-failover vs mirror-failover observables for one outage workload."""

    seed: int
    workload: DifferentialWorkload
    reference: Counter
    static: EngineObservables
    failover: EngineObservables
    failovers: int
    failover_details: list[dict]


def run_mirror_differential_case(
    seed: int, batch_size: int | None = 64
) -> MirrorDifferentialResult:
    """Run one workload over outage-bound mirrored sources with and without
    mirror failover.

    Both runs start from the same deliberately bad plan; the failover run's
    result multiset must match the no-failover run and the reference oracle
    no matter which sources failed over (only arrival times may differ).
    """
    workload = generate_workload(seed)
    observed = {}
    details = {}
    for failover_adaptive in (False, True):
        catalog, sources = mirror_outage_setup(workload)
        report, observables = run_solo_corrective(
            workload,
            batch_size=batch_size,
            catalog=catalog,
            sources=sources,
            failover_adaptive=failover_adaptive,
            failover_stall_seconds=0.005,
        )
        observed[failover_adaptive] = observables
        details[failover_adaptive] = report.details.get("adaptation", {})
    failover_details = details[True].get("failovers", [])
    return MirrorDifferentialResult(
        seed=seed,
        workload=workload,
        reference=Counter(reference_spja(workload.query, workload.relations)),
        static=observed[False],
        failover=observed[True],
        failovers=len(failover_details),
        failover_details=failover_details,
    )


def assert_mirror_differential_case(result: MirrorDifferentialResult) -> None:
    """Assert the answers-never-change contract for one mirror-failover case."""
    name = result.workload.query.name
    assert result.static.multiset == result.reference, (
        f"seed {result.seed}: no-failover run over outage sources disagrees "
        f"with the reference oracle on {name}"
    )
    assert result.failover.multiset == result.reference, (
        f"seed {result.seed}: mirror-failover run disagrees with the "
        f"reference oracle on {name} (failovers={result.failover_details})"
    )


def assert_differential_case(result: DifferentialResult) -> None:
    """Assert the equivalence contract for one differential case."""
    for label, multiset in result.row_multisets.items():
        assert multiset == result.reference, (
            f"seed {result.seed}: engine {label!r} disagrees with the "
            f"reference evaluation on query {result.workload.query.name} "
            f"({len(multiset)} distinct rows vs {len(result.reference)}); "
            f"query:\n{result.workload.query.describe()}"
        )
    assert all(count >= 1 for count in result.phase_counts.values())
    if not result.workload.remote:
        # Guaranteed by construction only on local sources, where the
        # clock driving the corrective poll loop is a pure function of the
        # (batch-size-invariant) per-source consumption counts.
        phase_counts = set(result.phase_counts.values())
        assert len(phase_counts) <= 1, (
            f"seed {result.seed}: corrective phase counts diverge across "
            f"batch sizes: {result.phase_counts} for query "
            f"{result.workload.query.name}"
        )


def run_sharded_workloads(
    workloads: list[DifferentialWorkload],
    policy: str,
    workers: int,
    batch_size: int | None = None,
    engine_mode: str = "interpreted",
    start_method: str | None = None,
    **server_options,
):
    """One sharded serving run over prefix-namespaced differential workloads.

    The multi-process counterpart of :func:`run_served_workloads`: the same
    workload mix is admitted to a
    :class:`~repro.serving.sharded.ShardedQueryServer` with ``workers``
    shards, each forced to start from its deliberately bad join order.
    Returns ``(ShardedServingReport, [EngineObservables])`` with one
    observables entry per workload, in admission order.
    """
    from repro.serving.sharded import ShardedQueryServer

    catalog = Catalog()
    sources: dict[str, object] = {}
    for workload in workloads:
        for name, relation in workload.relations.items():
            catalog.register(name, relation.schema)
        sources.update(workload.sources())
    server = ShardedQueryServer(
        catalog,
        sources,
        policy=policy,
        workers=workers,
        batch_size=batch_size,
        quantum_tuples=POLL_STEP_LIMIT,
        polling_interval_seconds=POLLING_INTERVAL,
        engine_mode=engine_mode,
        start_method=start_method,
        **server_options,
    )
    for workload in workloads:
        server.submit(
            workload.query,
            initial_tree=_bad_initial_tree(workload),
            label=workload.query.name,
        )
    report = server.run()
    assert len(report.served) == len(workloads)
    observables = []
    for served, workload in zip(report.served, workloads):
        assert served.query_name == workload.query.name
        observables.append(
            EngineObservables(
                multiset=_canonical_multiset(
                    served.rows,
                    served.report.schema.names,
                    _canonical_names(workload),
                ),
                metrics=served.report.metrics.as_dict(),
                simulated_seconds=served.report.simulated_seconds,
                phases=served.phases,
            )
        )
    return report, observables


@dataclass
class ShardedDifferentialResult:
    """One sharded-vs-solo differential run, for assertions and meta-tests."""

    seeds: tuple[int, ...]
    policy: str
    workers: int
    batch_size: int | None
    engine_mode: str
    start_method: str | None
    workloads: list[DifferentialWorkload]
    report: object  # repro.serving.sharded.ShardedServingReport
    solo: list[EngineObservables]
    served: list[EngineObservables]

    @property
    def num_remote(self) -> int:
        return sum(1 for workload in self.workloads if workload.remote)

    @property
    def served_phase_counts(self) -> list[int]:
        return [observables.phases for observables in self.served]


def run_sharded_differential_case(
    seeds,
    policy: str,
    workers: int,
    batch_size: int | None = None,
    engine_mode: str = "interpreted",
    start_method: str | None = None,
) -> ShardedDifferentialResult:
    """Shard several differential workloads across worker processes; verify
    each answer **bit-identically** against its solo corrective run.

    Stronger than the in-process serving differential: because every sharded
    session runs blocking on a private clock — exactly like solo execution —
    not just multisets but work counters, simulated seconds *and* phase
    counts must equal the solo run with identical parameters, on every
    worker count, scheduling policy, engine mode and start method.
    """
    workloads = [
        generate_workload(seed, name_prefix=f"w{index}_")
        for index, seed in enumerate(seeds)
    ]

    solo_observables = []
    for workload in workloads:
        reference = Counter(reference_spja(workload.query, workload.relations))
        _, solo = run_solo_corrective(
            workload, batch_size=batch_size, engine_mode=engine_mode
        )
        assert solo.multiset == reference, (
            f"solo corrective run disagrees with the reference oracle on "
            f"query {workload.query.name} (seed {workload.seed})"
        )
        solo_observables.append(solo)

    report, served_observables = run_sharded_workloads(
        workloads,
        policy,
        workers,
        batch_size=batch_size,
        engine_mode=engine_mode,
        start_method=start_method,
    )
    for served, solo, workload in zip(
        served_observables, solo_observables, workloads
    ):
        context = (
            f"workers={workers}, policy={policy!r}, batch_size={batch_size}, "
            f"engine={engine_mode}, start={start_method!r}: sharded query "
            f"{workload.query.name!r} (seed {workload.seed})"
        )
        assert served.multiset == solo.multiset, (
            f"{context} disagrees with its solo/reference multiset; query:\n"
            f"{workload.query.describe()}"
        )
        assert served.metrics == solo.metrics, (
            f"{context}: work counters diverge from solo"
        )
        assert served.simulated_seconds == solo.simulated_seconds, (
            f"{context}: simulated seconds diverge from solo "
            f"({served.simulated_seconds!r} vs {solo.simulated_seconds!r})"
        )
        assert served.phases == solo.phases, (
            f"{context}: phase counts diverge from solo "
            f"({served.phases} vs {solo.phases})"
        )
    return ShardedDifferentialResult(
        seeds=tuple(seeds),
        policy=policy,
        workers=workers,
        batch_size=batch_size,
        engine_mode=engine_mode,
        start_method=start_method,
        workloads=workloads,
        report=report,
        solo=solo_observables,
        served=served_observables,
    )


@dataclass
class PartitionDifferentialResult:
    """One partition-parallel-vs-solo differential run."""

    seed: int
    partitions: int
    workers: int
    batch_size: int | None
    engine_mode: str
    workload: DifferentialWorkload
    reference: Counter
    solo: EngineObservables
    merged: Counter
    report: object  # repro.serving.sharded.ShardedServingReport

    @property
    def partitioned(self):
        return self.report.partitioned[0]


def run_partition_differential_case(
    seed: int,
    partitions: int,
    workers: int = 2,
    batch_size: int | None = None,
    engine_mode: str = "interpreted",
    start_method: str | None = None,
    workload: DifferentialWorkload | None = None,
) -> PartitionDifferentialResult:
    """Execute one local workload partition-parallel; verify the merged
    multiset against the solo run and the reference oracle.

    Both join inputs of the heaviest edge are hash-partitioned, one fragment
    session runs per partition (spread round-robin across ``workers``
    shards), and the front-end merges fragment outputs at the root —
    concatenation for SPJ queries, per-group partial-aggregate folding for
    aggregation queries (avg decomposed into sum/count partials).  The merged
    multiset must equal the unpartitioned answer exactly.
    """
    from repro.serving.sharded import ShardedQueryServer

    if workload is None:
        workload = generate_workload(seed)
    assert not workload.remote, (
        "partition differential cases need materialized local relations"
    )
    query = workload.query
    reference = Counter(reference_spja(query, workload.relations))
    _, solo = run_solo_corrective(
        workload, batch_size=batch_size, engine_mode=engine_mode
    )
    assert solo.multiset == reference, (
        f"solo corrective run disagrees with the reference oracle on "
        f"query {query.name} (seed {seed})"
    )

    server = ShardedQueryServer(
        workload.catalog(),
        workload.sources(),
        workers=workers,
        batch_size=batch_size,
        quantum_tuples=POLL_STEP_LIMIT,
        polling_interval_seconds=POLLING_INTERVAL,
        engine_mode=engine_mode,
        start_method=start_method,
    )
    label = server.submit_partitioned(query, partitions, label=query.name)
    report = server.run()
    assert len(report.partitioned) == 1 and report.partitioned[0].label == label
    merged_query = report.partitioned[0]
    assert len(merged_query.fragments) == partitions
    merged = _canonical_multiset(
        merged_query.rows, merged_query.schema.names, _canonical_names(workload)
    )
    assert merged == reference, (
        f"seed {seed}, partitions={partitions}, workers={workers}, "
        f"batch_size={batch_size}, engine={engine_mode}: partition-parallel "
        f"merge disagrees with the reference oracle on {query.name} "
        f"({len(merged)} distinct rows vs {len(reference)}); query:\n"
        f"{query.describe()}"
    )
    return PartitionDifferentialResult(
        seed=seed,
        partitions=partitions,
        workers=workers,
        batch_size=batch_size,
        engine_mode=engine_mode,
        workload=workload,
        reference=reference,
        solo=solo,
        merged=merged,
        report=report,
    )
