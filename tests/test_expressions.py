"""Tests for predicates, join predicates and aggregate terms."""

import pytest

from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    BinaryPredicate,
    Comparison,
    Conjunction,
    Constant,
    Disjunction,
    ExpressionError,
    JoinPredicate,
    Negation,
    TruePredicate,
    conjunction,
    validate_aggregates,
)
from repro.relational.schema import Schema

SCHEMA = Schema.from_names(["a", "b", "c"])


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), ("<=", True), (">", False), (">=", False)],
    )
    def test_operators(self, op, expected):
        predicate = Comparison(AttributeRef("a"), op, AttributeRef("b"))
        assert predicate.compile(SCHEMA)((1, 2, 3)) is expected

    def test_against_constant(self):
        predicate = Comparison(AttributeRef("c"), ">=", Constant(3))
        fn = predicate.compile(SCHEMA)
        assert fn((0, 0, 3))
        assert not fn((0, 0, 2))

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Comparison(AttributeRef("a"), "LIKE", Constant("x"))

    def test_attributes(self):
        predicate = Comparison(AttributeRef("a"), "=", AttributeRef("b"))
        assert predicate.attributes() == {"a", "b"}

    def test_selectivity_defaults(self):
        assert Comparison(AttributeRef("a"), "=", Constant(1)).estimated_selectivity() == 0.1
        assert Comparison(AttributeRef("a"), "<", Constant(1)).estimated_selectivity() == 0.3


class TestBooleanCombinators:
    def test_conjunction(self):
        predicate = Conjunction(
            (
                Comparison(AttributeRef("a"), ">", Constant(0)),
                Comparison(AttributeRef("b"), "<", Constant(10)),
            )
        )
        fn = predicate.compile(SCHEMA)
        assert fn((1, 5, 0))
        assert not fn((0, 5, 0))

    def test_disjunction(self):
        predicate = Disjunction(
            (
                Comparison(AttributeRef("a"), "=", Constant(1)),
                Comparison(AttributeRef("b"), "=", Constant(1)),
            )
        )
        fn = predicate.compile(SCHEMA)
        assert fn((1, 0, 0))
        assert fn((0, 1, 0))
        assert not fn((0, 0, 0))

    def test_negation(self):
        predicate = Negation(Comparison(AttributeRef("a"), "=", Constant(1)))
        fn = predicate.compile(SCHEMA)
        assert not fn((1, 0, 0))
        assert fn((2, 0, 0))

    def test_true_predicate(self):
        assert TruePredicate().compile(SCHEMA)((1, 2, 3))
        assert TruePredicate().estimated_selectivity() == 1.0

    def test_conjunction_helper_simplifies(self):
        only = Comparison(AttributeRef("a"), "=", Constant(1))
        assert conjunction([TruePredicate(), only]) is only
        assert isinstance(conjunction([]), TruePredicate)
        combined = conjunction([only, Comparison(AttributeRef("b"), "=", Constant(2))])
        assert isinstance(combined, Conjunction)

    def test_conjunction_selectivity_multiplies(self):
        pred = Conjunction(
            (
                Comparison(AttributeRef("a"), "=", Constant(1)),
                Comparison(AttributeRef("b"), "=", Constant(2)),
            )
        )
        assert pred.estimated_selectivity() == pytest.approx(0.01)

    def test_binary_predicate(self):
        predicate = BinaryPredicate("a", "b", lambda x, y: x + y > 4, label="sum_gt")
        fn = predicate.compile(SCHEMA)
        assert fn((2, 3, 0))
        assert not fn((1, 1, 0))
        assert predicate.attributes() == {"a", "b"}


class TestJoinPredicate:
    def test_attr_for(self):
        pred = JoinPredicate("orders", "o_custkey", "customer", "c_custkey")
        assert pred.attr_for("orders") == "o_custkey"
        assert pred.attr_for("customer") == "c_custkey"

    def test_attr_for_unknown_relation(self):
        pred = JoinPredicate("a", "x", "b", "y")
        with pytest.raises(ExpressionError):
            pred.attr_for("c")

    def test_connects(self):
        pred = JoinPredicate("a", "x", "b", "y")
        assert pred.connects(frozenset(["a"]), frozenset(["b"]))
        assert pred.connects(frozenset(["b"]), frozenset(["a"]))
        assert not pred.connects(frozenset(["a"]), frozenset(["c"]))

    def test_involves_and_relations(self):
        pred = JoinPredicate("a", "x", "b", "y")
        assert pred.involves("a") and pred.involves("b") and not pred.involves("c")
        assert pred.relations() == frozenset({"a", "b"})

    def test_to_comparison(self):
        pred = JoinPredicate("a", "x", "b", "y").to_comparison()
        schema = Schema.from_names(["x", "y"])
        assert pred.compile(schema)((1, 1))
        assert not pred.compile(schema)((1, 2))


class TestAggregate:
    def test_sum(self):
        agg = Aggregate("sum", "v", "total")
        state = agg.initial_state()
        for value in (1, 2, 3):
            state = agg.merge_value(state, value)
        assert agg.finalize(state) == 6

    def test_count_ignores_attribute(self):
        agg = Aggregate("count", None, "n")
        state = agg.initial_state()
        for _ in range(4):
            state = agg.merge_value(state, None)
        assert agg.finalize(state) == 4

    def test_min_max(self):
        mn, mx = Aggregate("min", "v", "lo"), Aggregate("max", "v", "hi")
        smin, smax = mn.initial_state(), mx.initial_state()
        for value in (5, 3, 9):
            smin = mn.merge_value(smin, value)
            smax = mx.merge_value(smax, value)
        assert mn.finalize(smin) == 3
        assert mx.finalize(smax) == 9

    def test_avg_decomposes_into_sum_and_count(self):
        agg = Aggregate("avg", "v", "mean")
        state = agg.initial_state()
        for value in (2.0, 4.0, 6.0):
            state = agg.merge_value(state, value)
        assert agg.finalize(state) == pytest.approx(4.0)

    def test_avg_merge_partial(self):
        agg = Aggregate("avg", "v", "mean")
        partial_a = (6.0, 2)  # sum, count
        partial_b = (6.0, 1)
        state = agg.initial_state()
        state = agg.merge_partial(state, partial_a)
        state = agg.merge_partial(state, partial_b)
        assert agg.finalize(state) == pytest.approx(4.0)

    def test_merge_partial_distributes_like_merge_value(self):
        """Pre-aggregating a partition then coalescing equals direct aggregation."""
        values = [4, 8, 15, 16, 23, 42]
        for fn in ("sum", "min", "max", "count"):
            agg = Aggregate(fn, "v" if fn != "count" else None, "out")
            direct = agg.initial_state()
            for value in values:
                direct = agg.merge_value(direct, value)
            left, right = agg.initial_state(), agg.initial_state()
            for value in values[:3]:
                left = agg.merge_value(left, value)
            for value in values[3:]:
                right = agg.merge_value(right, value)
            combined = agg.merge_partial(agg.initial_state(), left)
            combined = agg.merge_partial(combined, right)
            assert agg.finalize(combined) == agg.finalize(direct)

    def test_singleton_partial(self):
        assert Aggregate("count", None, "n").singleton_partial(None) == 1
        assert Aggregate("sum", "v", "s").singleton_partial(5) == 5
        assert Aggregate("avg", "v", "a").singleton_partial(5) == (5, 1)

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            Aggregate("median", "v", "m")

    def test_missing_attribute_rejected(self):
        with pytest.raises(ExpressionError):
            Aggregate("sum", None, "s")

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ExpressionError):
            validate_aggregates(
                [Aggregate("sum", "v", "x"), Aggregate("max", "v", "x")]
            )
