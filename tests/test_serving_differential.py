"""Serving-vs-solo differential tests.

The correctness bar of the multi-query serving layer: admitting N queries
concurrently — with a shared simulated clock, shared source objects, fair
scheduling and cross-query statistics seeding — must leave every query's
result multiset identical to its solo corrective execution (and to the
brute-force reference oracle).  The workloads reuse the same seeded
generator as the engine differential tests, so the population spans
aggregation, empty inputs, multi-join queries and remote (bursty-arrival)
sources; a meta-test pins that coverage so the assertions cannot silently
become vacuous.
"""

from __future__ import annotations

import pytest

from differential import run_serving_differential_case

POLICIES = ("round_robin", "shortest_remaining_cost")

#: (concurrency level, workload seeds) — issue-mandated N ∈ {2, 4, 8}, drawn
#: from the same seed population as the engine differential tests.
CONCURRENCY_CASES = (
    (2, (0, 1)),
    (4, (2, 3, 4, 5)),
    (8, (6, 7, 8, 9, 10, 11, 12, 13)),
)

_CASE_CACHE: dict[tuple, object] = {}


def _case(seeds, policy, batch_size=None):
    key = (tuple(seeds), policy, batch_size)
    result = _CASE_CACHE.get(key)
    if result is None:
        result = run_serving_differential_case(seeds, policy, batch_size=batch_size)
        _CASE_CACHE[key] = result
    return result


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize(
    "concurrency,seeds", CONCURRENCY_CASES, ids=lambda value: str(value)
)
def test_serving_matches_solo(concurrency, seeds, policy):
    result = _case(seeds, policy)
    assert len(result.serving_report.served) == concurrency
    # Every query genuinely ran under the shared clock.
    assert all(query.quanta >= 1 for query in result.serving_report.served)


@pytest.mark.parametrize("policy", POLICIES)
def test_serving_matches_solo_batched(policy):
    """Batched engines under concurrent serving still answer exactly."""
    result = _case((2, 3, 4, 5), policy, batch_size=64)
    assert len(result.serving_report.served) == 4


def test_serving_population_covers_interesting_regimes():
    """The equivalence claims only bite if the served population is diverse."""
    cases = [
        _case(seeds, policy)
        for _, seeds in CONCURRENCY_CASES
        for policy in POLICIES
    ]
    remote = sum(case.num_remote for case in cases)
    multi_phase = sum(
        1 for case in cases for phases in case.served_phase_counts if phases >= 2
    )
    multi_join = sum(
        1
        for case in cases
        for workload in case.workloads
        if len(workload.query.relations) >= 3
    )
    aggregated = sum(
        1
        for case in cases
        for workload in case.workloads
        if workload.query.aggregation is not None
    )
    assert remote >= 2, "no remote workloads served — arrival waits untested"
    assert multi_phase >= 2, (
        "no served query ran multiple corrective phases — adaptation under "
        "concurrency is at risk of being vacuously true"
    )
    assert multi_join >= 4
    assert aggregated >= 2


def test_scheduling_policies_change_timing_but_not_answers():
    """The two policies produce different schedules over the same inputs
    (otherwise the policy knob is dead code) while both match solo."""
    seeds = (6, 7, 8, 9, 10, 11, 12, 13)
    round_robin = _case(seeds, "round_robin")
    shortest = _case(seeds, "shortest_remaining_cost")
    rr_latencies = round_robin.serving_report.latencies()
    src_latencies = shortest.serving_report.latencies()
    assert rr_latencies != src_latencies
