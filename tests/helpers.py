"""Shared test helpers: brute-force reference implementations.

The engine's operators and the adaptive executors are checked against these
deliberately naive implementations — nested-loop joins, dictionary-based
aggregation — which are easy to convince yourself are correct.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.relational.algebra import SPJAQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def reference_join(
    left: Relation, right: Relation, left_key: str, right_key: str
) -> list[tuple]:
    """Brute-force equi-join returning concatenated tuples (left values first)."""
    lpos = left.schema.position(left_key)
    rpos = right.schema.position(right_key)
    return [
        lrow + rrow
        for lrow in left.rows
        for rrow in right.rows
        if lrow[lpos] == rrow[rpos]
    ]


def reference_spja(query: SPJAQuery, sources: dict[str, Relation]) -> list[tuple]:
    """Brute-force evaluation of an SPJA query (selections, joins, group-by)."""
    # Apply selections and collect per-relation rows with their schemas.
    working: list[tuple[Schema, list[tuple]]] = []
    for name in query.relations:
        relation = sources[name]
        predicate = query.selection_for(name).compile(relation.schema)
        rows = [row for row in relation.rows if predicate(row)]
        working.append((relation.schema, rows))

    # Fold relations together with nested loops, applying every join predicate
    # whose relations are both present.
    schema = working[0][0]
    rows = working[0][1]
    joined_names = {query.relations[0]}
    remaining = list(zip(query.relations[1:], working[1:]))
    while remaining:
        for index, (name, (rel_schema, rel_rows)) in enumerate(remaining):
            predicates = [
                p
                for p in query.join_predicates
                if p.involves(name)
                and (p.left_relation in joined_names or p.right_relation in joined_names)
            ]
            if not predicates:
                continue
            combined_schema = schema.concat(rel_schema)
            checks = []
            for pred in predicates:
                if pred.left_relation == name:
                    own_attr, other_attr = pred.left_attr, pred.right_attr
                else:
                    own_attr, other_attr = pred.right_attr, pred.left_attr
                checks.append(
                    (combined_schema.position(other_attr), combined_schema.position(own_attr))
                )
            new_rows = []
            for lrow in rows:
                for rrow in rel_rows:
                    candidate = lrow + rrow
                    if all(candidate[a] == candidate[b] for a, b in checks):
                        new_rows.append(candidate)
            schema = combined_schema
            rows = new_rows
            joined_names.add(name)
            remaining.pop(index)
            break
        else:
            raise AssertionError("query join graph is not connected")

    if query.aggregation is None:
        if query.projection:
            positions = schema.positions(query.projection)
            return [tuple(row[p] for p in positions) for row in rows]
        return rows

    # Group-by / aggregation.
    agg = query.aggregation
    group_positions = schema.positions(agg.group_attributes)
    groups: dict[tuple, list] = {}
    for row in rows:
        key = tuple(row[p] for p in group_positions)
        states = groups.setdefault(key, [a.initial_state() for a in agg.aggregates])
        for i, term in enumerate(agg.aggregates):
            value = row[schema.position(term.attribute)] if term.attribute else None
            states[i] = term.merge_value(states[i], value)
    return [
        key + tuple(term.finalize(state) for term, state in zip(agg.aggregates, states))
        for key, states in groups.items()
    ]


def rows_as_multiset(rows: Sequence[tuple]) -> Counter:
    """Bag-compare helper (order-insensitive, duplicate-sensitive)."""
    return Counter(rows)


def assert_same_bag(actual: Sequence[tuple], expected: Sequence[tuple]) -> None:
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


def assert_same_aggregates(
    actual: Sequence[tuple], expected: Sequence[tuple], rel_tol: float = 1e-9
) -> None:
    """Compare grouped results allowing floating-point summation-order drift."""
    def keyed(rows):
        return {row[:-1]: row[-1] for row in rows}

    actual_map, expected_map = keyed(actual), keyed(expected)
    assert set(actual_map) == set(expected_map)
    for key, expected_value in expected_map.items():
        actual_value = actual_map[key]
        if isinstance(expected_value, float):
            assert abs(actual_value - expected_value) <= rel_tol * max(
                1.0, abs(expected_value)
            ), (key, actual_value, expected_value)
        else:
            assert actual_value == expected_value, (key, actual_value, expected_value)
