"""Fault-injection differential suite: real backends vs the simulated oracle.

The PR's acceptance contract: ≥20 seeded workloads run over *real* file,
SQLite and HTTP backends — each wrapped in the resilience envelope and
subjected to a seeded schedule of delays, resets, outages and truncated
payloads — and every run's answer multiset must be identical to the
simulated-source oracle (local relations on the simulated clock) and to
the brute-force reference evaluation.

A *kill-the-envelope* control demonstrates the suite has teeth: a naive
reader over the same faulted transports (one connect, transport errors
swallowed as end-of-stream) silently loses rows on every seed whose plan
contains a lossy fault, and an engine run over naive sources disagrees
with the oracle.

A final integration case wires envelope mirrors into the adaptivity
kernel: a primary envelope that collapses into a long outage mid-stream
is failed over to its registered mirror by ``MirrorFailoverPolicy``, and
the stitched answers still match the oracle bit-for-bit.
"""

import signal
import sqlite3
from collections import Counter

import pytest

from differential import (
    _canonical_multiset,
    _canonical_names,
    run_solo_corrective,
)
from helpers import reference_spja

from repro.io import (
    CSVFileTransport,
    DBAPITransport,
    FaultPlan,
    FixtureServer,
    HTTPTransport,
    InjectedTransport,
    ResilientSource,
    TransportError,
)
from repro.io.faults import DELAY
from repro.relational.catalog import Catalog, TableStatistics
from repro.sources.source import DataSource
from repro.workloads.differential import generate_workload
from repro.io.backends import write_csv, write_sqlite
from repro.io.errors import ConnectError

SEEDS = range(20)

TEST_DEADLINE_SECONDS = 120


@pytest.fixture(autouse=True)
def hard_deadline():
    """Hard per-test timeout so a wedged socket cannot hang the suite."""

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_DEADLINE_SECONDS}s hard deadline"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_DEADLINE_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def plan_for(seed: int, index: int, row_count: int) -> FaultPlan:
    """The deterministic fault plan for relation ``index`` of ``seed``."""
    return FaultPlan.seeded(seed * 1009 + index, row_count)


def fault_plans(workload) -> dict[str, FaultPlan]:
    return {
        name: plan_for(workload.seed, index, len(relation.rows))
        for index, (name, relation) in enumerate(workload.relations.items())
    }


def csv_sources(workload, tmp_path, plans) -> dict[str, ResilientSource]:
    sources = {}
    for name, relation in workload.relations.items():
        path = str(tmp_path / f"{name}.csv")
        write_csv(path, relation)
        transport = CSVFileTransport(name, path, relation.schema)
        sources[name] = ResilientSource(InjectedTransport(transport, plans[name]))
    return sources


def sqlite_sources(workload, tmp_path, plans) -> dict[str, ResilientSource]:
    sources = {}
    for name, relation in workload.relations.items():
        path = str(tmp_path / f"{name}.db")
        query = write_sqlite(path, relation)
        transport = DBAPITransport(
            name, lambda path=path: sqlite3.connect(path), query, relation.schema
        )
        sources[name] = ResilientSource(InjectedTransport(transport, plans[name]))
    return sources


def http_sources(workload, server, plans) -> dict[str, ResilientSource]:
    sources = {}
    for name, relation in workload.relations.items():
        url = server.add_relation(name, relation, plans[name])
        transport = HTTPTransport(name, url, relation.schema)
        sources[name] = ResilientSource(transport)
    return sources


def oracle_multiset(workload):
    """The simulated-source oracle: local relations, simulated clock."""
    _report, observables = run_solo_corrective(
        workload, batch_size=64, sources=dict(workload.relations)
    )
    return observables.multiset


class NaiveSource(DataSource):
    """The kill-the-envelope control: one connect, faults read as EOF.

    This is exactly the bug the envelope exists to prevent — a transport
    error mid-stream is indistinguishable from a clean end of data, so
    every lossy fault silently truncates the relation.
    """

    def __init__(self, transport) -> None:
        super().__init__(transport.name, transport.schema)
        self.transport = transport

    def open_stream(self):
        try:
            reader = self.transport.open(0)
        except TransportError:
            return
        try:
            while True:
                chunk = reader.read_rows(64)
                if not chunk:
                    return
                for row in chunk:
                    yield row, 0.0
        except TransportError:
            return  # swallowed: rows silently lost
        finally:
            reader.close()


def plan_is_lossy(plan: FaultPlan, row_count: int) -> bool:
    """Does the plan guarantee the naive reader loses rows?"""
    if row_count == 0:
        return False
    if plan.connect_flaps > 0:
        return True  # naive never retries the connect: zero rows
    return any(fault.kind != DELAY for fault in plan.read_faults.values())


@pytest.mark.parametrize("seed", SEEDS)
def test_real_backends_match_the_simulated_oracle(seed, tmp_path):
    workload = generate_workload(seed)
    plans = fault_plans(workload)
    reference = Counter(reference_spja(workload.query, workload.relations))
    oracle = oracle_multiset(workload)
    assert oracle == reference, (
        f"seed {seed}: simulated oracle disagrees with the reference "
        f"evaluation on {workload.query.name}"
    )

    columns = {
        "csv": csv_sources(workload, tmp_path, plans),
        "sqlite": sqlite_sources(workload, tmp_path, plans),
    }
    with FixtureServer() as server:
        columns["http"] = http_sources(workload, server, plans)
        for label, sources in columns.items():
            _report, observables = run_solo_corrective(
                workload, batch_size=64, sources=sources
            )
            assert observables.multiset == oracle, (
                f"seed {seed}: faulted {label} backend disagrees with the "
                f"simulated oracle on {workload.query.name} (plans: "
                + "; ".join(
                    f"{name}={plan.describe()}" for name, plan in plans.items()
                )
            )


def test_the_suite_actually_injects_every_lossy_fault_kind():
    """The 20 seeds must cover resets, outages and truncations."""
    kinds = set()
    flaps = 0
    for seed in SEEDS:
        workload = generate_workload(seed)
        for plan in fault_plans(workload).values():
            kinds.update(fault.kind for fault in plan.read_faults.values())
            flaps += plan.connect_flaps
    assert {"reset", "outage", "truncate"} <= kinds, kinds
    assert flaps > 0


def test_killed_envelope_loses_rows_on_every_lossy_plan(tmp_path):
    """Control: the same faults without the envelope mean silent row loss."""
    lossy_seeds = 0
    for seed in SEEDS:
        workload = generate_workload(seed)
        for index, (name, relation) in enumerate(workload.relations.items()):
            plan = plan_for(seed, index, len(relation.rows))
            path = str(tmp_path / f"{seed}_{name}.csv")
            write_csv(path, relation)
            transport = InjectedTransport(
                CSVFileTransport(name, path, relation.schema), plan
            )
            delivered = [row for row, _t in NaiveSource(transport).open_stream()]
            if plan_is_lossy(plan, len(relation.rows)):
                lossy_seeds += 1
                assert len(delivered) < len(relation.rows), (
                    f"seed {seed} {name}: naive reader should have lost rows "
                    f"under {plan.describe()}"
                )
            else:
                assert delivered == relation.rows
    assert lossy_seeds >= 5, "the seeded plans barely exercise lossy faults"


def test_killed_envelope_breaks_the_engine_differential(tmp_path):
    """Control at engine level: naive sources disagree with the oracle."""
    from repro.io.faults import RESET, Fault

    for seed in SEEDS:
        workload = generate_workload(seed)
        # Inject a guaranteed mid-stream reset into the largest relation —
        # the workload must actually produce rows, or losing input cannot
        # change the (empty) answer.
        victim = max(workload.relations, key=lambda n: len(workload.relations[n].rows))
        if len(workload.relations[victim].rows) >= 4 and reference_spja(
            workload.query, workload.relations
        ):
            break
    else:  # pragma: no cover - the seeded workloads always produce answers
        pytest.skip("no workload with a non-empty answer")
    cut = 1  # lose all but the first row of the victim relation
    sources: dict[str, object] = dict(workload.relations)
    path = str(tmp_path / f"{victim}.csv")
    write_csv(path, workload.relations[victim])
    sources[victim] = NaiveSource(
        InjectedTransport(
            CSVFileTransport(victim, path, workload.relations[victim].schema),
            FaultPlan({cut: Fault(kind=RESET, offset=cut)}),
        )
    )
    oracle = oracle_multiset(workload)
    _report, observables = run_solo_corrective(workload, batch_size=64, sources=sources)
    assert observables.multiset != oracle, (
        "the naive reader swallowed a mid-stream reset yet the answers "
        "still matched — the differential suite has no teeth"
    )


class PrefixThenOutageTransport(CSVFileTransport):
    """Serves rows normally, but connects fail ``outage_connects`` times
    once ``fail_after`` rows have been served — a collapsed primary."""

    def __init__(self, name, path, schema, fail_after: int, outage_connects: int = 6):
        super().__init__(name, path, schema)
        self.fail_after = fail_after
        self.outage_connects = outage_connects
        self.served = 0

    def open(self, offset):
        if offset >= self.fail_after and self.outage_connects > 0:
            self.outage_connects -= 1
            raise ConnectError(f"{self.name}: primary collapsed")
        reader = super().open(offset)
        if offset < self.fail_after:
            # Cut the stream at the collapse point: deliver the healthy
            # prefix, then the next reconnect hits the outage above.
            inner_rows = reader.read_rows(self.fail_after - offset)

            class PrefixReader:
                def __init__(self_inner):
                    self_inner._rows = inner_rows
                    self_inner._done = False

                def read_rows(self_inner, max_rows):
                    if self_inner._rows:
                        chunk = self_inner._rows[:max_rows]
                        self_inner._rows = self_inner._rows[max_rows:]
                        return chunk
                    if self_inner._done:
                        return []
                    self_inner._done = True
                    raise ConnectError("primary collapsed mid-stream")

                def close(self_inner):
                    pass

            reader.close()
            return PrefixReader()
        return reader


def test_mirror_failover_across_envelopes(tmp_path):
    """A collapsed primary envelope fails over to its mirror envelope and
    the stitched answers still match the simulated oracle."""
    workload = generate_workload(3)
    reference = Counter(reference_spja(workload.query, workload.relations))
    promised = 4000.0

    catalog = Catalog()
    sources: dict[str, object] = {}
    for name, relation in workload.relations.items():
        path = str(tmp_path / f"{name}.csv")
        write_csv(path, relation)
        primary = ResilientSource(
            PrefixThenOutageTransport(
                name, path, relation.schema, fail_after=max(len(relation.rows) // 3, 1)
            ),
            promised_rate=promised,
        )
        mirror = ResilientSource(
            CSVFileTransport(name, path, relation.schema),
            promised_rate=promised,
        )
        primary.register_mirror(mirror)
        sources[name] = primary
        catalog.register(
            name, relation.schema, TableStatistics(promised_rate=promised)
        )

    report, observables = run_solo_corrective(
        workload,
        batch_size=64,
        catalog=catalog,
        sources=sources,
        failover_adaptive=True,
        failover_stall_seconds=0.005,
    )
    assert observables.multiset == reference, (
        "mirror failover across resilience envelopes changed the answers"
    )
    failovers = report.details.get("adaptation", {}).get("failovers", [])
    assert failovers, "the collapsed primary never failed over to its mirror"
