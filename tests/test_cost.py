"""Tests for work-unit accounting and the simulated clock."""

import pytest

from repro.engine.cost import CostModel, ExecutionMetrics, SimulatedClock, WorkProfile


class TestExecutionMetrics:
    def test_work_uses_weights(self):
        metrics = ExecutionMetrics(hash_inserts=10, comparisons=4)
        model = CostModel(hash_insert=2.0, comparison=0.5)
        assert metrics.work(model) == pytest.approx(10 * 2.0 + 4 * 0.5)

    def test_work_default_model(self):
        metrics = ExecutionMetrics(tuples_read=3)
        assert metrics.work() == pytest.approx(3 * CostModel().tuple_read)

    def test_snapshot_is_independent(self):
        metrics = ExecutionMetrics(hash_probes=1)
        snap = metrics.snapshot()
        metrics.hash_probes += 5
        assert snap.hash_probes == 1

    def test_delta_since(self):
        metrics = ExecutionMetrics(tuples_read=10, hash_inserts=2)
        earlier = ExecutionMetrics(tuples_read=4)
        delta = metrics.delta_since(earlier)
        assert delta.tuples_read == 6
        assert delta.hash_inserts == 2

    def test_merge_adds_counters(self):
        a = ExecutionMetrics(tuples_read=1)
        b = ExecutionMetrics(tuples_read=2, comparisons=3)
        a.merge(b)
        assert a.tuples_read == 3 and a.comparisons == 3

    def test_as_dict_round_trip(self):
        metrics = ExecutionMetrics(tuple_copies=7)
        assert ExecutionMetrics(**metrics.as_dict()) == metrics


class TestSimulatedClock:
    def test_charge_advances_cpu_time(self):
        clock = SimulatedClock(CostModel(seconds_per_unit=0.001))
        clock.charge(100)
        assert clock.now == pytest.approx(0.1)
        assert clock.cpu_time == pytest.approx(0.1)
        assert clock.wait_time == 0.0

    def test_wait_until_future(self):
        clock = SimulatedClock()
        stalled = clock.wait_until(1.5)
        assert stalled == pytest.approx(1.5)
        assert clock.now == pytest.approx(1.5)
        assert clock.wait_time == pytest.approx(1.5)

    def test_wait_until_past_is_noop(self):
        clock = SimulatedClock()
        clock.charge(10_000)
        before = clock.now
        assert clock.wait_until(before / 2) == 0.0
        assert clock.now == before

    def test_charge_metrics(self):
        model = CostModel(seconds_per_unit=1.0)
        clock = SimulatedClock(model)
        clock.charge_metrics(ExecutionMetrics(tuples_read=2))
        assert clock.now == pytest.approx(2 * model.tuple_read)

    def test_snapshot(self):
        clock = SimulatedClock()
        clock.charge(1)
        snap = clock.snapshot()
        assert set(snap) == {"now", "cpu_time", "wait_time"}


class TestWorkProfile:
    def test_add_and_total(self):
        profile = WorkProfile()
        profile.add("merge", 10)
        profile.add("merge", 5)
        profile.add("hash")
        assert profile.get("merge") == 15
        assert profile.get("hash") == 1
        assert profile.get("stitch") == 0
        assert profile.total() == 16
        assert profile.as_dict() == {"merge": 15, "hash": 1}
