"""End-to-end scenarios combining several subsystems at once."""

import pytest

from helpers import assert_same_aggregates, assert_same_bag, reference_spja
from repro.baselines.static_executor import StaticExecutor
from repro.core.corrective import CorrectiveQueryProcessor
from repro.integration.system import AdaptiveIntegrationSystem
from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.description import MappedSource, SourceDescription
from repro.sources.network import BurstyNetworkModel
from repro.sources.remote import RemoteSource
from repro.workloads.perturb import reorder_fraction
from repro.workloads.queries import query_3a, query_10a


class TestMappedSources:
    def test_mapped_source_streams_global_schema(self, tiny_tpch):
        crm_schema = Schema.from_names(
            ["customer_id", "display_name", "country_id", "segment", "balance", "phone"],
            relation="crm",
        )
        crm = Relation("crm", crm_schema, [tuple(r) for r in tiny_tpch.customer.rows])
        description = SourceDescription(
            "crm",
            "customer",
            attribute_mapping={
                "customer_id": "c_custkey",
                "display_name": "c_name",
                "country_id": "c_nationkey",
                "segment": "c_mktsegment",
                "balance": "c_acctbal",
                "phone": "c_phone",
            },
        )
        mapped = MappedSource(crm, description)
        assert mapped.schema.names == tiny_tpch.customer.schema.names
        rows = [row for row, _arrival in mapped.open_stream()]
        assert rows == tiny_tpch.customer.rows
        assert mapped.to_relation().rows == tiny_tpch.customer.rows

    def test_query_through_mapped_source_matches_direct(self, tiny_tpch):
        crm_schema = Schema.from_names(
            ["customer_id", "display_name", "country_id", "segment", "balance", "phone"],
            relation="crm",
        )
        crm = Relation("crm", crm_schema, [tuple(r) for r in tiny_tpch.customer.rows])
        description = SourceDescription(
            "crm",
            "customer",
            attribute_mapping={
                "customer_id": "c_custkey",
                "display_name": "c_name",
                "country_id": "c_nationkey",
                "segment": "c_mktsegment",
                "balance": "c_acctbal",
                "phone": "c_phone",
            },
        )
        system = AdaptiveIntegrationSystem()
        system.register_source(crm, description=description)
        for name, relation in tiny_tpch.relations.items():
            if name != "customer":
                system.register_source(relation)
        answer = system.execute(query_3a(), strategy="corrective")
        expected = reference_spja(query_3a(), tiny_tpch.as_sources())
        assert_same_aggregates(answer.rows, expected)


class TestHeterogeneousFederation:
    def test_mixed_local_and_remote_sources_with_perturbed_order(self, tiny_tpch):
        """Remote bursty lineitem, perturbed order, skew-free — everything still agrees."""
        perturbed_lineitem = reorder_fraction(tiny_tpch.lineitem, 0.05, seed=3)
        sources = dict(tiny_tpch.as_sources())
        sources["lineitem"] = RemoteSource(
            perturbed_lineitem,
            BurstyNetworkModel(
                burst_rate=80_000, mean_burst_tuples=500, mean_gap_seconds=0.01, seed=4
            ),
        )
        catalog = tiny_tpch.catalog(with_cardinalities=False)
        report = CorrectiveQueryProcessor(
            catalog, sources, polling_interval_seconds=0.1
        ).execute(query_10a())
        expected = reference_spja(query_10a(), tiny_tpch.as_sources())
        assert_same_aggregates(report.rows, expected)


class TestAdHocQueries:
    def test_multi_aggregate_query(self, tiny_tpch):
        query = SPJAQuery(
            name="multi_agg",
            relations=("customer", "orders"),
            join_predicates=(
                JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),
            ),
            selections={
                "customer": Comparison(
                    AttributeRef("c_mktsegment"), "=", Constant("BUILDING")
                )
            },
            aggregation=AggregateSpec(
                group_attributes=("c_nationkey",),
                aggregates=(
                    Aggregate("count", None, "orders_count"),
                    Aggregate("sum", "o_totalprice", "total_price"),
                    Aggregate("avg", "o_totalprice", "avg_price"),
                    Aggregate("max", "o_totalprice", "max_price"),
                ),
            ),
        )
        sources = tiny_tpch.as_sources()
        static = StaticExecutor(tiny_tpch.catalog(True), sources).execute(query)
        adaptive = CorrectiveQueryProcessor(
            tiny_tpch.catalog(False), sources, polling_interval_seconds=0.05
        ).execute(query)
        reference = reference_spja(query, sources)

        def keyed(rows):
            return {row[0]: row[1:] for row in rows}

        ref_map = keyed(reference)
        for produced in (keyed(static.rows), keyed(adaptive.rows)):
            assert set(produced) == set(ref_map)
            for key, values in ref_map.items():
                assert produced[key][0] == values[0]
                assert produced[key][1] == pytest.approx(values[1])
                assert produced[key][2] == pytest.approx(values[2])
                assert produced[key][3] == pytest.approx(values[3])

    def test_cyclic_join_graph_query(self, tiny_tpch):
        """Q5-style cycle (customer-supplier nation equality) on a smaller query."""
        query = SPJAQuery(
            name="cycle",
            relations=("customer", "orders", "lineitem", "supplier"),
            join_predicates=(
                JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),
                JoinPredicate("orders", "o_orderkey", "lineitem", "l_orderkey"),
                JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                JoinPredicate("customer", "c_nationkey", "supplier", "s_nationkey"),
            ),
            aggregation=AggregateSpec(
                group_attributes=("s_nationkey",),
                aggregates=(Aggregate("sum", "l_revenue", "revenue"),),
            ),
        )
        sources = tiny_tpch.as_sources()
        expected = reference_spja(query, sources)
        static = StaticExecutor(tiny_tpch.catalog(True), sources).execute(query)
        adaptive = CorrectiveQueryProcessor(
            tiny_tpch.catalog(False), sources, polling_interval_seconds=0.05
        ).execute(query)
        assert_same_aggregates(static.rows, expected)
        assert_same_aggregates(adaptive.rows, expected)

    def test_spj_projection_via_system(self, tiny_tpch):
        query = SPJAQuery(
            name="spj_proj",
            relations=("nation", "region"),
            join_predicates=(
                JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
            ),
            selections={
                "region": Comparison(AttributeRef("r_name"), "=", Constant("ASIA"))
            },
        )
        system = AdaptiveIntegrationSystem()
        system.register_sources(tiny_tpch.relations.values())
        answer = system.execute(query, strategy="static")
        expected = reference_spja(query, tiny_tpch.as_sources())
        assert_same_bag(answer.rows, expected)
        assert len(answer.rows) == 5  # five nations per region
