"""Differential suite for mirror failover.

The contract is the resilience suite's hardest promise: re-pointing a
running cursor from a mid-outage primary at a mirror's resumed stream —
partial primary read stitched to the mirror's remainder — must be invisible
in the answers.  Over seeded random workloads whose sources all collapse
into a sustained outage (each with a healthy registered mirror), corrective
execution with ``failover_adaptive=True`` must produce the identical result
multiset as the no-failover configuration and the brute-force oracle, in
tuple mode, batched mode, and under serving.  A population meta-test pins
that the suite actually exercises failovers (the per-seed assertions hold
trivially if the outage detector never fires).
"""

from __future__ import annotations

from collections import Counter

import pytest

from differential import (
    POLL_STEP_LIMIT,
    POLLING_INTERVAL,
    _bad_initial_tree,
    _canonical_multiset,
    _canonical_names,
    assert_mirror_differential_case,
    generate_workload,
    mirror_outage_setup,
    run_mirror_differential_case,
)
from helpers import reference_spja

from repro.relational.catalog import Catalog
from repro.serving.server import QueryServer

MIRROR_SEEDS = tuple(range(1000, 1025))

_CASE_CACHE: dict[int, object] = {}


def _case(seed: int):
    if seed not in _CASE_CACHE:
        _CASE_CACHE[seed] = run_mirror_differential_case(seed)
    return _CASE_CACHE[seed]


@pytest.mark.parametrize("seed", MIRROR_SEEDS)
def test_mirror_failover_answers_identical(seed):
    assert_mirror_differential_case(_case(seed))


def test_mirror_population_exercises_failover():
    """Meta-test: the seed population actually triggers mirror failovers.

    If the outage detector (or the mirror plumbing) silently stopped firing,
    every per-seed assertion above would still pass — static == failover ==
    oracle holds trivially when no cursor is ever re-pointed.  This guard
    fails instead, and additionally pins that failover helps: among the
    cases that failed over, completion time must never regress and must
    strictly improve for most (the mirror delivers what the dead primary
    would have trickled out over tens of seconds).
    """
    cases = [_case(seed) for seed in MIRROR_SEEDS]
    failed_over = [case for case in cases if case.failovers > 0]
    assert len(failed_over) >= 10, (
        f"only {len(failed_over)}/{len(cases)} seeds exercised a failover"
    )
    total = sum(case.failovers for case in cases)
    assert total >= len(failed_over), "failover counts are inconsistent"
    faster = [
        case
        for case in failed_over
        if case.failover.simulated_seconds < case.static.simulated_seconds
    ]
    assert len(faster) >= max(len(failed_over) // 2, 1), (
        "mirror failover rarely improved completion time"
    )


@pytest.mark.parametrize("seed", MIRROR_SEEDS[:6])
def test_mirror_failover_tuple_mode_answers_identical(seed):
    result = run_mirror_differential_case(seed, batch_size=None)
    assert_mirror_differential_case(result)


@pytest.mark.parametrize("policy", ["round_robin", "shortest_remaining_cost"])
def test_mirror_failover_serving_answers_identical(policy):
    """Served failover-adaptive sessions still answer exactly like the oracle."""
    seeds = (1000, 1002, 1003)
    workloads = [
        generate_workload(seed, name_prefix=f"m{index}_")
        for index, seed in enumerate(seeds)
    ]
    references = [
        Counter(reference_spja(workload.query, workload.relations))
        for workload in workloads
    ]
    catalog = Catalog()
    sources: dict[str, object] = {}
    for workload in workloads:
        sub_catalog, sub_sources = mirror_outage_setup(workload)
        for name in workload.relations:
            catalog.register(
                name, sub_catalog.schema(name), sub_catalog.statistics(name)
            )
        sources.update(sub_sources)
    server = QueryServer(
        catalog,
        sources,
        policy=policy,
        batch_size=64,
        quantum_tuples=POLL_STEP_LIMIT,
        polling_interval_seconds=POLLING_INTERVAL,
        failover_adaptive=True,
        failover_stall_seconds=0.005,
    )
    for workload in workloads:
        server.submit(
            workload.query,
            initial_tree=_bad_initial_tree(workload),
            label=workload.query.name,
        )
    report = server.run()
    assert len(report.served) == len(workloads)
    served_failovers = 0
    for served, workload, reference in zip(report.served, workloads, references):
        assert served.query_name == workload.query.name
        assert (
            _canonical_multiset(
                served.rows,
                served.report.schema.names,
                _canonical_names(workload),
            )
            == reference
        ), (
            f"policy {policy!r}: served failover-adaptive query "
            f"{workload.query.name} disagrees with the oracle"
        )
        served_failovers += len(
            served.report.details.get("adaptation", {}).get("failovers", [])
        )
    assert served_failovers >= 1, (
        f"policy {policy!r}: no served session exercised a mirror failover"
    )
