"""Differential tests for the compiled fused-pipeline engine.

The compiled engine's contract is stronger than "same answers": it must be
**bit-identical** to the interpreted batched engine — result multisets,
every :class:`~repro.engine.cost.ExecutionMetrics` counter, simulated
seconds (on local *and* remote sources: the compiled engine preserves the
interpreted engine's clock-charge granularity, so even float summation
order coincides) and corrective phase counts.  Two scenarios:

* **solo corrective** — every seeded workload runs corrective query
  processing from the same deliberately bad initial plan with both engines;
* **served N=4** — the workloads are served four at a time on one shared
  clock under both scheduling policies; schedulers must make identical
  decisions, so each served query (and the whole run's makespan) replays
  exactly.

A population meta-test keeps the generator honest: the seed range must
exercise multi-phase recoveries (stitch-up + per-phase recompilation),
remote sources, aggregations and selections, so "everything matched" is
meaningful.
"""

from __future__ import annotations

import pytest

from differential import (
    assert_compiled_differential_case,
    assert_compiled_serving_differential_case,
    run_compiled_differential_case,
    run_compiled_serving_differential_case,
)

#: ≥ 40 seeded workloads (issue-mandated floor).
COMPILED_SEEDS = range(40)

_CASE_CACHE: dict[int, object] = {}


def _case(seed: int):
    result = _CASE_CACHE.get(seed)
    if result is None:
        result = _CASE_CACHE[seed] = run_compiled_differential_case(seed)
    return result

#: The same seeds served four at a time, alternating scheduling policies.
SERVED_GROUPS = [
    (tuple(range(start, start + 4)), policy)
    for start, policy in zip(
        range(0, 40, 4),
        ("round_robin", "shortest_remaining_cost") * 5,
    )
]


@pytest.mark.parametrize("seed", COMPILED_SEEDS)
def test_compiled_solo_corrective_is_bit_identical(seed):
    assert_compiled_differential_case(_case(seed))


@pytest.mark.parametrize("seed", COMPILED_SEEDS[:10])
def test_compiled_solo_corrective_is_bit_identical_at_small_batch(seed):
    """Batch 7 exercises ragged chunk boundaries in the compiled driver."""
    result = run_compiled_differential_case(seed, batch_size=7)
    assert_compiled_differential_case(result)


@pytest.mark.parametrize("seeds,policy", SERVED_GROUPS)
def test_compiled_serving_replays_interpreted_serving(seeds, policy):
    result = run_compiled_serving_differential_case(
        seeds, policy=policy, batch_size=64
    )
    assert_compiled_serving_differential_case(result)


def test_compiled_seed_population_is_representative():
    """The seed range must cover the paths the equivalence claim leans on."""
    results = [_case(seed) for seed in COMPILED_SEEDS]
    multiphase = sum(1 for r in results if r.interpreted.phases > 1)
    remote = sum(1 for r in results if r.workload.remote)
    aggregated = sum(
        1 for r in results if r.workload.query.aggregation is not None
    )
    selective = sum(1 for r in results if r.workload.query.selections)
    multi_join = sum(
        1 for r in results if len(r.workload.query.relations) >= 3
    )
    assert multiphase >= 8, f"only {multiphase} multi-phase workloads"
    assert remote >= 4, f"only {remote} remote workloads"
    assert aggregated >= 8, f"only {aggregated} aggregation workloads"
    assert selective >= 8, f"only {selective} workloads with selections"
    assert multi_join >= 10, f"only {multi_join} multi-join workloads"
