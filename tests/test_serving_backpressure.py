"""Admission backpressure and rate-seeded plan choice under serving.

Three behavioral contracts on the resilience suite's serving side:

* **Deadlock guard** — a session deferred by admission backpressure must
  never hold the only runnable slot: the moment nothing else is active it
  is force-admitted, so an all-flaky pool still completes (satellite
  starvation coverage for the backpressure path).
* **p95 under a flaky pool** — deferring a collapsed-source session keeps
  serving quanta with the healthy sessions, improving the pool's p95
  admission-to-completion latency without changing a single answer.
* **Rate-seeded initial plans** — with ``rate_seeded_plans=True`` the
  optimizer consults the stats cache's rate outlook at plan time, so a
  repeat query over a known-slow source *starts* on a gating tree instead
  of discovering the collapse mid-flight.
"""

from __future__ import annotations

from collections import Counter

import pytest

from helpers import assert_same_bag, reference_spja

from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.expressions import JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving.server import QueryServer
from repro.sources.network import ConstantRateNetworkModel, PhasedRateNetworkModel
from repro.sources.remote import RemoteSource


def _relation(name: str, rows: int, width: int = 7, seed: int = 3) -> Relation:
    import random

    rng = random.Random(seed + rows)
    schema = Schema.from_names([f"{name}_k", f"{name}_v"], relation=name)
    return Relation(
        name, schema, [(i % width, rng.randrange(100)) for i in range(rows)]
    )


def _flaky_source(
    relation: Relation,
    promised_rate: float = 4000.0,
    burst_seconds: float = 0.001,
    trickle_seconds: float = 0.5,
    trickle_rate: float = 2.0,
) -> RemoteSource:
    """A source that bursts briefly, collapses, then recovers."""
    return RemoteSource(
        relation,
        PhasedRateNetworkModel(
            [(burst_seconds, promised_rate), (trickle_seconds, trickle_rate)],
            tail_rate=promised_rate,
            latency=0.0,
        ),
        promised_rate=promised_rate,
    )


def _healthy_source(relation: Relation, rate: float = 5000.0) -> RemoteSource:
    return RemoteSource(
        relation,
        ConstantRateNetworkModel(tuples_per_second=rate, latency=0.001),
        promised_rate=rate,
    )


def _scan(name: str) -> SPJAQuery:
    return SPJAQuery(f"q_{name}", (name,), ())


def _canonical(rows, schema_names, query: SPJAQuery, relations) -> Counter:
    """Multiset of ``rows`` permuted into reference column order.

    Join outputs lay columns out per the executed tree; permuting by the
    globally-unique attribute names makes multisets from different trees
    (and the brute-force oracle) directly comparable.
    """
    canonical: list[str] = []
    for name in query.relations:
        canonical.extend(relations[name].schema.names)
    positions = [tuple(schema_names).index(name) for name in canonical]
    return Counter(tuple(row[p] for p in positions) for row in rows)


class TestDeadlockGuard:
    def test_deferred_session_never_holds_the_only_runnable_slot(self):
        """An all-flaky pool under backpressure must still complete.

        The only session reads a collapsed source, so its admission check
        always says "defer" — but with nothing else runnable, holding it
        back buys nothing.  The serving loop must force-admit it instead of
        spinning (or waiting for a past admit time), and the session must
        finish with exactly its source's rows.
        """
        relation = _relation("f", rows=40)
        catalog = Catalog()
        catalog.register(relation.name, relation.schema)
        server = QueryServer(
            catalog,
            {relation.name: _flaky_source(relation)},
            policy="round_robin",
            quantum_tuples=16,
            admission_backpressure=True,
        )
        query = _scan(relation.name)
        # Admitted after the collapse so the telemetry sample exists.
        server.submit(query, admit_at=0.02, label="flaky")
        report = server.run()

        assert report.backpressure_deferred == ["flaky"], (
            "the collapsed-source session was never deferred — the guard "
            "was not exercised"
        )
        assert len(report.served) == 1
        (served,) = report.served
        assert served.quanta >= 1
        assert_same_bag(served.rows, reference_spja(query, {"f": relation}))

    @pytest.mark.parametrize("policy", ["round_robin", "shortest_remaining_cost"])
    def test_flaky_session_defers_behind_healthy_pool_then_completes(self, policy):
        """Mixed pool: the flaky session waits, healthy ones run, all finish."""
        catalog = Catalog()
        sources: dict[str, object] = {}
        relations: dict[str, Relation] = {}
        queries = []
        for index in range(3):
            name = f"h{index}"
            relation = _relation(name, rows=40, seed=index)
            relations[name] = relation
            sources[name] = _healthy_source(relation)
            catalog.register(name, relation.schema)
            queries.append(_scan(name))
        flaky_relation = _relation("f", rows=40)
        relations["f"] = flaky_relation
        sources["f"] = _flaky_source(flaky_relation)
        catalog.register("f", flaky_relation.schema)
        flaky_query = _scan("f")

        server = QueryServer(
            catalog,
            sources,
            policy=policy,
            quantum_tuples=16,
            admission_backpressure=True,
        )
        for query in queries:
            server.submit(query, admit_at=0.0, label=query.name)
        server.submit(flaky_query, admit_at=0.01, label="q_f")
        report = server.run()

        assert "q_f" in report.backpressure_deferred
        assert len(report.served) == len(queries) + 1
        by_label = {served.label: served for served in report.served}
        for query in queries + [flaky_query]:
            served = by_label[query.name]
            assert_same_bag(served.rows, reference_spja(query, relations))
        # The deferred session ran after the healthy pool drained.
        flaky_finish = by_label["q_f"].finished_at
        assert all(
            by_label[query.name].finished_at <= flaky_finish for query in queries
        )


class TestBackpressureP95:
    HEALTHY_SESSIONS = 20

    def _pool(self):
        """20 healthy scan sessions plus one join over a collapsed source.

        The flaky join's healthy side is large, so without backpressure its
        hash-build work charges the shared clock interleaved with every
        healthy session.  Nearest-rank p95 over 21 latencies is the worst
        *healthy* latency — exactly what deferral protects.
        """
        catalog = Catalog()
        sources: dict[str, object] = {}
        relations: dict[str, Relation] = {}
        for index in range(4):
            name = f"h{index}"
            relation = _relation(name, rows=40, seed=index)
            relations[name] = relation
            sources[name] = _healthy_source(relation)
            catalog.register(name, relation.schema)
        flaky = _relation("f", rows=48, width=5)
        big = _relation("g", rows=400, width=5, seed=9)
        relations["f"] = flaky
        relations["g"] = big
        sources["f"] = _flaky_source(
            flaky, trickle_seconds=30.0, trickle_rate=1.5
        )
        sources["g"] = _healthy_source(big, rate=20000.0)
        catalog.register("f", flaky.schema)
        catalog.register("g", big.schema)
        healthy_queries = [
            SPJAQuery(f"scan_{index}", (f"h{index % 4}",), ())
            for index in range(self.HEALTHY_SESSIONS)
        ]
        flaky_query = SPJAQuery(
            "flaky_join",
            ("f", "g"),
            (JoinPredicate("f", "f_k", "g", "g_k"),),
        )
        return catalog, sources, relations, healthy_queries, flaky_query

    def _run(self, backpressure: bool):
        catalog, sources, relations, healthy_queries, flaky_query = self._pool()
        server = QueryServer(
            catalog,
            sources,
            policy="round_robin",
            quantum_tuples=16,
            admission_backpressure=backpressure,
        )
        for query in healthy_queries:
            server.submit(query, admit_at=0.0, label=query.name)
        server.submit(flaky_query, admit_at=0.004, label=flaky_query.name)
        report = server.run()
        by_name = {query.name: query for query in healthy_queries}
        by_name[flaky_query.name] = flaky_query
        answers = {
            served.label: _canonical(
                served.rows,
                served.schema.names,
                by_name[served.label],
                relations,
            )
            for served in report.served
        }
        return report, answers, relations, healthy_queries, flaky_query

    def test_backpressure_improves_p95_without_changing_answers(self):
        baseline, base_answers, relations, healthy, flaky_query = self._run(False)
        deferred, defer_answers, _, _, _ = self._run(True)

        assert baseline.backpressure_deferred == []
        assert deferred.backpressure_deferred == [flaky_query.name]
        assert len(baseline.served) == len(deferred.served) == len(healthy) + 1

        # Answers are pinned: every session returns the same multiset under
        # both configurations, and matches the brute-force oracle.
        assert base_answers == defer_answers
        for query in healthy + [flaky_query]:
            reference = Counter(map(tuple, reference_spja(query, relations)))
            assert base_answers[query.name] == reference, query.name

        # Keeping quanta with the healthy pool improves its tail latency.
        p95_off = baseline.latency_percentile(0.95)
        p95_on = deferred.latency_percentile(0.95)
        assert p95_on < p95_off, (
            f"backpressure did not improve p95: {p95_on:.4f}s (on) vs "
            f"{p95_off:.4f}s (off)"
        )


class TestRateSeededPlans:
    def _pool(self):
        flaky = Relation(
            "f",
            Schema.from_names(["f_k", "f_v"], relation="f"),
            [(i, i * 3) for i in range(24)],
        )
        h1 = Relation(
            "h1",
            Schema.from_names(["h1_k", "h1_j"], relation="h1"),
            [(i % 24, i % 7) for i in range(120)],
        )
        h2 = Relation(
            "h2",
            Schema.from_names(["h2_j", "h2_v"], relation="h2"),
            [(i % 7, i) for i in range(120)],
        )
        catalog = Catalog()
        catalog.register(
            "f",
            flaky.schema,
            TableStatistics(cardinality=24, promised_rate=2000.0),
        )
        catalog.register("h1", h1.schema, TableStatistics(cardinality=120))
        catalog.register("h2", h2.schema, TableStatistics(cardinality=120))
        sources = {
            "f": _flaky_source(
                flaky,
                promised_rate=2000.0,
                trickle_seconds=30.0,
                trickle_rate=1.0,
            ),
            "h1": _healthy_source(h1, rate=50000.0),
            "h2": _healthy_source(h2, rate=50000.0),
        }
        relations = {"f": flaky, "h1": h1, "h2": h2}
        query_shape = (
            ("f", "h1", "h2"),
            (
                JoinPredicate("f", "f_k", "h1", "h1_k"),
                JoinPredicate("h1", "h1_j", "h2", "h2_j"),
            ),
        )
        return catalog, sources, relations, query_shape

    def test_repeat_query_over_a_known_slow_source_starts_gated(self):
        """The second identical query must *begin* on a gating tree.

        The first session samples the flaky source's delivery into the
        shared stats cache; by the time the repeat arrives the cache's rate
        outlook flags ``f`` as collapsed, and the optimizer's rate-aware
        plan choice gates it — ``f`` joins last, on top — from phase 0,
        with answers identical to the oracle.
        """
        catalog, sources, relations, (names, predicates) = self._pool()
        server = QueryServer(
            catalog,
            sources,
            policy="round_robin",
            quantum_tuples=32,
            rate_seeded_plans=True,
        )
        first = SPJAQuery("repeat_0", names, predicates)
        second = SPJAQuery("repeat_1", names, predicates)
        server.submit(first, admit_at=0.0, label="first")
        server.submit(second, admit_at=0.05, label="second")
        report = server.run()

        assert len(report.served) == 2
        by_label = {served.label: served for served in report.served}
        reference = Counter(map(tuple, reference_spja(first, relations)))
        for label in ("first", "second"):
            served = by_label[label]
            assert (
                _canonical(served.rows, served.schema.names, first, relations)
                == reference
            ), label

        # Cold cache: the first session starts on the work-optimal tree,
        # which joins the tiny ``f`` early (not gated on top).
        first_tree = by_label["first"].report.phases[0].join_tree
        assert not (
            first_tree.right.is_leaf and first_tree.right.relation == "f"
        ), "the cold-start tree already gated f — the comparison is vacuous"

        # Warm cache: the repeat starts gated — ``f`` is the top-level
        # right leaf, so everything else proceeds while f trickles.
        second_tree = by_label["second"].report.phases[0].join_tree
        assert second_tree.right.is_leaf and second_tree.right.relation == "f", (
            f"repeat query did not start gated: phase-0 tree is {second_tree}"
        )

    def test_rate_seeding_off_leaves_the_repeat_ungated(self):
        """Same pool, knob off: both sessions start on the same cold tree."""
        catalog, sources, relations, (names, predicates) = self._pool()
        server = QueryServer(
            catalog,
            sources,
            policy="round_robin",
            quantum_tuples=32,
            rate_seeded_plans=False,
        )
        server.submit(SPJAQuery("repeat_0", names, predicates), admit_at=0.0, label="first")
        server.submit(SPJAQuery("repeat_1", names, predicates), admit_at=0.05, label="second")
        report = server.run()
        by_label = {served.label: served for served in report.served}
        trees = {
            label: str(by_label[label].report.phases[0].join_tree)
            for label in ("first", "second")
        }
        assert trees["first"] == trees["second"]
        second_tree = by_label["second"].report.phases[0].join_tree
        assert not (
            second_tree.right.is_leaf and second_tree.right.relation == "f"
        )
