"""Property-based tests of the algebraic foundations of adaptive data partitioning.

Section 2.3 of the paper: a join over relations that are each split into
partitions equals the union of the joins of all partition combinations; the
matching-superscript combinations are what the phases compute and the rest is
the stitch-up expression.  These tests check that identity (and its
interaction with selection and aggregation) directly, independent of the
execution machinery, and then check that the corrective executor realizes it
end to end on randomly partitioned inputs.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_same_bag, reference_join, reference_spja, rows_as_multiset
from repro.relational.relation import Relation
from repro.relational.schema import Schema

R_SCHEMA = Schema.from_names(["rk", "rv"], relation="r")
S_SCHEMA = Schema.from_names(["s_rk", "sv"], relation="s")
T_SCHEMA = Schema.from_names(["t_sv", "tv"], relation="t")


def relation(name, schema, rows):
    return Relation(name, schema, rows)


def split_rows(rows, boundaries):
    """Split ``rows`` into len(boundaries)+1 contiguous partitions."""
    partitions = []
    start = 0
    for boundary in sorted(boundaries):
        boundary = min(boundary, len(rows))
        partitions.append(rows[start:boundary])
        start = boundary
    partitions.append(rows[start:])
    return partitions


rows_r = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 100)), max_size=40
)
rows_s = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 4)), max_size=40
)
rows_t = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 100)), max_size=40
)
cut = st.integers(min_value=0, max_value=40)


@settings(max_examples=60, deadline=None)
@given(r_rows=rows_r, s_rows=rows_s, r_cut=cut, s_cut=cut)
def test_property_two_way_partitioned_join_identity(r_rows, s_rows, r_cut, s_cut):
    """R ⋈ S == union over all partition combinations of R^i ⋈ S^j."""
    full = reference_join(
        relation("r", R_SCHEMA, r_rows), relation("s", S_SCHEMA, s_rows), "rk", "s_rk"
    )
    r_parts = split_rows(r_rows, [r_cut])
    s_parts = split_rows(s_rows, [s_cut])
    combined = []
    for r_part, s_part in itertools.product(r_parts, s_parts):
        combined.extend(
            reference_join(
                relation("r", R_SCHEMA, r_part),
                relation("s", S_SCHEMA, s_part),
                "rk",
                "s_rk",
            )
        )
    assert_same_bag(combined, full)


@settings(max_examples=40, deadline=None)
@given(r_rows=rows_r, s_rows=rows_s, t_rows=rows_t, r_cut=cut, s_cut=cut, t_cut=cut)
def test_property_three_way_phases_plus_stitchup_identity(
    r_rows, s_rows, t_rows, r_cut, s_cut, t_cut
):
    """Matching-superscript combinations plus the stitch-up set cover everything exactly."""

    def three_way(r_part, s_part, t_part):
        first = reference_join(
            relation("r", R_SCHEMA, r_part),
            relation("s", S_SCHEMA, s_part),
            "rk",
            "s_rk",
        )
        first_rel = Relation("rs", R_SCHEMA.concat(S_SCHEMA), first)
        return reference_join(
            first_rel, relation("t", T_SCHEMA, t_part), "sv", "t_sv"
        )

    full = three_way(r_rows, s_rows, t_rows)
    r_parts = split_rows(r_rows, [r_cut])
    s_parts = split_rows(s_rows, [s_cut])
    t_parts = split_rows(t_rows, [t_cut])

    phases = []  # matching superscripts
    stitchup = []  # everything else
    for i, j, k in itertools.product(range(len(r_parts)), repeat=3):
        result = three_way(r_parts[i], s_parts[j], t_parts[k])
        if i == j == k:
            phases.extend(result)
        else:
            stitchup.extend(result)
    assert rows_as_multiset(phases + stitchup) == rows_as_multiset(full)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(st.tuples(st.integers(0, 5), st.integers(-20, 20)), max_size=60),
    cut_a=st.integers(0, 60),
    cut_b=st.integers(0, 60),
)
def test_property_aggregation_distributes_over_partitions(rows, cut_a, cut_b):
    """sum/count/min/max grouped results are identical whether computed on the
    whole input or by coalescing per-partition partial aggregates."""
    from repro.engine.operators.aggregate import GroupAccumulator
    from repro.relational.expressions import Aggregate

    schema = Schema.from_names(["g", "v"])
    aggregates = [
        Aggregate("sum", "v", "total"),
        Aggregate("count", None, "n"),
        Aggregate("min", "v", "lo"),
        Aggregate("max", "v", "hi"),
    ]
    direct = GroupAccumulator(schema, ["g"], aggregates)
    direct.accumulate_many(rows)

    final = GroupAccumulator(
        Schema.from_names(["g", "total", "n", "lo", "hi"]),
        ["g"],
        aggregates,
        input_is_partial=True,
    )
    for part in split_rows(rows, sorted([cut_a, cut_b])):
        partial = GroupAccumulator(schema, ["g"], aggregates)
        partial.accumulate_many(part)
        final.accumulate_many(partial.results())

    assert sorted(final.results()) == sorted(direct.results())


@settings(max_examples=25, deadline=None)
@given(
    r_rows=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 50)), min_size=4, max_size=60),
    s_rows=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 8)), min_size=4, max_size=80),
    switch_step=st.integers(min_value=1, max_value=60),
)
def test_property_corrective_execution_matches_reference(r_rows, s_rows, switch_step):
    """End-to-end: an extremely eager corrective configuration (constant
    polling, permissive switch threshold, arbitrary poll granularity) never
    changes the answer of an SPJ query."""
    from repro.core.corrective import CorrectiveQueryProcessor
    from repro.relational.algebra import SPJAQuery
    from repro.relational.catalog import Catalog
    from repro.relational.expressions import JoinPredicate

    r = relation("r", R_SCHEMA, r_rows)
    s = relation("s", S_SCHEMA, s_rows)
    query = SPJAQuery(
        name="rs",
        relations=("r", "s"),
        join_predicates=(JoinPredicate("r", "rk", "s", "s_rk"),),
    )
    catalog = Catalog()
    catalog.register_relation(r)
    catalog.register_relation(s)
    sources = {"r": r, "s": s}
    # An extremely eager configuration: poll constantly with a permissive
    # threshold so switches (and hence stitch-up) happen whenever possible.
    processor = CorrectiveQueryProcessor(
        catalog,
        sources,
        polling_interval_seconds=1e-6,
        switch_threshold=1.0,
        max_phases=4,
    )
    report = processor.execute(query, poll_step_limit=switch_step)
    assert_same_bag(report.rows, reference_spja(query, sources))
