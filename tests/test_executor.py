"""Tests for the pull-based plan executor."""

import pytest

from helpers import assert_same_aggregates, assert_same_bag, reference_spja
from repro.engine.executor import PullExecutor
from repro.engine.operators.base import OperatorError
from repro.optimizer.plans import JoinTree, PhysicalPlan, PreAggPoint
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate
from repro.workloads.queries import query_3a, query_10


def po_query():
    return SPJAQuery(
        name="po",
        relations=("people", "simple_orders"),
        join_predicates=(JoinPredicate("people", "pid", "simple_orders", "o_pid"),),
    )


class TestPullExecutor:
    def test_spj_plan(self, people, simple_orders):
        sources = {"people": people, "simple_orders": simple_orders}
        query = po_query()
        plan = PhysicalPlan(query, JoinTree.left_deep(["people", "simple_orders"]))
        result = PullExecutor(sources).execute(plan)
        assert_same_bag(result.rows, reference_spja(query, sources))
        assert result.cardinality == 6
        assert result.work() > 0
        assert result.simulated_seconds > 0
        assert result.to_relation().cardinality == 6

    def test_projection_applied(self, people, simple_orders):
        sources = {"people": people, "simple_orders": simple_orders}
        query = SPJAQuery(
            name="po_proj",
            relations=("people", "simple_orders"),
            join_predicates=(JoinPredicate("people", "pid", "simple_orders", "o_pid"),),
            projection=("name", "amount"),
        )
        plan = PhysicalPlan(query, JoinTree.left_deep(["people", "simple_orders"]))
        result = PullExecutor(sources).execute(plan)
        assert result.schema.names == ("name", "amount")
        assert ("ada", 10.0) in result.rows

    def test_aggregation_query(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        query = query_3a()
        plan = PhysicalPlan(query, JoinTree.left_deep(["customer", "orders", "lineitem"]))
        result = PullExecutor(sources).execute(plan)
        assert_same_aggregates(result.rows, reference_spja(query, sources))

    def test_hybrid_hash_algorithm_option(self, people, simple_orders):
        sources = {"people": people, "simple_orders": simple_orders}
        query = po_query()
        plan = PhysicalPlan(
            query,
            JoinTree.left_deep(["people", "simple_orders"]),
            join_algorithm="hybrid_hash",
        )
        result = PullExecutor(sources).execute(plan)
        assert result.cardinality == 6

    def test_missing_source_raises(self, people):
        query = po_query()
        plan = PhysicalPlan(query, JoinTree.left_deep(["people", "simple_orders"]))
        with pytest.raises(OperatorError):
            PullExecutor({"people": people}).execute(plan)

    def test_plan_must_match_query_relations(self, people):
        query = po_query()
        with pytest.raises(Exception):
            PhysicalPlan(query, JoinTree.leaf("people"))

    def test_window_preaggregation_point(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        query = query_3a()
        tree = JoinTree.join(
            JoinTree.join(JoinTree.leaf("customer"), JoinTree.leaf("orders")),
            JoinTree.leaf("lineitem"),
        )
        plain = PullExecutor(sources).execute(PhysicalPlan(query, tree))
        with_preagg = PullExecutor(sources).execute(
            PhysicalPlan(
                query,
                tree,
                preagg_points=(
                    PreAggPoint(
                        below=frozenset({"lineitem"}),
                        mode="window",
                        group_attributes=("l_orderkey",),
                    ),
                ),
            )
        )
        assert_same_aggregates(with_preagg.rows, plain.rows)

    def test_pseudogroup_point_keeps_results_identical(self, tiny_tpch):
        sources = tiny_tpch.as_sources()
        query = query_10()
        tree = JoinTree.join(
            JoinTree.join(
                JoinTree.join(JoinTree.leaf("customer"), JoinTree.leaf("nation")),
                JoinTree.leaf("orders"),
            ),
            JoinTree.leaf("lineitem"),
        )
        plain = PullExecutor(sources).execute(PhysicalPlan(query, tree))
        pseudo = PullExecutor(sources).execute(
            PhysicalPlan(
                query,
                tree,
                preagg_points=(
                    PreAggPoint(
                        below=frozenset({"lineitem"}),
                        mode="pseudogroup",
                        group_attributes=("l_orderkey",),
                    ),
                ),
            )
        )
        assert_same_aggregates(pseudo.rows, plain.rows)
