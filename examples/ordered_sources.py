"""Exploiting order in the sources with complementary join pairs (Section 5).

Run with::

    python examples/ordered_sources.py

Two bulk-loaded relations (LINEITEM and ORDERS, both clustered on the order
key) are joined three ways — with a pipelined hash join, with a complementary
join pair using naive order routing, and with the priority-queue router — on
pristine data and on copies where 1 % and 10 % of the rows have been
displaced ("mostly sorted" data, Example 2.2).
"""

from __future__ import annotations

from repro.core.complementary import ComplementaryJoinPair, PipelinedHashJoinBaseline
from repro.experiments.common import format_table
from repro.workloads import TPCHGenerator, reorder_fraction


def main() -> None:
    print(__doc__)
    data = TPCHGenerator(scale_factor=0.002, zipf_z=0.0, seed=13).generate()
    print(
        f"joining lineitem ({len(data.lineitem)} tuples) with orders "
        f"({len(data.orders)} tuples) on the order key\n"
    )

    rows = []
    for fraction in (0.0, 0.01, 0.1):
        lineitem = reorder_fraction(data.lineitem, fraction, seed=21)
        orders = reorder_fraction(data.orders, fraction, seed=22)
        strategies = {
            "pipelined hash join": PipelinedHashJoinBaseline(
                lineitem, orders, "l_orderkey", "o_orderkey"
            ),
            "complementary (naive)": ComplementaryJoinPair(
                lineitem, orders, "l_orderkey", "o_orderkey"
            ),
            "complementary (priority queue)": ComplementaryJoinPair(
                lineitem,
                orders,
                "l_orderkey",
                "o_orderkey",
                use_priority_queue=True,
                queue_capacity=1024,
            ),
        }
        for label, runner in strategies.items():
            report = runner.execute()
            rows.append(
                {
                    "reordered": f"{fraction:.0%}",
                    "strategy": label,
                    "seconds": report.simulated_seconds,
                    "outputs": report.output_count,
                    "merge": report.outputs_by_component.get("merge", 0),
                    "hash": report.outputs_by_component.get("hash", 0),
                    "stitch": report.outputs_by_component.get("stitch", 0),
                }
            )

    print(format_table(rows))
    print(
        "\nReading the table: on fully sorted inputs everything flows through the\n"
        "merge join and the complementary pair wins; with 1% disorder the naive\n"
        "router collapses to the hash side while the priority queue repairs the\n"
        "disorder and keeps the advantage; by 10% the benefit has mostly gone."
    )


if __name__ == "__main__":
    main()
