"""Quickstart: register sources, pose an SPJA query, compare execution strategies.

Run with::

    python examples/quickstart.py

The example generates a small TPC-H-style database, registers its relations
as data sources with *no statistics* (the normal data integration situation),
and runs TPC-H query 3A three ways: statically optimized, with plan
partitioning, and with corrective query processing (adaptive data
partitioning).  All three return identical answers; the report shows how the
adaptive execution monitored and, when useful, corrected its plan.
"""

from __future__ import annotations

from repro import AdaptiveIntegrationSystem
from repro.experiments.common import format_table
from repro.workloads import TPCHGenerator, query_3a


def main() -> None:
    print(__doc__)

    # 1. Generate a small TPC-H-style database (deterministic).
    data = TPCHGenerator(scale_factor=0.002, zipf_z=0.0, seed=7).generate()
    print("Generated relations:")
    for name, relation in data.relations.items():
        print(f"  {name:10s} {len(relation):7d} tuples")

    # 2. Register every relation as a data source.  No statistics are passed:
    #    the optimizer starts from its default assumptions, exactly the
    #    situation adaptive query processing is designed for.
    system = AdaptiveIntegrationSystem()
    system.register_sources(data.relations.values())

    # 3. Pose the query (TPC-H Q3A: revenue per order for one market segment).
    query = query_3a()
    print()
    print(query.describe())
    print()

    # 4. Execute with each strategy and compare.
    rows = []
    answers = {}
    for strategy in ("static", "plan_partitioning", "corrective"):
        answer = system.execute(query, strategy=strategy)
        answers[strategy] = answer
        rows.append(
            {
                "strategy": strategy,
                "simulated_seconds": round(answer.simulated_seconds, 2),
                "answers": len(answer),
            }
        )
    print(format_table(rows))

    # 5. All strategies agree on the result.
    totals = {
        strategy: round(sum(row[-1] for row in answer.rows), 2)
        for strategy, answer in answers.items()
    }
    print(f"\ntotal revenue across all groups, per strategy: {totals}")
    assert len(set(totals.values())) == 1

    # 6. Inspect how the corrective execution behaved.
    report = answers["corrective"].report
    print(f"\ncorrective execution used {report.num_phases} phase(s):")
    for phase in report.phases:
        print(f"  {phase.describe()}")
    if report.stitchup is not None:
        print(f"  stitch-up: {report.stitchup.as_dict()}")

    # 7. Show the top answers.
    top = sorted(answers["corrective"].rows, key=lambda row: -row[-1])[:5]
    print("\ntop 5 groups by revenue (l_orderkey, o_orderdate, o_shippriority, revenue):")
    for row in top:
        print(f"  {row}")


if __name__ == "__main__":
    main()
