"""Adjustable-window pre-aggregation in action (Section 6).

Run with::

    python examples/preaggregation_demo.py

The example runs TPC-H query 10A (which joins the entire ORDERS table, so
there is real coalescing opportunity on LINEITEM) and query 5 (where the
pre-aggregation point offers almost no coalescing) with three plans: no
pre-aggregation, the adjustable-window operator, and a traditional blocking
pre-aggregate.  It then shows the window-size trajectory of the adaptive
operator on both friendly and hostile inputs.
"""

from __future__ import annotations

from repro.core.preaggregation import AdjustableWindowPreAggregate, WindowPolicy
from repro.engine.executor import PullExecutor
from repro.engine.operators.scan import Scan
from repro.experiments.common import format_table
from repro.optimizer.enumerator import Optimizer
from repro.relational.expressions import Aggregate
from repro.workloads import TPCHGenerator, query_5, query_10a


def compare_plans(data) -> None:
    catalog = data.catalog(with_cardinalities=True)
    optimizer = Optimizer(catalog)
    executor = PullExecutor(data.as_sources())
    rows = []
    for query in (query_10a(), query_5()):
        for label, mode in (
            ("single aggregation", None),
            ("adjustable window", "window"),
            ("traditional pre-agg", "traditional"),
        ):
            plan = optimizer.optimize(query, preaggregation=mode)
            result = executor.execute(plan)
            rows.append(
                {
                    "query": query.name,
                    "plan": label,
                    "preagg points": len(plan.preagg_points),
                    "seconds": result.simulated_seconds,
                    "groups": result.cardinality,
                }
            )
    print(format_table(rows))


def show_window_trajectory(data) -> None:
    aggregates = (Aggregate("sum", "l_revenue", "revenue"),)
    policy = WindowPolicy(initial_window=32)

    print("\nwindow trajectory, grouping lineitem by l_orderkey (coalesces ~4:1):")
    friendly = AdjustableWindowPreAggregate(
        Scan(data.lineitem), ("l_orderkey",), aggregates, policy=policy
    )
    friendly.run_to_completion()
    sizes = [decision.window_size for decision in friendly.window_decisions]
    print(f"  window sizes: {sizes[:12]}{' ...' if len(sizes) > 12 else ''}")
    print(f"  overall reduction: {friendly.overall_reduction:.2f} "
          f"(output/input), final window {friendly.current_window_size}")

    print("\nwindow trajectory, grouping lineitem by (l_orderkey, l_linenumber) "
          "(nothing coalesces):")
    hostile = AdjustableWindowPreAggregate(
        Scan(data.lineitem),
        ("l_orderkey", "l_linenumber"),
        aggregates,
        policy=WindowPolicy(initial_window=32),
    )
    hostile.run_to_completion()
    sizes = [decision.window_size for decision in hostile.window_decisions]
    print(f"  window sizes: {sizes[:12]}{' ...' if len(sizes) > 12 else ''}")
    print(f"  overall reduction: {hostile.overall_reduction:.2f}, "
          f"final window {hostile.current_window_size} (pass-through mode)")


def main() -> None:
    print(__doc__)
    data = TPCHGenerator(scale_factor=0.002, zipf_z=0.0, seed=17).generate()
    compare_plans(data)
    show_window_trajectory(data)


if __name__ == "__main__":
    main()
