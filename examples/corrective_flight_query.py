"""The paper's running example (Section 2 / Figure 1): flights, travelers, children.

Run with::

    python examples/corrective_flight_query.py

The query asks, per flight, for the largest number of children of any
traveler on that flight::

    Group[fid, origin] max(num) (F ⋈ T ⋈ C)

The example deliberately starts execution with the join order the paper's
optimizer initially chooses — ``F ⋈ (T ⋈ C)`` — which turns out to be poor
when travelers fly often.  Corrective query processing notices this from the
observed selectivities, switches to ``(F ⋈ T) ⋈ C`` in mid-flight, and runs a
stitch-up phase over the partitions the two plans consumed, exactly the
scenario of Figure 1.
"""

from __future__ import annotations

import random

from repro.baselines.static_executor import StaticExecutor
from repro.core.corrective import CorrectiveQueryProcessor
from repro.optimizer.plans import JoinTree
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.queries import flights_example_query

FLIGHTS_SCHEMA = Schema.from_names(["fid", "origin", "destination", "when"], relation="flights")
TRAVELERS_SCHEMA = Schema.from_names(["ssn", "flight"], relation="travelers")
CHILDREN_SCHEMA = Schema.from_names(["parent", "num"], relation="children")


def build_relations(
    flights: int = 300, travelers: int = 1200, trips_per_traveler: int = 8, seed: int = 5
):
    """Synthesize the three relations; travelers fly often (many trips each)."""
    rng = random.Random(seed)
    cities = ["SEA", "PHL", "SFO", "JFK", "ORD", "AUS", "BOS"]
    flight_rows = [
        (fid, rng.choice(cities), rng.choice(cities), rng.randrange(365))
        for fid in range(1, flights + 1)
    ]
    traveler_rows = []
    for ssn in range(1, travelers + 1):
        for _ in range(rng.randrange(1, 2 * trips_per_traveler)):
            traveler_rows.append((ssn, rng.randrange(1, flights + 1)))
    rng.shuffle(traveler_rows)
    children_rows = [(ssn, rng.randrange(0, 6)) for ssn in range(1, travelers + 1)]
    return (
        Relation("flights", FLIGHTS_SCHEMA, flight_rows),
        Relation("travelers", TRAVELERS_SCHEMA, traveler_rows),
        Relation("children", CHILDREN_SCHEMA, children_rows),
    )


def main() -> None:
    print(__doc__)
    flights, travelers, children = build_relations()
    sources = {"flights": flights, "travelers": travelers, "children": children}
    print(
        f"relations: flights={len(flights)}, travelers={len(travelers)} "
        f"(trip records), children={len(children)}"
    )

    query = flights_example_query()
    print()
    print(query.describe())

    # The catalog is empty of statistics: the system knows only the schemas.
    catalog = Catalog()
    for relation in sources.values():
        catalog.register(relation.name, relation.schema)

    # Phase-0 plan of the paper's example: F ⋈ (T ⋈ C).
    initial_tree = JoinTree.join(
        JoinTree.leaf("flights"),
        JoinTree.join(JoinTree.leaf("travelers"), JoinTree.leaf("children")),
    )

    static = StaticExecutor(catalog, sources).execute(query, join_tree=initial_tree)
    print(f"\nstatic execution of the initial plan {initial_tree}: "
          f"{static.simulated_seconds:.2f} simulated seconds")

    processor = CorrectiveQueryProcessor(
        catalog, sources, polling_interval_seconds=0.05
    )
    report = processor.execute(query, initial_tree=initial_tree)
    print(f"corrective execution: {report.simulated_seconds:.2f} simulated seconds, "
          f"{report.num_phases} phases")
    for phase in report.phases:
        reason = f"  (switched because {phase.switch_reason})" if phase.switch_reason else ""
        print(f"  phase {phase.phase_id}: {phase.join_tree}{reason}")
    if report.stitchup:
        stats = report.stitchup
        print(
            f"  stitch-up: {stats.combinations_evaluated} cross-phase combinations "
            f"evaluated, {stats.reused_tuples} tuples reused, "
            f"{stats.simulated_seconds:.2f}s"
        )

    # Both executions agree.
    assert sorted(report.rows) == sorted(static.rows)
    busiest = sorted(report.rows, key=lambda row: -(row[-1] or 0))[:5]
    print("\nflights whose travelers have the most children (fid, origin, max_children):")
    for row in busiest:
        print(f"  {row}")


if __name__ == "__main__":
    main()
