"""A small data integration federation: remote, autonomous, slow sources.

Run with::

    python examples/federation_demo.py

Three aspects of the data integration setting are demonstrated together:

* **source descriptions** — one source publishes its customer data under its
  own attribute names; a :class:`SourceDescription` maps them onto the global
  (mediated) schema;
* **remote, bursty sources** — the orders and lineitem providers are reached
  over simulated congested links, so tuples arrive in bursts;
* **adaptive execution** — the query is answered with corrective query
  processing, which both masks the bursts (availability-driven scheduling)
  and corrects the plan if its selectivity guesses prove wrong.
"""

from __future__ import annotations

from repro import AdaptiveIntegrationSystem
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.description import SourceDescription
from repro.sources.network import BurstyNetworkModel, ConstantRateNetworkModel
from repro.sources.remote import RemoteSource
from repro.workloads import TPCHGenerator, query_3a


def main() -> None:
    print(__doc__)
    data = TPCHGenerator(scale_factor=0.0015, zipf_z=0.5, seed=23).generate()

    system = AdaptiveIntegrationSystem()

    # --- source 1: a CRM system exporting customers under its own schema ---------
    crm_schema = Schema.from_names(
        ["customer_id", "display_name", "country_id", "segment", "balance", "phone"],
        relation="crm",
    )
    crm_rows = [tuple(row) for row in data.customer.rows]
    crm = Relation("crm_customers", crm_schema, crm_rows)
    description = SourceDescription(
        source_name="crm_customers",
        global_relation="customer",
        attribute_mapping={
            "customer_id": "c_custkey",
            "display_name": "c_name",
            "country_id": "c_nationkey",
            "segment": "c_mktsegment",
            "balance": "c_acctbal",
            "phone": "c_phone",
        },
    )
    system.register_source(crm, description=description)

    # --- sources 2 and 3: order and lineitem providers over congested links -------
    system.register_source(
        RemoteSource(
            data.orders,
            BurstyNetworkModel(
                burst_rate=60_000, mean_burst_tuples=300, mean_gap_seconds=0.03, seed=1
            ),
        )
    )
    system.register_source(
        RemoteSource(
            data.lineitem,
            BurstyNetworkModel(
                burst_rate=60_000, mean_burst_tuples=500, mean_gap_seconds=0.05, seed=2
            ),
        )
    )
    # The small dimension tables are mirrored locally.
    system.register_source(data.nation)
    system.register_source(data.region)
    system.register_source(
        RemoteSource(data.supplier, ConstantRateNetworkModel(tuples_per_second=5_000))
    )

    print("registered sources:")
    for info in system.describe_sources():
        location = "remote" if info["remote"] else "local"
        print(f"  {info['name']:10s} {location:6s} attributes={len(info['attributes'])}")

    query = query_3a()
    print()
    print(query.describe())

    answer = system.execute(
        query, strategy="corrective", polling_interval_seconds=0.25
    )
    report = answer.report
    print(
        f"\nanswered in {answer.simulated_seconds:.2f} simulated seconds "
        f"({report.wait_seconds:.2f}s of that waiting on the network), "
        f"{report.num_phases} phase(s), {len(answer)} result groups"
    )
    top = sorted(answer.rows, key=lambda row: -row[-1])[:5]
    print("top groups by revenue:")
    for row in top:
        print(f"  {row}")


if __name__ == "__main__":
    main()
