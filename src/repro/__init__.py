"""repro: a reproduction of "Adapting to Source Properties in Processing Data
Integration Queries" (Ives, Halevy, Weld — SIGMOD 2004).

The package implements adaptive data partitioning (ADP) on top of a pure-
Python data integration query engine:

* **corrective query processing** — switch join plans mid-pipeline and stitch
  the per-phase partitions back together (:mod:`repro.core.corrective`);
* **complementary join pairs** — exploit (partially) sorted sources with a
  merge join + pipelined hash join pair (:mod:`repro.core.complementary`);
* **adjustable-window pre-aggregation** — apply early aggregation only where
  it actually helps (:mod:`repro.core.preaggregation`).

The typical entry point is :class:`repro.AdaptiveIntegrationSystem`:

>>> from repro import AdaptiveIntegrationSystem
>>> from repro.workloads import TPCHGenerator, query_3a
>>> data = TPCHGenerator(scale_factor=0.0005).generate()
>>> system = AdaptiveIntegrationSystem()
>>> system.register_sources(data.relations.values())  # doctest: +ELLIPSIS
[...]
>>> answer = system.execute(query_3a(), strategy="corrective")
>>> len(answer.rows) > 0
True
"""

from repro.integration.system import AdaptiveIntegrationSystem, QueryAnswer
from repro.core.corrective import CorrectiveQueryProcessor
from repro.core.complementary import ComplementaryJoinPair, PipelinedHashJoinBaseline
from repro.core.preaggregation import AdjustableWindowPreAggregate, WindowedPreAggregator
from repro.baselines.static_executor import StaticExecutor
from repro.baselines.plan_partitioning import PlanPartitioningExecutor
from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.catalog import Catalog, TableStatistics

__version__ = "1.0.0"

__all__ = [
    "AdaptiveIntegrationSystem",
    "QueryAnswer",
    "CorrectiveQueryProcessor",
    "ComplementaryJoinPair",
    "PipelinedHashJoinBaseline",
    "AdjustableWindowPreAggregate",
    "WindowedPreAggregator",
    "StaticExecutor",
    "PlanPartitioningExecutor",
    "AggregateSpec",
    "SPJAQuery",
    "Aggregate",
    "AttributeRef",
    "Comparison",
    "Constant",
    "JoinPredicate",
    "Relation",
    "Attribute",
    "Schema",
    "Catalog",
    "TableStatistics",
    "__version__",
]
