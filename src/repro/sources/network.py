"""Network models: how tuples arrive from a remote source over time.

The paper evaluates corrective query processing both with local data and with
sources accessed over an 802.11b wireless network "known to be highly bursty"
(Figure 3 / Table 2).  A network model assigns each streamed tuple an arrival
time; the engine's simulated clock stalls when it tries to read a tuple that
has not arrived yet.  All models are deterministic given their seed, so the
wireless experiment is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence


class NetworkModel:
    """Produces per-tuple arrival times for one source connection."""

    def arrival_times(self, tuple_count: int) -> Iterator[float]:
        """Yield ``tuple_count`` non-decreasing arrival times (seconds)."""
        raise NotImplementedError

    def expected_transfer_seconds(self, tuple_count: int) -> float:
        """Time at which the last of ``tuple_count`` tuples arrives.

        The base implementation is exact for every model: it walks
        :meth:`arrival_times` and returns the final arrival (``0.0`` for an
        empty transfer).  Subclasses override it only when a closed form is
        cheaper (:class:`ConstantRateNetworkModel`) or when the exact walk
        would be misleading (:class:`BurstyNetworkModel` documents a rough
        analytic expectation instead, for sizing rather than simulation).
        """
        last = 0.0
        for last in self.arrival_times(tuple_count):
            pass
        return last


class InstantNetworkModel(NetworkModel):
    """Everything is available immediately (equivalent to a local source)."""

    def arrival_times(self, tuple_count: int) -> Iterator[float]:
        for _ in range(tuple_count):
            yield 0.0

    def expected_transfer_seconds(self, tuple_count: int) -> float:
        return 0.0


class ConstantRateNetworkModel(NetworkModel):
    """Tuples arrive at a fixed rate after an optional connection latency."""

    def __init__(self, tuples_per_second: float, latency: float = 0.0) -> None:
        if tuples_per_second <= 0:
            raise ValueError("tuples_per_second must be positive")
        self.tuples_per_second = tuples_per_second
        self.latency = max(latency, 0.0)

    def arrival_times(self, tuple_count: int) -> Iterator[float]:
        interval = 1.0 / self.tuples_per_second
        for index in range(tuple_count):
            yield self.latency + index * interval

    def expected_transfer_seconds(self, tuple_count: int) -> float:
        if tuple_count <= 0:
            return 0.0
        return self.latency + (tuple_count - 1) / self.tuples_per_second


class PhasedRateNetworkModel(NetworkModel):
    """Piecewise-constant delivery rates: collapses, outages and recoveries.

    ``phases`` is a sequence of ``(duration_seconds, tuples_per_second)``
    segments (rate ``0`` models a silent outage); once the phases are spent,
    remaining tuples arrive at ``tail_rate``.  Fully deterministic with no
    RNG, which makes it the workhorse of the source-rate adaptivity
    benchmark: a "fast" promise with a slow first phase and a fast tail is a
    collapsed-then-recovered source, a silent middle phase is a flaky one.
    """

    def __init__(
        self,
        phases: Sequence[tuple[float, float]],
        tail_rate: float,
        latency: float = 0.0,
    ) -> None:
        if tail_rate <= 0:
            raise ValueError("tail_rate must be positive")
        for duration, rate in phases:
            if duration < 0:
                raise ValueError("phase durations must be non-negative")
            if rate < 0:
                raise ValueError("phase rates must be non-negative (0 = outage)")
        self.phases = tuple((float(d), float(r)) for d, r in phases)
        self.tail_rate = tail_rate
        self.latency = max(latency, 0.0)

    def arrival_times(self, tuple_count: int) -> Iterator[float]:
        now = self.latency
        produced = 0
        for duration, rate in self.phases:
            end = now + duration
            if rate > 0:
                interval = 1.0 / rate
                while produced < tuple_count and now < end:
                    yield now
                    now += interval
                    produced += 1
            now = max(now, end)
        interval = 1.0 / self.tail_rate
        while produced < tuple_count:
            yield now
            now += interval
            produced += 1

class BurstyNetworkModel(NetworkModel):
    """Bursty, bandwidth-limited link modelled as alternating burst/gap periods.

    During a burst, tuples arrive back to back at ``burst_rate``; between
    bursts the link goes quiet for a randomly drawn gap.  Burst lengths and
    gap durations are drawn from seeded exponential-ish distributions, giving
    the heavy variance of a congested wireless link while remaining fully
    deterministic for a given seed.
    """

    def __init__(
        self,
        burst_rate: float = 4000.0,
        mean_burst_tuples: int = 200,
        mean_gap_seconds: float = 0.25,
        latency: float = 0.05,
        seed: int = 0,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError("burst_rate must be positive")
        if mean_burst_tuples < 1:
            raise ValueError("mean_burst_tuples must be at least 1")
        if mean_gap_seconds < 0:
            raise ValueError("mean_gap_seconds must be non-negative")
        self.burst_rate = burst_rate
        self.mean_burst_tuples = mean_burst_tuples
        self.mean_gap_seconds = mean_gap_seconds
        self.latency = max(latency, 0.0)
        self.seed = seed

    def arrival_times(self, tuple_count: int) -> Iterator[float]:
        rng = random.Random(self.seed)
        now = self.latency
        interval = 1.0 / self.burst_rate
        produced = 0
        while produced < tuple_count:
            burst_length = max(1, int(rng.expovariate(1.0 / self.mean_burst_tuples)))
            for _ in range(min(burst_length, tuple_count - produced)):
                yield now
                now += interval
                produced += 1
            if produced < tuple_count and self.mean_gap_seconds > 0:
                now += rng.expovariate(1.0 / self.mean_gap_seconds)

    def expected_transfer_seconds(self, tuple_count: int) -> float:
        """Rough expected time to deliver ``tuple_count`` tuples (for sizing tests)."""
        bursts = max(tuple_count / self.mean_burst_tuples, 1.0)
        return (
            self.latency
            + tuple_count / self.burst_rate
            + bursts * self.mean_gap_seconds
        )
