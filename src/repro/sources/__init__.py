"""Data source substrate: autonomous, remote, sequential-access sources.

Data integration sources are autonomous: the engine may only read them
sequentially, knows little about their statistics, and observes whatever
network behaviour the connection exhibits.  This package models that world:

* :class:`LocalSource` — data already on the server (arrival time 0).
* :class:`RemoteSource` — a relation streamed through a network model.
* network models — constant-bandwidth and bursty ("wireless") links, which
  produce deterministic per-tuple arrival times for the Figure 3 experiment.
* :class:`SourceDescription` — the cursory metadata a source publishes.
"""

from repro.sources.source import DataSource, LocalSource
from repro.sources.network import (
    BurstyNetworkModel,
    ConstantRateNetworkModel,
    InstantNetworkModel,
    NetworkModel,
)
from repro.sources.remote import RemoteSource
from repro.sources.description import MappedSource, SourceDescription

__all__ = [
    "DataSource",
    "LocalSource",
    "NetworkModel",
    "InstantNetworkModel",
    "ConstantRateNetworkModel",
    "BurstyNetworkModel",
    "RemoteSource",
    "MappedSource",
    "SourceDescription",
]
