"""Source descriptions: the cursory metadata a data integration source publishes.

"The data integration source descriptions for each data source are typically
quite cursory: often, they merely describe the semantic relationship between
relations in a data source and the relations in the globally integrated view
of the data" (Section 1).  A :class:`SourceDescription` therefore carries the
mapping from source attributes to global-schema attributes plus whatever
optional promises the provider is willing to make (cardinality, ordering) —
all of which may be absent or stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.relational.catalog import TableStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.sources.source import DataSource


class MappingError(ValueError):
    """Raised when a source description does not line up with its schemas."""


@dataclass(frozen=True)
class SourceDescription:
    """Semantic mapping from a source relation to the global (mediated) schema.

    Parameters
    ----------
    source_name:
        The source relation's name.
    global_relation:
        Name of the relation in the mediated schema this source provides.
    attribute_mapping:
        Mapping from source attribute name to global attribute name.  Source
        attributes not mentioned are dropped; global attributes not covered
        are unavailable from this source.
    promised_statistics:
        Statistics the provider volunteers.  They are *promises*, not
        guarantees — the adaptive machinery exists precisely because they may
        be wrong or missing.
    """

    source_name: str
    global_relation: str
    attribute_mapping: dict[str, str] = field(default_factory=dict)
    promised_statistics: TableStatistics = field(default_factory=TableStatistics)

    def translate_schema(self, source_schema: Schema) -> Schema:
        """Schema of this source's data expressed in global attribute names."""
        attrs = []
        for attr in source_schema.attributes:
            if self.attribute_mapping and attr.name not in self.attribute_mapping:
                continue
            global_name = self.attribute_mapping.get(attr.name, attr.name)
            attrs.append(Attribute(global_name, attr.type_name, self.global_relation))
        if not attrs:
            raise MappingError(
                f"source {self.source_name!r} maps no attributes of {source_schema.names}"
            )
        return Schema(tuple(attrs))

    def translate_row(self, source_schema: Schema, row: tuple) -> tuple:
        """Project/reorder one source row into the global attribute layout."""
        values = []
        for attr in source_schema.attributes:
            if self.attribute_mapping and attr.name not in self.attribute_mapping:
                continue
            values.append(row[source_schema.position(attr.name)])
        return tuple(values)

    def covers(self, global_attributes) -> bool:
        """True when this source provides all of ``global_attributes``."""
        provided = set(self.attribute_mapping.values()) if self.attribute_mapping else None
        if provided is None:
            return True
        return set(global_attributes) <= provided


class MappedSource(DataSource):
    """A source viewed through its description: rows arrive in the global schema.

    Wraps either an in-memory :class:`Relation` or any streaming source and
    applies the description's attribute mapping (projection + renaming) to
    every tuple, so the query processor only ever sees the mediated schema.
    """

    def __init__(self, source, description: SourceDescription) -> None:
        source_schema = source.schema
        super().__init__(
            description.global_relation, description.translate_schema(source_schema)
        )
        self.wrapped = source
        self.description = description
        self._source_schema = source_schema

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        description = self.description
        source_schema = self._source_schema
        if isinstance(self.wrapped, Relation):
            for row in self.wrapped.rows:
                yield description.translate_row(source_schema, row), 0.0
        else:
            for row, arrival in self.wrapped.open_stream():
                yield description.translate_row(source_schema, row), arrival

    def to_relation(self) -> Relation:
        """Materialize the translated contents (only for in-memory sources)."""
        if not isinstance(self.wrapped, Relation):
            raise TypeError("only relation-backed sources can be materialized eagerly")
        rows = [
            self.description.translate_row(self._source_schema, row)
            for row in self.wrapped.rows
        ]
        return Relation(self.name, self.schema, rows)
