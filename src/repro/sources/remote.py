"""Remote sources: relations streamed through a network model."""

from __future__ import annotations

from typing import Iterator

from repro.relational.relation import Relation
from repro.sources.network import InstantNetworkModel, NetworkModel
from repro.sources.source import DataSource


class RemoteSource(DataSource):
    """A relation delivered over a (possibly slow, bursty) network connection.

    Each :meth:`open_stream` call simulates a fresh connection, but the
    per-tuple arrival times are computed **once** per (source, network) pair
    and cached in :attr:`arrival_schedule`.  Repeated opens within one
    experiment — a corrective phase switch re-opening a source, or several
    engine configurations executing over the same registered sources — must
    observe byte-for-byte identical arrival times, otherwise the simulated
    clocks of the compared engines skew apart.  (The network models are
    deterministic per seed, so caching also avoids regenerating the schedule
    on every access.)
    """

    def __init__(
        self,
        relation: Relation,
        network: NetworkModel | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or relation.name, relation.schema)
        self.relation = relation
        self.network = network or InstantNetworkModel()
        self._arrival_schedule: tuple[float, ...] | None = None

    @property
    def arrival_schedule(self) -> tuple[float, ...]:
        """Cached arrival time of every tuple of this source."""
        if self._arrival_schedule is None:
            self._arrival_schedule = tuple(
                self.network.arrival_times(len(self.relation))
            )
        return self._arrival_schedule

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        return zip(self.relation.rows, self.arrival_schedule)

    def open_stream_batches(self, batch_size: int) -> Iterator[list[tuple[tuple, float]]]:
        """Batched reads: slice rows and the cached schedule chunk by chunk."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        rows = self.relation.rows
        schedule = self.arrival_schedule
        for start in range(0, len(rows), batch_size):
            stop = start + batch_size
            yield list(zip(rows[start:stop], schedule[start:stop]))

    def __len__(self) -> int:
        return len(self.relation)

    def with_network(self, network: NetworkModel) -> "RemoteSource":
        """Return a copy of this source behind a different network model."""
        return RemoteSource(self.relation, network, self.name)
