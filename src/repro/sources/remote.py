"""Remote sources: relations streamed through a network model."""

from __future__ import annotations

from typing import Iterator

from repro.relational.relation import Relation
from repro.sources.network import InstantNetworkModel, NetworkModel
from repro.sources.source import DataSource


class RemoteSource(DataSource):
    """A relation delivered over a (possibly slow, bursty) network connection.

    Each :meth:`open_stream` call simulates a fresh connection: arrival times
    are regenerated from the network model, so repeated accesses see the same
    deterministic burst pattern (important for reproducible benchmarks) while
    still modelling that the transfer has to happen again.
    """

    def __init__(
        self,
        relation: Relation,
        network: NetworkModel | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or relation.name, relation.schema)
        self.relation = relation
        self.network = network or InstantNetworkModel()

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        arrivals = self.network.arrival_times(len(self.relation))
        for row, arrival in zip(self.relation.rows, arrivals):
            yield row, arrival

    def __len__(self) -> int:
        return len(self.relation)

    def with_network(self, network: NetworkModel) -> "RemoteSource":
        """Return a copy of this source behind a different network model."""
        return RemoteSource(self.relation, network, self.name)
