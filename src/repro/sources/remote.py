"""Remote sources: relations streamed through a network model."""

from __future__ import annotations

from typing import Iterator

from repro.relational.relation import Relation
from repro.sources.network import InstantNetworkModel, NetworkModel
from repro.sources.source import DataSource


class RemoteSource(DataSource):
    """A relation delivered over a (possibly slow, bursty) network connection.

    Each :meth:`open_stream` call simulates a fresh connection, but the
    per-tuple arrival times are computed **once** per (source, network) pair
    and cached in :attr:`arrival_schedule`.  Repeated opens within one
    experiment — a corrective phase switch re-opening a source, or several
    engine configurations executing over the same registered sources — must
    observe byte-for-byte identical arrival times, otherwise the simulated
    clocks of the compared engines skew apart.  (The network models are
    deterministic per seed, so caching also avoids regenerating the schedule
    on every access.)
    """

    def __init__(
        self,
        relation: Relation,
        network: NetworkModel | None = None,
        name: str | None = None,
        promised_rate: float | None = None,
    ) -> None:
        """``promised_rate`` is the delivery rate (tuples/second) the
        provider *claims* for this connection — telemetry for the
        source-rate adaptation policy, which compares it against observed
        arrivals.  It does not influence the actual arrival schedule (that
        is the network model's job), so a promise can lie."""
        super().__init__(name or relation.name, relation.schema)
        self.relation = relation
        self.network = network or InstantNetworkModel()
        self.promised_rate = promised_rate
        self._arrival_schedule: tuple[float, ...] | None = None
        #: number of streams opened over this source's lifetime.  Under
        #: multi-query serving one source object is shared by every query
        #: that references it (each with its own cursor), so this counts the
        #: concurrent-connection load the source pool absorbed.
        self.open_count = 0
        #: replica sources serving the same rows, in failover order (see
        #: :meth:`register_mirror`).
        self.mirrors: list["RemoteSource"] = []

    @property
    def arrival_schedule(self) -> tuple[float, ...]:
        """Cached arrival time of every tuple of this source."""
        if self._arrival_schedule is None:
            self._arrival_schedule = tuple(
                self.network.arrival_times(len(self.relation))
            )
        return self._arrival_schedule

    @property
    def schedule_materialized(self) -> bool:
        return self._arrival_schedule is not None

    def arrived_by(self, now: float) -> int:
        """How many tuples the link has delivered by simulated time ``now``.

        This is what a real client observes in its receive buffer, and it is
        the honest signal for rate adaptivity: a source whose tuples sit
        unread behind other work has *delivered* them even though the cursor
        has not consumed them yet (consumption lag is the engine's choice,
        not the source's failure).
        """
        from bisect import bisect_right

        return bisect_right(self.arrival_schedule, now)

    def prime(self) -> "RemoteSource":
        """Force-compute the arrival schedule; returns ``self``.

        The serving layer primes every remote source before admitting
        queries, making the shared-schedule contract explicit: all sessions
        (and any solo comparison run over the same source object) observe
        byte-for-byte identical per-tuple arrival times no matter which
        session's cursor touches the source first.
        """
        _ = self.arrival_schedule
        return self

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        self.open_count += 1
        return zip(self.relation.rows, self.arrival_schedule)

    def open_stream_batches(self, batch_size: int) -> Iterator[list[tuple[tuple, float]]]:
        """Batched reads: slice rows and the cached schedule chunk by chunk."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.open_count += 1
        rows = self.relation.rows
        schedule = self.arrival_schedule

        def batches() -> Iterator[list[tuple[tuple, float]]]:
            for start in range(0, len(rows), batch_size):
                stop = start + batch_size
                yield list(zip(rows[start:stop], schedule[start:stop]))

        return batches()

    def open_stream_columns(self, batch_size: int):
        """Column chunks over the cached schedule, without pair materialization.

        The primed :attr:`arrival_schedule` tuple is fetched **once** per
        open (one memoized property access — priming therefore happens at
        most once per (source, network) pair no matter how many cursors or
        chunks consume the source), and each chunk is one row slice plus one
        schedule slice.  Chunks whose last arrival is 0.0 are emitted with
        ``arrivals=None`` (the all-immediate representation): per-source
        arrival times are non-decreasing, so the last entry bounds the chunk.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.open_count += 1
        rows = self.relation.rows
        schedule = self.arrival_schedule

        def chunks():
            for start in range(0, len(rows), batch_size):
                stop = start + batch_size
                arrivals = schedule[start:stop]
                if arrivals and arrivals[-1] <= 0.0:
                    yield rows[start:stop], None
                else:
                    yield rows[start:stop], arrivals

        return chunks()

    def __len__(self) -> int:
        return len(self.relation)

    def with_network(self, network: NetworkModel) -> "RemoteSource":
        """Return a copy of this source behind a different network model."""
        return RemoteSource(
            self.relation, network, self.name, promised_rate=self.promised_rate
        )

    # -- mirrors ---------------------------------------------------------------------

    def register_mirror(self, mirror: "RemoteSource") -> "RemoteSource":
        """Register a replica that can resume this source's stream; returns it.

        Failover correctness rests on the mirror serving **the same rows in
        the same order** — the resumed stream continues from a row offset,
        so any divergence would silently change answers.  Both the row
        identity and the schema are therefore validated here, at
        registration time, rather than trusted at failover time.
        """
        if tuple(mirror.schema.names) != tuple(self.schema.names):
            raise ValueError(
                f"mirror {mirror.name!r} schema {mirror.schema.names} does not "
                f"match primary {self.name!r} schema {self.schema.names}"
            )
        if mirror.relation.rows != self.relation.rows:
            raise ValueError(
                f"mirror {mirror.name!r} does not serve the same rows as "
                f"primary {self.name!r} (failover would change answers)"
            )
        self.mirrors.append(mirror)
        return mirror

    def reopen_from(self, offset: int, start_at: float) -> "ResumedRemoteStream":
        """Open this source's stream from row ``offset``, connecting at
        ``start_at`` (simulated seconds).  The remaining rows arrive on this
        source's own network schedule re-based to the connection time — what
        a fresh client opening the replica mid-query would observe."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        return ResumedRemoteStream(self, offset, start_at)


class ResumedRemoteStream:
    """The remainder of a relation, re-opened from a mirror mid-query.

    Quacks like a source for exactly the surface a
    :class:`~repro.engine.pipelined.SourceCursor` re-points itself at during
    mirror failover: ``open_stream_columns`` (the remaining rows on the
    mirror's arrival schedule shifted to the connection time),
    ``promised_rate``, and the ``arrived_by`` delivery oracle — which counts
    from the *original stream's start*, i.e. it reports ``offset`` delivered
    tuples at connection time, so rate telemetry stays continuous across the
    failover.
    """

    def __init__(self, source: RemoteSource, offset: int, start_at: float) -> None:
        self.source = source
        self.name = source.name
        self.offset = offset
        self.start_at = start_at
        self.promised_rate = source.promised_rate
        self._rows = source.relation.rows[offset:]
        self._arrivals = tuple(
            start_at + t for t in source.arrival_schedule[: len(self._rows)]
        )

    def __len__(self) -> int:
        return self.offset + len(self._rows)

    def arrived_by(self, now: float) -> int:
        """Delivered count by ``now``, continuing the primary's numbering."""
        from bisect import bisect_right

        return self.offset + bisect_right(self._arrivals, now)

    def open_stream_columns(self, batch_size: int):
        """Column chunks of the remaining rows (see RemoteSource's variant)."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.source.open_count += 1
        rows = self._rows
        arrivals = self._arrivals

        def chunks():
            for start in range(0, len(rows), batch_size):
                stop = start + batch_size
                chunk_arrivals = arrivals[start:stop]
                if chunk_arrivals and chunk_arrivals[-1] <= 0.0:
                    yield rows[start:stop], None
                else:
                    yield rows[start:stop], chunk_arrivals
        return chunks()

    def __repr__(self) -> str:
        return (
            f"ResumedRemoteStream({self.name!r}, offset={self.offset}, "
            f"start_at={self.start_at:.3f}s, remaining={len(self._rows)})"
        )
