"""Source abstractions."""

from __future__ import annotations

from typing import Iterator

from repro.relational.relation import Relation
from repro.relational.schema import Schema


class DataSource:
    """Base class for data sources.

    A source exposes only a schema and a sequential stream of
    ``(row, arrival_time)`` pairs — mirroring the data-integration access
    model: "we limit access to the input relations to be sequential only, and
    assume that they may change between successive accesses" (Section 3.5).
    Each call to :meth:`open_stream` represents a fresh access.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}({self.name!r})"


class LocalSource(DataSource):
    """A source whose data is already available on the query processor.

    Arrival times are all zero: the only cost of reading it is the engine's
    own per-tuple work.  Used for the "local data" experiments (Figure 2).
    """

    def __init__(self, relation: Relation) -> None:
        super().__init__(relation.name, relation.schema)
        self.relation = relation

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        for row in self.relation.rows:
            yield row, 0.0

    def __len__(self) -> int:
        return len(self.relation)
