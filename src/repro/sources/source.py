"""Source abstractions."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import Schema


class DataSource:
    """Base class for data sources.

    A source exposes only a schema and a sequential stream of
    ``(row, arrival_time)`` pairs — mirroring the data-integration access
    model: "we limit access to the input relations to be sequential only, and
    assume that they may change between successive accesses" (Section 3.5).
    Each call to :meth:`open_stream` represents a fresh access.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        raise NotImplementedError

    def open_stream_batches(self, batch_size: int) -> Iterator[list[tuple[tuple, float]]]:
        """Yield the stream in chunks of up to ``batch_size`` items.

        This is the prefetch primitive of the batched execution mode: a
        cursor pulls one chunk ahead instead of one tuple ahead.  The default
        implementation chunks :meth:`open_stream`; sources whose data is
        already materialized override it with direct slicing.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        batch: list[tuple[tuple, float]] = []
        for item in self.open_stream():
            batch.append(item)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def open_stream_columns(
        self, batch_size: int
    ) -> Iterator[tuple[Sequence[tuple], Sequence[float] | None]]:
        """Yield the stream as ``(rows, arrivals)`` column chunks.

        ``arrivals`` is either a sequence parallel to ``rows`` (non-decreasing
        per the source contract) or ``None``, meaning *every* row of the chunk
        arrives at time 0.0 — the representation that lets cursors consume
        local data with plain slices instead of per-tuple pair unpacking.
        Materialized sources override this with direct slicing; the default
        adapter transposes :meth:`open_stream_batches` chunks once per chunk.
        """
        for batch in self.open_stream_batches(batch_size):
            if not batch:
                continue
            rows, arrivals = zip(*batch)
            yield rows, (None if max(arrivals) <= 0.0 else arrivals)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}({self.name!r})"


class LocalSource(DataSource):
    """A source whose data is already available on the query processor.

    Arrival times are all zero: the only cost of reading it is the engine's
    own per-tuple work.  Used for the "local data" experiments (Figure 2).
    """

    def __init__(self, relation: Relation) -> None:
        super().__init__(relation.name, relation.schema)
        self.relation = relation

    def open_stream(self) -> Iterator[tuple[tuple, float]]:
        for row in self.relation.rows:
            yield row, 0.0

    def open_stream_batches(self, batch_size: int) -> Iterator[list[tuple[tuple, float]]]:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        rows = self.relation.rows
        for start in range(0, len(rows), batch_size):
            yield [(row, 0.0) for row in rows[start : start + batch_size]]

    def open_stream_columns(
        self, batch_size: int
    ) -> Iterator[tuple[Sequence[tuple], None]]:
        """Local data: plain row slices, arrivals implicitly all-zero."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        rows = self.relation.rows
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size], None

    def __len__(self) -> int:
        return len(self.relation)
