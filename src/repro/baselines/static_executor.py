"""Static (optimize-once) query execution — the traditional baseline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptivity import AdaptationController
from repro.engine.cost import CostModel, ExecutionMetrics, SimulatedClock
from repro.engine.pipelined import PipelinedExecutor
from repro.io.wallclock import wall_now
from repro.optimizer.enumerator import Optimizer
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, DEFAULT_ASSUMED_CARDINALITY
from repro.relational.schema import Schema


@dataclass
class StaticExecutionReport:
    """Outcome of a static execution (one plan, no adaptation)."""

    query_name: str
    rows: list[tuple]
    schema: Schema | None
    join_tree: JoinTree
    metrics: ExecutionMetrics
    simulated_seconds: float
    wall_seconds: float
    wait_seconds: float
    details: dict = field(default_factory=dict)

    def work(self, cost_model: CostModel | None = None) -> float:
        return self.metrics.work(cost_model)

    def summary(self) -> dict[str, object]:
        return {
            "query": self.query_name,
            "strategy": "static",
            "join_tree": str(self.join_tree),
            "total_seconds": round(self.simulated_seconds, 2),
            "answers": len(self.rows),
        }


class StaticExecutor:
    """Optimize once using the catalog's statistics, then run to completion.

    This is "Static - No Statistics" or "Static - Cardinalities" in Figure 2
    depending on whether the supplied catalog carries cardinalities.  The
    execution uses the same pipelined hash joins (and the same cost
    accounting) as the adaptive strategies, so the comparison isolates the
    effect of adaptation rather than of different join machinery.
    """

    def __init__(
        self,
        catalog: Catalog,
        sources: dict[str, object],
        cost_model: CostModel | None = None,
        default_cardinality: int = DEFAULT_ASSUMED_CARDINALITY,
        bushy: bool = True,
        batch_size: int | None = None,
        engine_mode: str = "interpreted",
        adaptation: AdaptationController | None = None,
    ) -> None:
        self.catalog = catalog
        self.sources = dict(sources)
        self.cost_model = cost_model or CostModel()
        self.batch_size = batch_size
        self.engine_mode = engine_mode
        # Static execution adapts nothing *at runtime*, but it still drives
        # the shared adaptivity kernel: registered policies get the run
        # lifecycle and may inform the one-shot plan choice (e.g. a
        # join-strategy policy lets the static optimizer exploit promised
        # orderings).  The default controller has no policies and changes
        # nothing.
        self.adaptation = adaptation or AdaptationController()
        self.optimizer = Optimizer(
            catalog, self.cost_model, bushy=bushy, default_cardinality=default_cardinality
        )

    def execute(
        self, query: SPJAQuery, join_tree: JoinTree | None = None
    ) -> StaticExecutionReport:
        """Run ``query`` statically; ``join_tree`` overrides the optimizer."""
        run = self.adaptation.begin(query, self.catalog, sources=self.sources)
        tree = join_tree or self.optimizer.optimize_tree(
            query, ordering=run.current_ordering()
        )
        metrics = ExecutionMetrics()
        clock = SimulatedClock(self.cost_model)
        executor = PipelinedExecutor(
            self.sources,
            self.cost_model,
            batch_size=self.batch_size,
            engine_mode=self.engine_mode,
        )
        wall_start = wall_now()
        rows, plan = executor.execute(query, tree, clock=clock, metrics=metrics)
        wall_seconds = wall_now() - wall_start
        schema = None
        if query.aggregation is None:
            schema = plan.output_schema
        return StaticExecutionReport(
            query_name=query.name,
            rows=rows,
            schema=schema,
            join_tree=tree,
            metrics=metrics,
            simulated_seconds=clock.now,
            wall_seconds=wall_seconds,
            wait_seconds=clock.wait_time,
            details={
                "phase_statistics": plan.statistics,
                "adaptation": run.describe(),
            },
        )
