"""Baseline (non-ADP) execution strategies the paper compares against.

* :class:`StaticExecutor` — optimize once with whatever statistics exist,
  then run the chosen plan to completion (a traditional query processor).
* :class:`PlanPartitioningExecutor` — the mid-query re-optimization baseline
  in the style of Kabra & DeWitt: break the plan at a materialization point
  (after three joins, as the paper configures Tukwila when no statistics
  suggest a better spot), then re-optimize the remainder with the observed
  cardinality of the materialized intermediate.
"""

from repro.baselines.static_executor import StaticExecutionReport, StaticExecutor
from repro.baselines.plan_partitioning import (
    PlanPartitioningExecutor,
    PlanPartitioningReport,
)

__all__ = [
    "StaticExecutor",
    "StaticExecutionReport",
    "PlanPartitioningExecutor",
    "PlanPartitioningReport",
]
