"""Plan partitioning with mid-query re-optimization (Kabra/DeWitt-style baseline).

The plan is broken into two stages at a materialization point.  With no
statistics there is no principled way to choose the break, so — exactly as
the paper configures it — the materialization point is inserted after three
joins: stage 1 joins the first four relations of a left-deep plan and
materializes the result; stage 2 re-optimizes the remaining joins with the
*exact* cardinality of the materialized intermediate and finishes the query.
For queries with three or fewer joins the materialization point coincides
with the end of the query, so plan partitioning degenerates to static
execution (which is what Figure 2 shows for queries 10 and 10A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptivity import AdaptationController
from repro.engine.cost import CostModel, ExecutionMetrics, SimulatedClock
from repro.engine.pipelined import PipelinedExecutor
from repro.io.wallclock import wall_now
from repro.optimizer.enumerator import Optimizer
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, DEFAULT_ASSUMED_CARDINALITY, TableStatistics
from repro.relational.expressions import JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema


#: Name given to the materialized stage-1 intermediate when it re-enters the
#: optimizer as a base relation.
STAGE_RELATION_NAME = "__materialized_stage1__"


@dataclass
class PlanPartitioningReport:
    """Outcome of a plan-partitioning execution."""

    query_name: str
    rows: list[tuple]
    schema: Schema | None
    stage1_tree: JoinTree
    stage2_tree: JoinTree | None
    stage1_cardinality: int
    metrics: ExecutionMetrics
    simulated_seconds: float
    wall_seconds: float
    details: dict = field(default_factory=dict)

    def work(self, cost_model: CostModel | None = None) -> float:
        return self.metrics.work(cost_model)

    @property
    def materialized(self) -> bool:
        return self.stage2_tree is not None

    def summary(self) -> dict[str, object]:
        return {
            "query": self.query_name,
            "strategy": "plan_partitioning",
            "materialized": self.materialized,
            "stage1_cardinality": self.stage1_cardinality,
            "total_seconds": round(self.simulated_seconds, 2),
            "answers": len(self.rows),
        }


class PlanPartitioningExecutor:
    """Two-stage execution with re-optimization at a materialization point."""

    def __init__(
        self,
        catalog: Catalog,
        sources: dict[str, object],
        cost_model: CostModel | None = None,
        materialize_after_joins: int = 3,
        default_cardinality: int = DEFAULT_ASSUMED_CARDINALITY,
        batch_size: int | None = None,
        engine_mode: str = "interpreted",
        adaptation: AdaptationController | None = None,
    ) -> None:
        self.catalog = catalog
        self.sources = dict(sources)
        self.cost_model = cost_model or CostModel()
        self.materialize_after_joins = materialize_after_joins
        self.default_cardinality = default_cardinality
        self.batch_size = batch_size
        self.engine_mode = engine_mode
        # Like the static baseline, plan partitioning drives the shared
        # adaptivity kernel for its run lifecycle and (one-shot) plan
        # choices; the default controller has no policies and is inert.
        self.adaptation = adaptation or AdaptationController()
        self.optimizer = Optimizer(
            catalog, self.cost_model, bushy=True, default_cardinality=default_cardinality
        )

    # -- stage construction -----------------------------------------------------------

    def _stage1_relations(self, query: SPJAQuery) -> tuple[str, ...]:
        """First ``materialize_after_joins + 1`` relations of a left-deep order."""
        left_deep_optimizer = Optimizer(
            self.catalog,
            self.cost_model,
            bushy=False,
            default_cardinality=self.default_cardinality,
        )
        order = left_deep_optimizer.optimize_tree(query).leaf_order()
        return order[: self.materialize_after_joins + 1]

    def _stage1_query(self, query: SPJAQuery, relations: tuple[str, ...]) -> SPJAQuery:
        relation_set = frozenset(relations)
        predicates = tuple(
            p
            for p in query.join_predicates
            if p.left_relation in relation_set and p.right_relation in relation_set
        )
        selections = {
            rel: pred for rel, pred in query.selections.items() if rel in relation_set
        }
        return SPJAQuery(
            name=f"{query.name}_stage1",
            relations=relations,
            join_predicates=predicates,
            selections=selections,
            aggregation=None,
        )

    def _stage2_query(
        self, query: SPJAQuery, stage1_relations: tuple[str, ...]
    ) -> SPJAQuery:
        stage1_set = frozenset(stage1_relations)
        remaining = tuple(r for r in query.relations if r not in stage1_set)
        predicates: list[JoinPredicate] = []
        for pred in query.join_predicates:
            left_in = pred.left_relation in stage1_set
            right_in = pred.right_relation in stage1_set
            if left_in and right_in:
                continue  # already applied in stage 1
            if left_in:
                predicates.append(
                    JoinPredicate(
                        STAGE_RELATION_NAME,
                        pred.left_attr,
                        pred.right_relation,
                        pred.right_attr,
                    )
                )
            elif right_in:
                predicates.append(
                    JoinPredicate(
                        pred.left_relation,
                        pred.left_attr,
                        STAGE_RELATION_NAME,
                        pred.right_attr,
                    )
                )
            else:
                predicates.append(pred)
        selections = {
            rel: pred for rel, pred in query.selections.items() if rel not in stage1_set
        }
        return SPJAQuery(
            name=f"{query.name}_stage2",
            relations=(STAGE_RELATION_NAME,) + remaining,
            join_predicates=tuple(predicates),
            selections=selections,
            aggregation=query.aggregation,
        )

    # -- execution ----------------------------------------------------------------------

    def execute(self, query: SPJAQuery) -> PlanPartitioningReport:
        metrics = ExecutionMetrics()
        clock = SimulatedClock(self.cost_model)
        wall_start = wall_now()
        run = self.adaptation.begin(query, self.catalog, sources=self.sources)

        stage1_relations = self._stage1_relations(query)
        if len(stage1_relations) >= len(query.relations):
            # Materialization point falls at (or beyond) the end of the query:
            # plan partitioning degenerates to static execution.
            tree = self.optimizer.optimize_tree(
                query, ordering=run.current_ordering()
            )
            executor = PipelinedExecutor(
                self.sources,
                self.cost_model,
                batch_size=self.batch_size,
                engine_mode=self.engine_mode,
            )
            rows, plan = executor.execute(query, tree, clock=clock, metrics=metrics)
            return PlanPartitioningReport(
                query_name=query.name,
                rows=rows,
                schema=None if query.aggregation is not None else plan.output_schema,
                stage1_tree=tree,
                stage2_tree=None,
                stage1_cardinality=plan.output_count,
                metrics=metrics,
                simulated_seconds=clock.now,
                wall_seconds=wall_now() - wall_start,
                details={"degenerate": True, "adaptation": run.describe()},
            )

        # Stage 1: join the first few relations and materialize.
        stage1_query = self._stage1_query(query, stage1_relations)
        stage1_tree = self.optimizer.optimize_tree(stage1_query)
        executor = PipelinedExecutor(
            self.sources,
            self.cost_model,
            batch_size=self.batch_size,
            engine_mode=self.engine_mode,
        )
        stage1_rows, stage1_plan = executor.execute(
            stage1_query, stage1_tree, clock=clock, metrics=metrics
        )
        stage1_relation = Relation(
            STAGE_RELATION_NAME, stage1_plan.output_schema, list(stage1_rows)
        )
        # Materialization cost: writing the intermediate result.
        metrics.tuple_copies += len(stage1_rows)

        # Stage 2: re-optimize with exact knowledge of the intermediate.
        stage2_query = self._stage2_query(query, stage1_relations)
        stage2_catalog = Catalog()
        for name in query.relations:
            if name in stage1_relations:
                continue
            entry = self.catalog.entry(name)
            stage2_catalog.register(name, entry.schema, entry.statistics, entry.relation)
        stage2_catalog.register(
            STAGE_RELATION_NAME,
            stage1_relation.schema,
            TableStatistics(cardinality=len(stage1_relation)),
            stage1_relation,
        )
        stage2_optimizer = Optimizer(
            stage2_catalog,
            self.cost_model,
            bushy=True,
            default_cardinality=self.default_cardinality,
        )
        stage2_tree = stage2_optimizer.optimize_tree(stage2_query)
        stage2_sources = dict(self.sources)
        stage2_sources[STAGE_RELATION_NAME] = stage1_relation
        stage2_executor = PipelinedExecutor(
            stage2_sources,
            self.cost_model,
            batch_size=self.batch_size,
            engine_mode=self.engine_mode,
        )
        rows, stage2_plan = stage2_executor.execute(
            stage2_query, stage2_tree, clock=clock, metrics=metrics
        )

        return PlanPartitioningReport(
            query_name=query.name,
            rows=rows,
            schema=None if query.aggregation is not None else stage2_plan.output_schema,
            stage1_tree=stage1_tree,
            stage2_tree=stage2_tree,
            stage1_cardinality=len(stage1_relation),
            metrics=metrics,
            simulated_seconds=clock.now,
            wall_seconds=wall_now() - wall_start,
            details={
                "stage1_relations": stage1_relations,
                "stage2_relations": stage2_query.relations,
                "adaptation": run.describe(),
            },
        )
