"""Shard-safety rules: certify the serving layer for multi-process sharding.

ROADMAP item 1 splits :class:`~repro.serving.server.QueryServer` into N
worker processes.  These rules machine-check the package against the
explicit sharing contract of :mod:`repro.serving.channels`:

* ``sharding.shared-channel`` — escape/aliasing analysis.  In every
  session-spawning serving class (one that constructs ``*Session`` objects),
  a mutable attribute passed into session-reachable calls must be a declared
  channel attribute; across ``serving/``, ``core/``, ``adaptivity/`` and
  ``engine/``, a channel object stored under an attribute name the registry
  does not declare is an undeclared alias.  Malformed declarations and
  channels whose attributes no longer correspond to any observed escape
  (stale, mirroring ``whitelist.stale-entry``) are findings too.
* ``sharding.session-isolation`` — call-graph closure (the by-bare-name
  machinery of :mod:`repro.analysis.accounting`) from every
  ``execute_incremental`` entry point: functions on the session tick path
  may mutate declared channels only from the channel's sanctioned writer
  symbols; everything else they touch must be session-owned.
* ``sharding.clock-discipline`` — only the declared drive-loop writers may
  reach :class:`~repro.engine.cost.SimulatedClock` mutators
  (``advance`` / ``wait_until`` / ``charge`` / ``charge_metrics``); any
  other access — calls *or* aliasing loads like ``hop = self.clock.advance``
  — is a finding.  Sessions, policies and operators may only read ``now``.
* ``sharding.picklability`` — transitive field-type inference over every
  ``cross_process_safe`` channel type and hand-off payload: lambdas,
  generator expressions, bound methods and fields annotated with
  unpicklable types (iterators, callables, open cursors, code objects)
  cannot cross a process boundary; and compiled pipelines built with
  ``exec`` must record ``__compiled_source__`` so they can be rebuilt from
  source + constants on the other side.

The rules parse the channel registry *statically* from the scanned tree
(``serving/channels.py`` is literal-only by design), so fixture trees carry
their own miniature registry and the analyzer never imports the package it
audits.  A scan without a registry module yields no shard findings — the
audit is certified by :mod:`tests.test_analysis` asserting the real scan
both parses the registry and comes back clean.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.analysis.accounting import FunctionInfo, index_functions
from repro.analysis.findings import Finding
from repro.analysis.rules import LintRule, RuleContext, ScopeTracker, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import is local)
    from repro.analysis.exhaustiveness import ClassRecord

#: where the channel registry lives, relative to the scan root
CHANNELS_RELPATH = "serving/channels.py"

#: must agree with repro.serving.channels.DISCIPLINES (both are literals;
#: the registry parse is deliberately import-free)
DISCIPLINES = ("read_only", "single_writer", "cross_process_safe")

#: the tick-path entry point the isolation closure starts from
SESSION_ENTRY_POINT = "execute_incremental"

#: builtins whose calls never leak a reference into session-reachable
#: state (copies, reads, predicates); passing an attribute to anything
#: else counts as an escape
PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "dict", "enumerate", "filter", "float",
        "format", "frozenset", "getattr", "hasattr", "id", "int",
        "isinstance", "iter", "len", "list", "map", "max", "min", "next",
        "print", "repr", "reversed", "round", "set", "sorted", "str", "sum",
        "tuple", "zip",
    }
)

#: annotation tokens denoting immutable values; an attribute whose value
#: comes from a parameter annotated purely with these never carries shared
#: mutable state
IMMUTABLE_ANNOTATION_TOKENS = frozenset(
    {"int", "float", "str", "bool", "bytes", "None", "Optional", ""}
)

#: type names that cannot cross a process boundary via pickle.  The second
#: block is the real-I/O fabric's resources: sockets, locks, threads, file
#: handles, live DB connections, and the transport/envelope objects that own
#: them — declaring any of these in a ``cross_process_safe`` channel's
#: payload family is a finding (sockets don't pickle; each worker must
#: rebuild its own envelopes from picklable backend descriptions).
UNPICKLABLE_TYPE_NAMES = frozenset(
    {
        "AsyncGenerator",
        "BinaryIO",
        "Callable",
        "CodeType",
        "FrameType",
        "FunctionType",
        "Generator",
        "IO",
        "Iterator",
        "LambdaType",
        "ModuleType",
        "SourceCursor",
        "TextIO",
        "TracebackType",
        # real-I/O fabric resources (repro.io)
        "Condition",
        "Connection",
        "Event",
        "FixtureServer",
        "HTTPConnection",
        "HTTPResponse",
        "InjectedTransport",
        "Lock",
        "Queue",
        "RLock",
        "ResilientSource",
        "RowReader",
        "Semaphore",
        "Thread",
        "ThreadedPrefetchSource",
        "Transport",
        "socket",
    }
)


@dataclass(frozen=True)
class ParsedChannel:
    """One channel declaration read statically from the registry module."""

    name: str
    type_name: str
    discipline: str
    rationale: str
    attributes: tuple[str, ...]
    mutators: tuple[str, ...]
    writers: tuple[str, ...]
    payload_types: tuple[str, ...]
    lineno: int
    malformed: bool = False


@dataclass
class ParsedRegistry:
    """The statically-parsed channel registry of one scanned tree."""

    relpath: str
    channels: list[ParsedChannel]
    #: (lineno, symbol, message) declaration problems
    problems: list[tuple[int, str, str]]

    def declared_attributes(self) -> dict[str, ParsedChannel]:
        """Attribute name → owning channel, over well-formed channels."""
        return {
            attr: channel
            for channel in self.channels
            if not channel.malformed
            for attr in channel.attributes
        }


def _literal_str(expr: ast.expr | None) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _literal_str_tuple(expr: ast.expr | None) -> tuple[str, ...] | None:
    if not isinstance(expr, (ast.Tuple, ast.List)):
        return None
    out: list[str] = []
    for element in expr.elts:
        value = _literal_str(element)
        if value is None:
            return None
        out.append(value)
    return tuple(out)


def parse_channel_registry(contexts: list[RuleContext]) -> ParsedRegistry | None:
    """Parse ``CHANNELS = (SharedChannel(...), ...)`` from the scanned tree.

    Returns ``None`` when no registry module is present (the shard rules
    then stay silent — fixture trees without one are not audited).
    Declarations must be literal keyword arguments; anything computed is a
    malformed-declaration problem.
    """
    registry_ctx = next(
        (ctx for ctx in contexts if ctx.relpath == CHANNELS_RELPATH), None
    )
    if registry_ctx is None:
        return None
    registry = ParsedRegistry(relpath=registry_ctx.relpath, channels=[], problems=[])

    channels_value: ast.expr | None = None
    for node in registry_ctx.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if any(
            isinstance(target, ast.Name) and target.id == "CHANNELS"
            for target in targets
        ):
            channels_value = node.value if isinstance(node, ast.Assign) else node.value
            break
    if not isinstance(channels_value, (ast.Tuple, ast.List)):
        registry.problems.append(
            (1, "<module>", "registry module declares no literal CHANNELS tuple")
        )
        return registry

    seen: set[str] = set()
    for element in channels_value.elts:
        if not (
            isinstance(element, ast.Call)
            and isinstance(element.func, ast.Name)
            and element.func.id == "SharedChannel"
        ):
            registry.problems.append(
                (
                    element.lineno,
                    "CHANNELS",
                    "registry entry is not a literal SharedChannel(...) call",
                )
            )
            continue
        kwargs = {kw.arg: kw.value for kw in element.keywords if kw.arg}
        name = _literal_str(kwargs.get("name")) or "<unnamed>"
        symbol = f"CHANNELS.{name}"
        malformed = False

        def problem(message: str, line: int = element.lineno, sym: str = symbol) -> None:
            registry.problems.append((line, sym, message))

        strings: dict[str, str] = {}
        for field_name in ("name", "type_name", "discipline", "rationale"):
            value = _literal_str(kwargs.get(field_name))
            if value is None and field_name in kwargs:
                problem(f"channel field {field_name!r} is not a string literal")
                malformed = True
            strings[field_name] = value or ""
        tuples: dict[str, tuple[str, ...]] = {}
        for field_name in ("attributes", "mutators", "writers", "payload_types"):
            if field_name not in kwargs:
                tuples[field_name] = ()
                continue
            value = _literal_str_tuple(kwargs[field_name])
            if value is None:
                problem(
                    f"channel field {field_name!r} is not a literal tuple of strings"
                )
                malformed = True
                value = ()
            tuples[field_name] = value

        if strings["discipline"] not in DISCIPLINES:
            problem(
                f"unknown discipline {strings['discipline']!r}; expected one "
                f"of {', '.join(DISCIPLINES)}"
            )
            malformed = True
        if not strings["rationale"].strip():
            problem(
                "channel has no rationale; every shared channel must say why "
                "its discipline is safe"
            )
            malformed = True
        if strings["discipline"] == "read_only" and tuples["writers"]:
            problem(
                "read_only channel lists writer sites; a read-only channel "
                "has no sanctioned writers"
            )
            malformed = True
        if name in seen:
            problem(f"duplicate channel declaration {name!r}")
            malformed = True
        seen.add(name)

        registry.channels.append(
            ParsedChannel(
                name=name,
                type_name=strings["type_name"],
                discipline=strings["discipline"],
                rationale=strings["rationale"],
                attributes=tuples["attributes"],
                mutators=tuples["mutators"],
                writers=tuples["writers"],
                payload_types=tuples["payload_types"],
                lineno=element.lineno,
                malformed=malformed,
            )
        )
    return registry


def _attr_chain(expr: ast.expr) -> set[str]:
    """All dotted names along an attribute receiver (``self.clock`` →
    ``{"self", "clock"}``)."""
    names: set[str] = set()
    node = expr
    while isinstance(node, ast.Attribute):
        names.add(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.add(node.id)
    return names


def _annotation_is_immutable(annotation: ast.expr | None) -> bool:
    """Does the annotation denote a value with no shared mutable state?"""
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    tokens = {
        token
        for token in "".join(
            ch if (ch.isalnum() or ch == "_") else " " for ch in text
        ).split()
    }
    return tokens <= IMMUTABLE_ANNOTATION_TOKENS


def _is_mutable_value(
    value: ast.expr, param_annotations: dict[str, ast.expr | None]
) -> bool:
    """Conservative: could the assigned value carry shared mutable state?"""
    if isinstance(value, ast.Constant):
        return False
    if isinstance(value, ast.Name):
        if value.id in param_annotations:
            return not _annotation_is_immutable(param_annotations[value.id])
        return True
    if isinstance(value, ast.Tuple):
        return any(_is_mutable_value(e, param_annotations) for e in value.elts)
    if isinstance(value, (ast.BoolOp,)):
        return any(_is_mutable_value(e, param_annotations) for e in value.values)
    if isinstance(value, ast.IfExp):
        return _is_mutable_value(value.body, param_annotations) or _is_mutable_value(
            value.orelse, param_annotations
        )
    return True


def _init_method(node: ast.ClassDef) -> ast.FunctionDef | None:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            return item
    return None


def _param_annotations(function: ast.FunctionDef) -> dict[str, ast.expr | None]:
    args = function.args
    params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return {arg.arg: arg.annotation for arg in params if arg.arg != "self"}


def _self_attribute(expr: ast.expr) -> str | None:
    """``X`` when ``expr`` is exactly ``self.X``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _init_attributes(node: ast.ClassDef) -> dict[str, tuple[int, bool]]:
    """``self.X`` attributes assigned in ``__init__`` → (line, mutable)."""
    init = _init_method(node)
    if init is None:
        return {}
    annotations = _param_annotations(init)
    attributes: dict[str, tuple[int, bool]] = {}
    for stmt in ast.walk(init):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            attr = _self_attribute(target)
            if attr is None:
                continue
            mutable = _is_mutable_value(value, annotations)
            line, known = attributes.get(attr, (stmt.lineno, False))
            attributes[attr] = (line, known or mutable)
    return attributes


def _spawns_sessions(node: ast.ClassDef) -> bool:
    """Does the class construct ``*Session`` objects (i.e. serve N of them)?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name and name.endswith("Session") and name != "Session":
                return True
    return False


def _loop_aliases(function: ast.FunctionDef) -> dict[str, str]:
    """Loop variable → iterated self-attribute (``for p in self.X``)."""
    aliases: dict[str, str] = {}
    for stmt in ast.walk(function):
        if isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
            attr = _self_attribute(stmt.iter)
            if attr is not None:
                aliases[stmt.target.id] = attr
    return aliases


@register_rule
class SharedChannelRule(LintRule):
    """Every cross-session object must be a declared channel; no undeclared
    escapes, no undeclared aliases, no stale or malformed declarations."""

    name = "sharding.shared-channel"
    description = (
        "mutable server state escaping into sessions must be declared in "
        "serving/channels.py with a discipline and rationale; channel "
        "objects may only be stored under declared attribute names; stale "
        "and malformed declarations are findings"
    )
    project_wide = True
    scope_dirs = frozenset({"serving", "core", "adaptivity", "engine", "io"})

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        registry = parse_channel_registry(contexts)
        if registry is None:
            return []
        findings: list[Finding] = [
            Finding(
                rule=self.name,
                path=registry.relpath,
                line=line,
                symbol=symbol,
                message=message,
            )
            for line, symbol, message in registry.problems
        ]
        declared = registry.declared_attributes()
        used_channels: set[str] = set()
        scoped = [ctx for ctx in contexts if self.applies_to(ctx)]

        for ctx in scoped:
            if ctx.relpath == registry.relpath:
                continue
            for node in ctx.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if ctx.top_directory() == "serving" and _spawns_sessions(node):
                    findings.extend(
                        self._check_escapes(ctx, node, declared, used_channels)
                    )
                findings.extend(
                    self._check_aliases(ctx, node, registry, declared, used_channels)
                )

        for channel in registry.channels:
            if channel.malformed or not channel.attributes:
                continue
            if channel.name not in used_channels:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=registry.relpath,
                        line=channel.lineno,
                        symbol=f"CHANNELS.{channel.name}",
                        message=(
                            f"stale channel {channel.name!r}: none of its "
                            "declared attributes "
                            f"({', '.join(channel.attributes)}) escapes into "
                            "sessions any more — delete or update the "
                            "declaration"
                        ),
                    )
                )
        return findings

    def _check_escapes(
        self,
        ctx: RuleContext,
        node: ast.ClassDef,
        declared: dict[str, ParsedChannel],
        used_channels: set[str],
    ) -> list[Finding]:
        """Flag mutable ``self.X`` escaping undeclared from a session spawner."""
        findings: list[Finding] = []
        attributes = _init_attributes(node)
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loop_aliases = (
                _loop_aliases(method)
                if isinstance(method, ast.FunctionDef)
                else {}
            )
            symbol = f"{node.name}.{method.name}"
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                if (
                    isinstance(call.func, ast.Name)
                    and call.func.id in PURE_BUILTINS
                ):
                    continue
                args = [*call.args, *[kw.value for kw in call.keywords]]
                for arg in args:
                    attr = _self_attribute(arg)
                    if attr is None and isinstance(arg, ast.Name):
                        attr = loop_aliases.get(arg.id)
                    if attr is None or attr not in attributes:
                        continue
                    _, mutable = attributes[attr]
                    if not mutable:
                        continue
                    if attr in declared:
                        used_channels.add(declared[attr].name)
                        continue
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=ctx.relpath,
                            line=arg.lineno,
                            symbol=symbol,
                            message=(
                                f"mutable server attribute self.{attr} "
                                "escapes into session-reachable state but is "
                                "not a declared shared channel; declare it "
                                f"in {CHANNELS_RELPATH} with a discipline "
                                "and rationale"
                            ),
                        )
                    )
        return findings

    def _check_aliases(
        self,
        ctx: RuleContext,
        node: ast.ClassDef,
        registry: ParsedRegistry,
        declared: dict[str, ParsedChannel],
        used_channels: set[str],
    ) -> list[Finding]:
        """Flag channel objects stored under undeclared attribute names."""
        findings: list[Finding] = []
        init = _init_method(node)
        if init is None:
            return findings
        annotations = _param_annotations(init)
        type_owner = {
            channel.type_name: channel
            for channel in registry.channels
            if channel.type_name and not channel.malformed
        }

        def param_channel(param: str) -> ParsedChannel | None:
            if param in declared:
                return declared[param]
            annotation = annotations.get(param)
            if annotation is not None:
                tokens = _attr_chain_from_annotation(annotation)
                for token in tokens:
                    if token in type_owner:
                        return type_owner[token]
            return None

        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            if not isinstance(stmt.value, ast.Name):
                continue
            if stmt.value.id not in annotations:
                continue
            channel = param_channel(stmt.value.id)
            if channel is None:
                continue
            for target in stmt.targets:
                attr = _self_attribute(target)
                if attr is None:
                    continue
                if attr in channel.attributes:
                    used_channels.add(channel.name)
                else:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=ctx.relpath,
                            line=stmt.lineno,
                            symbol=f"{node.name}.__init__",
                            message=(
                                f"shared channel {channel.name!r} is aliased "
                                f"under undeclared attribute self.{attr}; "
                                "store it under a declared attribute name or "
                                f"add the alias to {CHANNELS_RELPATH}"
                            ),
                        )
                    )
        return findings


def _attr_chain_from_annotation(annotation: ast.expr) -> set[str]:
    """All identifier tokens in an annotation (string annotations included)."""
    tokens: set[str] = set()
    for child in ast.walk(annotation):
        if isinstance(child, ast.Name):
            tokens.add(child.id)
        elif isinstance(child, ast.Attribute):
            tokens.add(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", child.value))
    return tokens


@register_rule
class SessionIsolationRule(LintRule):
    """The session tick path mutates only session-owned state or declared
    channels from their sanctioned writer symbols."""

    name = "sharding.session-isolation"
    description = (
        "functions reachable from execute_incremental may invoke a declared "
        "channel's mutators (or store through a channel attribute) only "
        "from the channel's sanctioned writers list"
    )
    project_wide = True
    scope_dirs = frozenset(
        {"serving", "core", "adaptivity", "engine", "optimizer", "sources", "io"}
    )

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        registry = parse_channel_registry(contexts)
        if registry is None:
            return []
        channels = [
            channel
            for channel in registry.channels
            if not channel.malformed and channel.mutators and channel.attributes
            # the clock has its own rule (stricter: loads count too)
            and "clock" not in channel.attributes
        ]
        if not channels:
            return []
        scoped = [ctx for ctx in contexts if self.applies_to(ctx)]
        functions = index_functions(scoped)

        by_name: dict[str, list[str]] = {}
        for key, info in functions.items():
            by_name.setdefault(info.name, []).append(key)
        closure = {
            key
            for key, info in functions.items()
            if info.name == SESSION_ENTRY_POINT
        }
        worklist = list(closure)
        while worklist:
            key = worklist.pop()
            for called in functions[key].calls:
                for target in by_name.get(called, ()):
                    if target not in closure:
                        closure.add(target)
                        worklist.append(target)

        mutator_channels: dict[str, list[ParsedChannel]] = {}
        for channel in channels:
            for mutator in channel.mutators:
                mutator_channels.setdefault(mutator, []).append(channel)

        findings: list[Finding] = []
        for key in sorted(closure):
            info = functions[key]
            if info.relpath == registry.relpath:
                continue
            for child in ast.walk(info.node):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    for channel in mutator_channels.get(child.func.attr, ()):
                        chain = _attr_chain(child.func.value)
                        if not (chain & set(channel.attributes)):
                            continue
                        if key in channel.writers:
                            continue
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=info.relpath,
                                line=child.lineno,
                                symbol=info.qualname,
                                message=(
                                    f"session tick path calls channel "
                                    f"{channel.name!r} mutator "
                                    f".{child.func.attr}() outside its "
                                    "sanctioned writers "
                                    f"({', '.join(channel.writers) or 'none'})"
                                ),
                            )
                        )
                elif isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        findings.extend(
                            self._store_findings(info, key, target, channels)
                        )
        return findings

    def _store_findings(
        self,
        info: FunctionInfo,
        key: str,
        target: ast.expr,
        channels: list[ParsedChannel],
    ) -> list[Finding]:
        """Stores through a channel-attribute receiver outside its writers."""
        receiver: ast.expr | None = None
        if isinstance(target, ast.Attribute):
            receiver = target.value
        elif isinstance(target, ast.Subscript):
            receiver = target.value
        if receiver is None:
            return []
        # Bare-name receivers (a session-local dict that happens to share a
        # channel's attribute name) are out of scope; attribute receivers
        # (``self.cache.totals[...] = ...``) are in.
        if not isinstance(receiver, ast.Attribute):
            return []
        chain = _attr_chain(receiver)
        findings: list[Finding] = []
        for channel in channels:
            if not (chain & set(channel.attributes)):
                continue
            if key in channel.writers:
                continue
            findings.append(
                Finding(
                    rule=self.name,
                    path=info.relpath,
                    line=target.lineno,
                    symbol=info.qualname,
                    message=(
                        f"session tick path stores through channel "
                        f"{channel.name!r} state outside its sanctioned "
                        f"writers ({', '.join(channel.writers) or 'none'})"
                    ),
                )
            )
        return findings


class _ClockAccessVisitor(ScopeTracker):
    """Collects every mutator access on a clock-named receiver."""

    def __init__(self, mutators: frozenset[str], clock_names: frozenset[str]) -> None:
        super().__init__()
        self.mutators = mutators
        self.clock_names = clock_names
        self.accesses: list[tuple[int, str, str]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in self.mutators and (
            _attr_chain(node.value) & self.clock_names
        ):
            self.accesses.append((node.lineno, self.symbol, node.attr))
        self.generic_visit(node)


@register_rule
class ClockDisciplineRule(LintRule):
    """Only the declared drive loops may touch SimulatedClock mutators."""

    name = "sharding.clock-discipline"
    description = (
        "SimulatedClock mutators (advance/wait_until/charge/charge_metrics) "
        "may be reached only from the clock channel's sanctioned writer "
        "symbols; sessions, policies and operators may only read .now — "
        "aliasing a mutator (hop = clock.advance) counts as an access"
    )
    project_wide = True
    scope_dirs = None

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        registry = parse_channel_registry(contexts)
        if registry is None:
            return []
        clock = next(
            (
                channel
                for channel in registry.channels
                if not channel.malformed and "clock" in channel.attributes
            ),
            None,
        )
        if clock is None:
            return []
        mutators = frozenset(clock.mutators)
        clock_names = frozenset(clock.attributes)
        writers = set(clock.writers)

        findings: list[Finding] = []
        for ctx in contexts:
            if ctx.relpath == registry.relpath:
                continue
            visitor = _ClockAccessVisitor(mutators, clock_names)
            visitor.visit(ctx.tree)
            for line, symbol, mutator in visitor.accesses:
                if f"{ctx.relpath}::{symbol}" in writers:
                    continue
                findings.append(
                    Finding(
                        rule=self.name,
                        path=ctx.relpath,
                        line=line,
                        symbol=symbol,
                        message=(
                            f"clock mutator .{mutator} accessed outside the "
                            "sanctioned drive loops; only the clock "
                            "channel's writers may advance or charge the "
                            "shared clock — everything else reads .now"
                        ),
                    )
                )
        return findings


@register_rule
class PicklabilityRule(LintRule):
    """Everything declared cross_process_safe must survive pickling, and
    compiled pipelines must be reconstructible from source."""

    name = "sharding.picklability"
    description = (
        "cross_process_safe channel types and hand-off payloads may not "
        "hold lambdas, generators, bound methods, or fields of unpicklable "
        "types (transitively); exec-built pipelines must record "
        "__compiled_source__ for reconstruction"
    )
    project_wide = True
    scope_dirs = None

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        registry = parse_channel_registry(contexts)
        if registry is None:
            return []
        # Local import: exhaustiveness registers its rule on import, and
        # rules.registered_rules imports this module — the class collector
        # is shared machinery, the registries stay independent.
        from repro.analysis.exhaustiveness import (
            collect_classes,
            transitive_subclasses,
        )

        roots: set[str] = set()
        for channel in registry.channels:
            if channel.malformed or channel.discipline != "cross_process_safe":
                continue
            if channel.type_name:
                roots.add(channel.type_name)
            roots.update(channel.payload_types)

        classes = collect_classes(contexts)
        population: set[str] = set()
        for root in roots:
            if root in classes:
                population.add(root)
            population.update(transitive_subclasses(classes, root))

        findings: list[Finding] = []
        audited: set[str] = set()
        queue = sorted(population)
        while queue:
            class_name = queue.pop(0)
            if class_name in audited or class_name not in classes:
                continue
            audited.add(class_name)
            record = classes[class_name]
            referenced = self._audit_class(record, class_name, findings)
            for name in sorted(referenced):
                if name in classes and name not in audited:
                    queue.append(name)

        for ctx in contexts:
            if ctx.top_directory() == "engine":
                findings.extend(self._exec_findings(ctx))
        return findings

    def _audit_class(
        self, record: ClassRecord, class_name: str, findings: list[Finding]
    ) -> set[str]:
        """Audit one payload class; returns referenced class names to recurse."""
        node = record.node
        referenced: set[str] = set()
        method_names = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        def flag(line: int, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.name,
                    path=record.relpath,
                    line=line,
                    symbol=class_name,
                    message=message,
                )
            )

        def check_annotation(annotation: ast.expr, line: int, field: str) -> None:
            tokens = _attr_chain_from_annotation(annotation)
            for token in sorted(tokens & UNPICKLABLE_TYPE_NAMES):
                flag(
                    line,
                    f"cross-process payload field {field!r} is annotated "
                    f"with unpicklable type {token!r}; it cannot cross a "
                    "process boundary",
                )
            referenced.update(tokens - UNPICKLABLE_TYPE_NAMES)

        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                check_annotation(item.annotation, item.lineno, item.target.id)

        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(item):
                attr: str | None = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    attr = _self_attribute(stmt.targets[0])
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    attr = _self_attribute(stmt.target)
                    value = stmt.value
                    if attr is not None:
                        check_annotation(stmt.annotation, stmt.lineno, attr)
                if attr is None or value is None:
                    continue
                if isinstance(value, ast.Lambda):
                    flag(
                        value.lineno,
                        f"cross-process payload field self.{attr} holds a "
                        "lambda; closures do not pickle",
                    )
                elif isinstance(value, ast.GeneratorExp):
                    flag(
                        value.lineno,
                        f"cross-process payload field self.{attr} holds a "
                        "generator; suspended generators do not pickle",
                    )
                elif (
                    _self_attribute(value) in method_names
                    and _self_attribute(value) is not None
                ):
                    flag(
                        value.lineno,
                        f"cross-process payload field self.{attr} holds "
                        f"bound method self.{_self_attribute(value)}; bound "
                        "methods do not pickle across processes",
                    )
        return referenced

    def _exec_findings(self, ctx: RuleContext) -> list[Finding]:
        """``exec`` without a ``__compiled_source__`` record in engine code."""
        findings: list[Finding] = []

        def stores_source(function: ast.AST) -> bool:
            for child in ast.walk(function):
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "__compiled_source__"
                        ):
                            return True
            return False

        def walk(node: ast.AST, stack: list[ast.FunctionDef]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(child, stack + [child])
                    continue
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "exec"
                ):
                    if not any(stores_source(fn) for fn in stack):
                        symbol = (
                            ".".join(fn.name for fn in stack)
                            if stack
                            else "<module>"
                        )
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=ctx.relpath,
                                line=child.lineno,
                                symbol=symbol,
                                message=(
                                    "exec-built pipeline never records "
                                    "__compiled_source__; compiled code "
                                    "objects do not pickle — ship source + "
                                    "constants and rebuild on the far side"
                                ),
                            )
                        )
                walk(child, stack)

        walk(ctx.tree, [])
        return findings
