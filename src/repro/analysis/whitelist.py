"""The project whitelist: every deliberate rule violation, with its reason.

This is the complete, reviewed list of sites allowed to trip the analyzer.
All of them are the same pattern: an executor's top-level ``execute`` entry
point brackets the run with ``time.perf_counter()`` to fill the
``wall_seconds`` *reporting* field of its result object.  Wall seconds are
diagnostic output only — they never feed answers, simulated time, plan
decisions or adaptation events, so determinism of results is unaffected.

Additions here require the same scrutiny as a production code change: the
whitelist matches on exact ``(rule, path, symbol)`` and the runner reports
stale entries as findings, so this file can only ever describe violations
that actually exist.
"""

from __future__ import annotations

from repro.analysis.findings import Whitelist, WhitelistEntry

_WALL_SECONDS_REASON = (
    "documented wall-seconds reporting field; bracketed perf_counter() pair "
    "feeds diagnostics only, never answers or simulated time"
)

DEFAULT_WHITELIST_ENTRIES: tuple[WhitelistEntry, ...] = (
    WhitelistEntry(
        rule="determinism.wall-clock",
        path="engine/executor.py",
        symbol="PullExecutor.execute",
        reason=_WALL_SECONDS_REASON,
    ),
    WhitelistEntry(
        rule="determinism.wall-clock",
        path="baselines/plan_partitioning.py",
        symbol="PlanPartitioningExecutor.execute",
        reason=_WALL_SECONDS_REASON,
    ),
    WhitelistEntry(
        rule="determinism.wall-clock",
        path="baselines/static_executor.py",
        symbol="StaticExecutor.execute",
        reason=_WALL_SECONDS_REASON,
    ),
    WhitelistEntry(
        rule="determinism.wall-clock",
        path="core/complementary.py",
        symbol="PipelinedHashJoinBaseline.execute",
        reason=_WALL_SECONDS_REASON,
    ),
    WhitelistEntry(
        rule="determinism.wall-clock",
        path="core/complementary.py",
        symbol="ComplementaryJoinPair.execute",
        reason=_WALL_SECONDS_REASON,
    ),
    WhitelistEntry(
        rule="determinism.wall-clock",
        path="core/corrective.py",
        symbol="CorrectiveQueryProcessor.execute_incremental",
        reason=_WALL_SECONDS_REASON,
    ),
)


def default_whitelist() -> Whitelist:
    """A fresh :class:`Whitelist` with the project's reviewed entries."""
    return Whitelist(entries=DEFAULT_WHITELIST_ENTRIES)
