"""The project whitelist: every deliberate rule violation, with its reason.

The list is **empty**. It used to carry six ``determinism.wall-clock``
entries for the executors' bracketed ``perf_counter()`` pairs feeding their
``wall_seconds`` reporting fields; those sites now import ``wall_now`` from
:mod:`repro.io.wallclock` — the single sanctioned wall-clock surface — and
the rule itself exempts exactly the ``src/repro/io/`` package, so there is
nothing left to whitelist.

Additions here require the same scrutiny as a production code change: the
whitelist matches on exact ``(rule, path, symbol)`` and the runner reports
stale entries as findings, so this file can only ever describe violations
that actually exist.
"""

from __future__ import annotations

from repro.analysis.findings import Whitelist, WhitelistEntry

DEFAULT_WHITELIST_ENTRIES: tuple[WhitelistEntry, ...] = ()


def default_whitelist() -> Whitelist:
    """A fresh :class:`Whitelist` with the project's reviewed entries."""
    return Whitelist(entries=DEFAULT_WHITELIST_ENTRIES)
