"""Event/policy exhaustiveness: every event is handled or explicitly ignored.

The adaptivity kernel routes every :class:`AdaptationEvent` to every
registered :class:`AdaptationPolicy`'s ``observe`` hook.  A policy that
silently pattern-matches a subset of events is a trap: adding a new event
class compiles, runs, and is quietly dropped by every existing policy.

This rule enforces an explicit contract: each policy class declares

* ``handles_events`` — event class names its ``observe``/``decide`` logic
  actually consumes, and
* ``ignores_events`` — event class names it deliberately drops,

as class-level ``frozenset`` literals of strings.  The rule discovers the
event population (transitive subclasses of a class named
``AdaptationEvent``) and the policy population (transitive subclasses of
``AdaptationPolicy``, the base itself excluded) from the scanned ASTs, then
checks per policy: both declarations present, every named event exists,
handles/ignores are disjoint, their union covers the full event set, and
any event class name referenced inside the policy body is declared handled.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.rules import LintRule, RuleContext, register_rule

EVENT_BASE = "AdaptationEvent"
POLICY_BASE = "AdaptationPolicy"
DECLARATION_FIELDS = ("handles_events", "ignores_events")


@dataclass
class ClassRecord:
    """One class definition found during the scan."""

    relpath: str
    node: ast.ClassDef
    base_names: tuple[str, ...]


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def collect_classes(contexts: list[RuleContext]) -> dict[str, ClassRecord]:
    classes: dict[str, ClassRecord] = {}
    for context in contexts:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    name
                    for name in (_base_name(base) for base in node.bases)
                    if name is not None
                )
                classes[node.name] = ClassRecord(context.relpath, node, bases)
    return classes


def transitive_subclasses(
    classes: dict[str, ClassRecord], root: str
) -> dict[str, ClassRecord]:
    """Classes whose base chain reaches ``root`` (``root`` itself excluded)."""
    members: set[str] = {root}
    changed = True
    while changed:
        changed = False
        for name, record in classes.items():
            if name in members:
                continue
            if any(base in members for base in record.base_names):
                members.add(name)
                changed = True
    return {
        name: classes[name] for name in members if name != root and name in classes
    }


def _declared_name_set(node: ast.ClassDef, attr: str) -> frozenset[str] | None:
    """The string set a class-level ``attr = frozenset({...})`` declares.

    Returns ``None`` when the attribute is absent or not a literal
    ``frozenset``/``set`` of string constants.
    """
    for item in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        if not any(
            isinstance(target, ast.Name) and target.id == attr for target in targets
        ):
            continue
        names = _literal_string_set(value)
        return names
    return None


def _literal_string_set(expr: ast.expr | None) -> frozenset[str] | None:
    if expr is None:
        return None
    if isinstance(expr, ast.Call):
        func = expr.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("frozenset", "set")
            and len(expr.args) <= 1
            and not expr.keywords
        ):
            if not expr.args:
                return frozenset()
            return _literal_strings(expr.args[0])
    if isinstance(expr, ast.Set):
        return _literal_strings(expr)
    return None


def _literal_strings(expr: ast.expr) -> frozenset[str] | None:
    if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in expr.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
            else:
                return None
        return frozenset(out)
    return None


def _referenced_events(node: ast.ClassDef, events: frozenset[str]) -> dict[str, int]:
    """Event class names referenced inside the class body → first line."""
    referenced: dict[str, int] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(item):
            name: str | None = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            if name in events and name not in referenced:
                referenced[name] = getattr(child, "lineno", item.lineno)
    return referenced


@register_rule
class EventExhaustivenessRule(LintRule):
    """Every policy must handle or explicitly ignore every event class."""

    name = "exhaustiveness.event-policy"
    description = (
        "every AdaptationPolicy must declare handles_events/ignores_events "
        "frozensets whose union covers every AdaptationEvent subclass; new "
        "events cannot be silently dropped by existing policies"
    )
    project_wide = True
    scope_dirs = None  # event/policy classes are discovered wherever they live

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        classes = collect_classes(contexts)
        events = frozenset(transitive_subclasses(classes, EVENT_BASE))
        policies = transitive_subclasses(classes, POLICY_BASE)
        if not events or not policies:
            return []

        findings: list[Finding] = []
        for name in sorted(policies):
            record = policies[name]
            findings.extend(self._check_policy(record, name, events))
        return findings

    def _check_policy(
        self, record: ClassRecord, name: str, events: frozenset[str]
    ) -> list[Finding]:
        node = record.node
        findings: list[Finding] = []

        def flag(line: int, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.name,
                    path=record.relpath,
                    line=line,
                    symbol=name,
                    message=message,
                )
            )

        declared: dict[str, frozenset[str]] = {}
        for attr in DECLARATION_FIELDS:
            value = _declared_name_set(node, attr)
            if value is None:
                flag(
                    node.lineno,
                    f"policy lacks a literal frozenset declaration of {attr}; "
                    "declare which AdaptationEvent subclasses it handles or "
                    "deliberately ignores",
                )
            else:
                declared[attr] = value
        if len(declared) != len(DECLARATION_FIELDS):
            return findings

        handles = declared["handles_events"]
        ignores = declared["ignores_events"]
        for attr, value in declared.items():
            for event in sorted(value - events):
                flag(
                    node.lineno,
                    f"{attr} names unknown event class {event!r}; known "
                    f"events: {', '.join(sorted(events))}",
                )
        for event in sorted(handles & ignores):
            flag(
                node.lineno,
                f"event {event!r} appears in both handles_events and "
                "ignores_events; pick one",
            )
        for event in sorted(events - handles - ignores):
            flag(
                node.lineno,
                f"event {event!r} is neither handled nor explicitly ignored; "
                "add it to handles_events or ignores_events",
            )
        for event, line in sorted(_referenced_events(node, events).items()):
            if event not in handles:
                flag(
                    line,
                    f"policy body references event {event!r} but does not "
                    "declare it in handles_events",
                )
        return findings
