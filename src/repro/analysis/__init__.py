"""Repo-specific static analysis: determinism & invariant lint for the engine.

The analyzer encodes this reproduction's non-negotiable invariants as
AST-level lint rules (see :mod:`repro.analysis.rules` for the framework):

* ``determinism.wall-clock`` / ``determinism.module-random`` /
  ``determinism.unordered-iter`` — nondeterminism must not leak into
  engine answer paths (:mod:`repro.analysis.determinism`);
* ``accounting.uncharged-mutation`` — every operator mutation path reaches
  an ``ExecutionMetrics`` charge (:mod:`repro.analysis.accounting`);
* ``exhaustiveness.event-policy`` — every adaptation event is handled or
  explicitly ignored by every policy (:mod:`repro.analysis.exhaustiveness`);
* ``sharding.shared-channel`` / ``sharding.session-isolation`` /
  ``sharding.clock-discipline`` / ``sharding.picklability`` — the serving
  layer's sharing contract (:mod:`repro.serving.channels`) is explicit and
  honored (:mod:`repro.analysis.sharding`);
* ``effects.global-mutable`` — no module-level mutable globals outside
  reviewed idempotent caches (:mod:`repro.analysis.effects`).

:func:`repro.analysis.runner.run_lint` drives a full scan;
:mod:`repro.analysis.codegen_audit` runs the same rules over *generated*
compiled-engine source.  The ``repro-lint`` CLI subcommand and the CI
``analysis`` job gate on a clean report.
"""

from repro.analysis.findings import (
    Finding,
    PragmaIgnore,
    PragmaSet,
    Whitelist,
    WhitelistEntry,
    collect_pragmas,
)
from repro.analysis.rules import (
    LintRule,
    RuleContext,
    default_rules,
    register_rule,
    registered_rules,
)
from repro.analysis.runner import LintReport, run_lint
from repro.analysis.whitelist import DEFAULT_WHITELIST_ENTRIES, default_whitelist

__all__ = [
    "DEFAULT_WHITELIST_ENTRIES",
    "Finding",
    "LintReport",
    "LintRule",
    "PragmaIgnore",
    "PragmaSet",
    "RuleContext",
    "Whitelist",
    "WhitelistEntry",
    "collect_pragmas",
    "default_rules",
    "default_whitelist",
    "register_rule",
    "registered_rules",
    "run_lint",
]
