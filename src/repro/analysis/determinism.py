"""Determinism lint: no nondeterminism may leak into engine answer paths.

Three rules encode the reproduction's central contract — that every engine
mode produces bit-identical answers and simulated timings under a simulated
clock (see ``engine/cost.py``):

* :class:`WallClockRule` — wall-clock reads (``time.time``,
  ``time.perf_counter``, ``datetime.now`` …) are forbidden everywhere in
  the package except ``src/repro/io/``, the real-I/O fabric whose
  ``wallclock`` module is the single sanctioned wall-clock surface.
  Callers that legitimately need wall seconds (the executors' reporting
  fields, the bench harnesses) import ``repro.io.wallclock.wall_now``
  instead of ``time`` — a package-scope statement that replaced the old
  per-site whitelist entries.

* :class:`ModuleRandomRule` — drawing from the module-level ``random``
  generator (global, mutated by unrelated code) silently breaks per-seed
  reproducibility anywhere in the package; all randomness must flow through
  an explicitly seeded ``random.Random`` instance.  This generalizes the
  ad-hoc source scan the RNG audit tests used to carry.

* :class:`UnorderedIterationRule` — iterating a ``set``/``frozenset`` in a
  tuple-emit path makes tuple order (and with it float-fold order, monitor
  observations and batch boundaries) depend on hash seeding.  The rule
  tracks set provenance through local assignments and flags un-``sorted``
  iteration inside the engine's emit-path methods.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    ImportMap,
    LintRule,
    RuleContext,
    ScopeTracker,
    register_rule,
)

#: engine answer paths: directories where unordered iteration is forbidden
#: (experiments/ is the wall-clock bench harness and is deliberately out of
#: scope; workloads/, stats/, relational/ hold no tuple-emit code but are
#: still covered by the module-random rule, whose scope is the whole
#: package)
ENGINE_SCOPE = frozenset(
    {
        "engine",
        "serving",
        "adaptivity",
        "optimizer",
        "sources",
        "core",
        "baselines",
        "integration",
        "io",
    }
)

#: the one package where wall-clock reads are legal: the real-I/O fabric,
#: whose ``wallclock`` module is the sanctioned surface everything else
#: imports (see :mod:`repro.io.wallclock`)
WALLCLOCK_PACKAGE = "io"

#: attribute reads of the ``time`` module that observe the wall clock
_TIME_CALLS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)

#: constructors of ``datetime``/``date`` that read the current moment
_DATETIME_CALLS = frozenset({"now", "utcnow", "today"})

#: draw / state methods of the module-level ``random`` generator.  Anything
#: except ``random.Random(seed)`` construction (and the distribution class
#: constructors that take explicit generators) is a reproducibility hazard.
_RANDOM_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "expovariate",
        "betavariate",
        "gammavariate",
        "lognormvariate",
        "paretovariate",
        "vonmisesvariate",
        "normalvariate",
        "weibullvariate",
        "binomialvariate",
        "seed",
        "getrandbits",
        "randbytes",
        "triangular",
        "getstate",
        "setstate",
    }
)


def _root_name(node: ast.expr) -> str | None:
    """The leftmost ``Name`` of an attribute chain (``a`` for ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class WallClockRule(LintRule):
    """Forbid wall-clock reads everywhere except the real-I/O package."""

    name = "determinism.wall-clock"
    description = (
        "only src/repro/io/ may read the wall clock; everything else "
        "derives timing from the SimulatedClock (or imports "
        "repro.io.wallclock for wall-seconds reporting) so answers and "
        "simulated seconds are machine-independent"
    )
    scope_dirs = None  # package-wide, minus the sanctioned io/ exemption

    def applies_to(self, context: RuleContext) -> bool:
        return context.top_directory() != WALLCLOCK_PACKAGE

    def check_module(self, context: RuleContext) -> list[Finding]:
        imports = ImportMap.collect(
            context.tree, frozenset({"time", "datetime"})
        )
        rule = self

        class Visitor(ScopeTracker):
            def __init__(self) -> None:
                super().__init__()
                self.findings: list[Finding] = []

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute):
                    root = _root_name(func.value)
                    module = imports.modules.get(root or "")
                    member = imports.members.get(root or "")
                    if module == "time" and func.attr in _TIME_CALLS:
                        self._flag(node, f"time.{func.attr}()")
                    elif func.attr in _DATETIME_CALLS and (
                        module == "datetime"
                        or (
                            member is not None
                            and member[0] == "datetime"
                            and member[1] in ("datetime", "date")
                        )
                    ):
                        self._flag(node, f"datetime {func.attr}()")
                elif isinstance(func, ast.Name):
                    member = imports.members.get(func.id)
                    if member is not None and member[0] == "time":
                        if member[1] in _TIME_CALLS:
                            self._flag(node, f"time.{member[1]}()")
                self.generic_visit(node)

            def _flag(self, node: ast.Call, what: str) -> None:
                self.findings.append(
                    rule.finding(
                        context,
                        node,
                        self.symbol,
                        f"{what} reads the wall clock outside src/repro/io/; "
                        "derive timing from the SimulatedClock, or import "
                        "repro.io.wallclock for a wall-seconds reporting "
                        "field",
                    )
                )

        visitor = Visitor()
        visitor.visit(context.tree)
        return visitor.findings


@register_rule
class ModuleRandomRule(LintRule):
    """Forbid draws from the module-level ``random`` generator anywhere."""

    name = "determinism.module-random"
    description = (
        "all randomness must flow through an explicitly seeded "
        "random.Random instance; the module-level generator's state is "
        "global and breaks per-seed reproducibility"
    )
    scope_dirs = None  # whole package

    def check_module(self, context: RuleContext) -> list[Finding]:
        imports = ImportMap.collect(context.tree, frozenset({"random"}))
        rule = self

        class Visitor(ScopeTracker):
            def __init__(self) -> None:
                super().__init__()
                self.findings: list[Finding] = []

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    if (
                        imports.modules.get(func.value.id) == "random"
                        and func.attr in _RANDOM_DRAWS
                    ):
                        self._flag(node, f"random.{func.attr}()")
                elif isinstance(func, ast.Name):
                    member = imports.members.get(func.id)
                    if (
                        member is not None
                        and member[0] == "random"
                        and member[1] in _RANDOM_DRAWS
                    ):
                        self._flag(node, f"random.{member[1]}()")
                self.generic_visit(node)

            def _flag(self, node: ast.Call, what: str) -> None:
                self.findings.append(
                    rule.finding(
                        context,
                        node,
                        self.symbol,
                        f"{what} draws from the shared module-level random "
                        "generator; route it through a seeded random.Random "
                        "instance",
                    )
                )

        visitor = Visitor()
        visitor.visit(context.tree)
        return visitor.findings


#: methods on the tuple-emit path: everything between a source read and the
#: final sink, where iteration order becomes tuple order (and therefore
#: float-fold order, batch boundaries and monitor observations)
EMIT_PATH_METHODS = frozenset(
    {
        "push",
        "push_batch",
        "_emit",
        "emit",
        "process_batch",
        "step",
        "step_batch",
        "run_chunk",
        "run_to_completion",
        "read_batch",
        "read_zero_batch",
        "insert",
        "insert_batch",
        "probe",
        "probe_batch",
        "accumulate",
        "accumulate_batch",
        "accumulate_many",
        "results",
        "scan",
        "drain",
        "stitch_up",
        "next_tuple",
        "route",
        "route_batch",
        "adapt",
        "adapt_many",
    }
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_ITERATING_BUILTINS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


@register_rule
class UnorderedIterationRule(LintRule):
    """Flag un-``sorted`` iteration over sets inside tuple-emit methods."""

    name = "determinism.unordered-iter"
    description = (
        "iterating a set/frozenset in a tuple-emit path makes tuple order "
        "depend on hash seeding; wrap the iteration in sorted(...) or use "
        "an insertion-ordered structure"
    )
    scope_dirs = ENGINE_SCOPE

    def check_module(self, context: RuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                class_name = node.name
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name in EMIT_PATH_METHODS
                    ):
                        findings.extend(
                            self._check_function(
                                context, item, f"{class_name}.{item.name}"
                            )
                        )
        return findings

    def _check_function(
        self,
        context: RuleContext,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        symbol: str,
    ) -> list[Finding]:
        findings: list[Finding] = []
        set_names: set[str] = set()

        def is_set_expr(expr: ast.expr) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in set_names
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                    return True
                if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                    return is_set_expr(func.value)
                return False
            if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
            ):
                return is_set_expr(expr.left) or is_set_expr(expr.right)
            if isinstance(expr, ast.Attribute):
                # Known set-typed attributes of this codebase's operators
                # (``relations`` itself is ambiguous: a tuple on SPJAQuery,
                # a frozenset on join nodes — too coarse to flag by name).
                return expr.attr in ("left_relations", "right_relations")
            return False

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    context,
                    node,
                    symbol,
                    f"{what} iterates an unordered set in a tuple-emit path; "
                    "wrap it in sorted(...) or keep an insertion-ordered "
                    "structure",
                )
            )

        # One linear pass: set provenance flows forward through assignments
        # (a function-local approximation; reassignments to non-set values
        # clear the mark).
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if is_set_expr(node.value):
                            set_names.add(target.id)
                        else:
                            set_names.discard(target.id)
        for node in ast.walk(function):
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                flag(node, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        flag(node, "comprehension")
            elif isinstance(node, ast.DictComp):
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        flag(node, "comprehension")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ITERATING_BUILTINS
                and node.args
                and is_set_expr(node.args[0])
            ):
                flag(node, f"{node.func.id}(...)")
        return findings
