"""The lint runner: scan a package tree, apply every rule, fold in the whitelist.

:func:`run_lint` walks the package root (``src/repro`` by default), parses
every ``*.py`` file, runs all registered per-module and project-wide rules,
and splits the raw findings into *active* findings and *suppressed* ones
(matched by the whitelist).  Whitelist entries that matched nothing are
themselves reported as findings under the ``whitelist.stale-entry`` rule —
a whitelist must describe exactly the violations that exist.

The CI gate and the ``repro-lint`` CLI both call :func:`run_lint` and fail
on any active finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import (
    Finding,
    PragmaIgnore,
    PragmaSet,
    Whitelist,
    WhitelistEntry,
    collect_pragmas,
)
from repro.analysis.rules import LintRule, RuleContext, default_rules
from repro.analysis.whitelist import default_whitelist

STALE_ENTRY_RULE = "whitelist.stale-entry"
STALE_PRAGMA_RULE = "pragma.stale-ignore"

#: directories under the scan root that the analyzer never reads: the bench
#: harness is wall-clock instrumentation by design
EXCLUDED_TOP_DIRS = frozenset({"experiments"})


def package_root() -> Path:
    """The ``src/repro`` directory this module lives in."""
    return Path(__file__).resolve().parent.parent


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, WhitelistEntry | PragmaIgnore]] = field(
        default_factory=list
    )
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"repro-lint: {self.files_scanned} files, "
            f"{len(self.rules_run)} rules, "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        ]
        for finding in self.findings:
            lines.append("  " + finding.render())
        for finding, entry in self.suppressed:
            lines.append(f"  [suppressed] {finding.location()} {entry.render()}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        """The machine-readable report shape of ``--format json``.

        A finding is ``{rule, path, line, symbol, message}``; suppressed
        findings additionally carry how they were suppressed.  The shape is
        part of the CLI contract (CI uploads it as an artifact), so changes
        here are interface changes.
        """
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [
                {**finding.as_dict(), "suppressed_by": entry.render()}
                for finding, entry in self.suppressed
            ],
        }


def load_contexts(root: Path, excluded: frozenset[str] = EXCLUDED_TOP_DIRS) -> list[RuleContext]:
    """Parse every ``*.py`` under ``root`` into rule contexts, sorted by path."""
    contexts: list[RuleContext] = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        head, _, _ = relpath.partition("/")
        if "/" in relpath and head in excluded:
            continue
        contexts.append(RuleContext.from_source(relpath, path.read_text()))
    return contexts


def apply_rules(
    contexts: list[RuleContext], rules: list[LintRule]
) -> list[Finding]:
    """All raw findings of ``rules`` over ``contexts`` (whitelist not applied)."""
    findings: list[Finding] = []
    for rule in rules:
        if rule.project_wide:
            findings.extend(rule.check_project(contexts))
        else:
            for context in contexts:
                if rule.applies_to(context):
                    findings.extend(rule.check_module(context))
    return sorted(findings)


def run_lint(
    root: Path | None = None,
    *,
    rules: list[LintRule] | None = None,
    whitelist: Whitelist | None = None,
) -> LintReport:
    """Run the full analyzer over ``root`` (default: the installed package)."""
    scan_root = package_root() if root is None else root
    active_rules = default_rules() if rules is None else rules
    active_whitelist = default_whitelist() if whitelist is None else whitelist
    active_whitelist.reset()

    contexts = load_contexts(scan_root)
    raw = apply_rules(contexts, active_rules)
    pragmas = PragmaSet(
        pragmas=tuple(
            pragma
            for ctx in contexts
            for pragma in collect_pragmas(ctx.relpath, ctx.source)
        )
    )

    report = LintReport(
        files_scanned=len(contexts),
        rules_run=tuple(rule.name for rule in active_rules),
    )
    for finding in raw:
        suppressor: WhitelistEntry | PragmaIgnore | None
        suppressor = pragmas.suppresses(finding)
        if suppressor is None:
            suppressor = active_whitelist.suppresses(finding)
        if suppressor is None:
            report.findings.append(finding)
        else:
            report.suppressed.append((finding, suppressor))
    for pragma in pragmas.stale_pragmas():
        report.findings.append(
            Finding(
                rule=STALE_PRAGMA_RULE,
                path=pragma.path,
                line=pragma.line,
                symbol="<pragma>",
                message=(
                    f"inline pragma ignore[{pragma.rule}] suppressed nothing; "
                    "the violation it exempted no longer exists — delete the "
                    "pragma"
                ),
            )
        )
    for entry in active_whitelist.stale_entries():
        report.findings.append(
            Finding(
                rule=STALE_ENTRY_RULE,
                path=entry.path,
                line=0,
                symbol=entry.symbol,
                message=(
                    f"whitelist entry for rule {entry.rule!r} suppressed "
                    "nothing; the violation it described no longer exists — "
                    "delete the entry"
                ),
            )
        )
    report.findings.sort()
    return report
