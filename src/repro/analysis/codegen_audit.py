"""Compiled-codegen audit: lint the engine's *generated* source, not just files.

The compiled engine (:mod:`repro.engine.compiled`) builds fused per-leaf
batch chains with ``exec`` — source that exists only at runtime and that the
file-walking analyzer therefore never sees.  This module closes that gap: it
generates pipelines for a seeded corpus of plans (drawn from the same
population as the differential suites, via
:func:`repro.workloads.differential.generate_workload`), collects every
generated chain's ``__compiled_source__`` (and every generated group-by
fold's), and audits the generated ASTs:

* **accounting** — each chain must end in one *unconditional* top-level
  ``_charge(...)`` call carrying the full counter set (the deferred
  ``charge_batch`` of the interpreted group body), and each fold must charge
  ``aggregate_updates`` / bump ``tuples_consumed`` unconditionally;
* **determinism** — the determinism lint rules run over the generated
  module, and no generated line may reference wall-clock, random, or
  unordered-collection constructors at all (generated code touches only
  env-bound names and a tiny builtin allow-list);
* **purity** — every predicate the chain evaluates (selection and residual
  filters) must be a *pure expression*: comparisons, boolean algebra and
  constant-index subscripts over the row, with calls permitted only to
  env-bound predicate closures (``_f0`` / ``_p0`` names — the opaque
  degradation path of :func:`repro.engine.compiled.predicate_source`).

The corpus deliberately covers both predicate styles (inline comparison
trees and opaque closures) and both join-node kinds (hash and forced-merge
chains); :class:`CodegenAuditReport` carries the coverage counters so the
test suite and the CI gate can assert breadth, not just cleanliness.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace

from repro.analysis.accounting import _charges_directly
from repro.analysis.determinism import ModuleRandomRule, WallClockRule
from repro.analysis.findings import Finding
from repro.analysis.rules import RuleContext
from repro.engine.compiled import compile_plan_chains
from repro.engine.operators.aggregate import GroupAccumulator
from repro.engine.pipelined import PipelinedPlan, SourceCursor
from repro.optimizer.ordering import JoinStrategy
from repro.optimizer.plans import JoinTree
from repro.relational.expressions import Predicate
from repro.workloads.differential import generate_workload

RULE_ACCOUNTING = "codegen.uncharged-chain"
RULE_DETERMINISM = "codegen.nondeterministic-source"
RULE_PURITY = "codegen.impure-predicate"

#: the full counter set the fused chain's deferred charge must carry
CHARGE_KEYWORDS = frozenset(
    {
        "tuples_read",
        "predicate_evals",
        "hash_inserts",
        "hash_probes",
        "tuple_copies",
        "tuples_output",
    }
)

#: names generated code must never reference — anything on this list inside
#: a fused chain would smuggle nondeterminism past the file-level lint
BANNED_GENERATED_NAMES = frozenset(
    {"time", "random", "datetime", "set", "frozenset", "globals", "locals"}
)

#: env-bound callables of predicate_source: _f0 (scalar/binary closures),
#: _p0 (opaque predicate fallback); merge stages are _m0 but sit outside
#: predicate expressions
_PURE_CALL_NAME = re.compile(r"^_[fp]\d+$")
_ENV_NAME = re.compile(r"^_[a-z]+\d+$")


@dataclass(frozen=True)
class OpaquePredicate(Predicate):
    """Wrapper denying the source emitter structural knowledge of ``inner``.

    ``predicate_source`` does not recognize the type, so it degrades to the
    opaque path: the compiled closure is bound into the env and the emitted
    expression is a ``_p<N>(row)`` call — semantically identical, opaque to
    inlining.  The audit corpus uses it to exercise that degradation on
    real workload predicates.
    """

    inner: Predicate

    def compile(self, schema):
        return self.inner.compile(schema)

    def attributes(self):
        return self.inner.attributes()

    def estimated_selectivity(self) -> float:
        return self.inner.estimated_selectivity()


@dataclass
class CodegenAuditReport:
    """Outcome and coverage of one generated-pipeline audit sweep."""

    pipelines_audited: int = 0
    chains_audited: int = 0
    folds_audited: int = 0
    hash_pipelines: int = 0
    merge_pipelines: int = 0
    inline_predicate_chains: int = 0
    opaque_predicate_chains: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"codegen-audit: {self.pipelines_audited} pipelines "
            f"({self.hash_pipelines} hash, {self.merge_pipelines} merge), "
            f"{self.chains_audited} chains "
            f"({self.inline_predicate_chains} inline-predicate, "
            f"{self.opaque_predicate_chains} opaque-predicate), "
            f"{self.folds_audited} folds, {len(self.findings)} finding(s)"
        ]
        lines.extend("  " + finding.render() for finding in self.findings)
        return "\n".join(lines)


def _pure_expression_violation(expr: ast.expr) -> str | None:
    """Why ``expr`` is not a pure predicate expression (``None`` if pure)."""
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            reason = _pure_expression_violation(value)
            if reason:
                return reason
        return None
    if isinstance(expr, ast.UnaryOp):
        return _pure_expression_violation(expr.operand)
    if isinstance(expr, ast.BinOp):
        reason = _pure_expression_violation(expr.left)
        return reason or _pure_expression_violation(expr.right)
    if isinstance(expr, ast.Compare):
        for value in [expr.left, *expr.comparators]:
            reason = _pure_expression_violation(value)
            if reason:
                return reason
        return None
    if isinstance(expr, ast.Constant):
        return None
    if isinstance(expr, ast.Name):
        if expr.id == "row" or _ENV_NAME.match(expr.id):
            return None
        return f"free name {expr.id!r}"
    if isinstance(expr, ast.Subscript):
        if not isinstance(expr.value, ast.Name) or expr.value.id != "row":
            return f"subscript of non-row expression {ast.unparse(expr.value)!r}"
        if not (
            isinstance(expr.slice, ast.Constant)
            and isinstance(expr.slice.value, int)
        ):
            return f"non-constant row index {ast.unparse(expr.slice)!r}"
        return None
    if isinstance(expr, ast.Call):
        func = expr.func
        if not (isinstance(func, ast.Name) and _PURE_CALL_NAME.match(func.id)):
            return f"call to non-env-bound callable {ast.unparse(func)!r}"
        if expr.keywords:
            return f"keyword arguments in predicate call {func.id}"
        for arg in expr.args:
            reason = _pure_expression_violation(arg)
            if reason:
                return reason
        return None
    return f"disallowed expression node {type(expr).__name__}"


def _function_def(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _predicate_filters(function: ast.FunctionDef) -> list[ast.expr]:
    """The ``if`` conditions of the chain's selection/residual list-comps."""
    filters: list[ast.expr] = []
    for node in ast.walk(function):
        if isinstance(node, ast.ListComp):
            for generator in node.generators:
                filters.extend(generator.ifs)
    return filters


def audit_chain_source(src: str, label: str) -> list[Finding]:
    """Audit one fused chain's generated source; returns its findings."""
    findings: list[Finding] = []

    def flag(rule: str, line: int, message: str) -> None:
        findings.append(
            Finding(rule=rule, path=label, line=line, symbol="_chain", message=message)
        )

    tree = ast.parse(src)
    function = _function_def(tree, "_chain")
    if function is None:
        flag(RULE_ACCOUNTING, 1, "generated source defines no _chain function")
        return findings

    # -- accounting: one unconditional, final _charge call with full counters
    charge_calls = [
        stmt
        for stmt in function.body
        if isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == "_charge"
    ]
    if len(charge_calls) != 1:
        flag(
            RULE_ACCOUNTING,
            function.lineno,
            f"expected exactly one top-level _charge(...) call, found "
            f"{len(charge_calls)}",
        )
    else:
        charge = charge_calls[0]
        if function.body[-1] is not charge:
            flag(
                RULE_ACCOUNTING,
                charge.lineno,
                "_charge(...) is not the chain's final statement; paths after "
                "it could do uncharged work",
            )
        assert isinstance(charge.value, ast.Call)
        keywords = {kw.arg for kw in charge.value.keywords if kw.arg}
        missing = CHARGE_KEYWORDS - keywords
        if missing:
            flag(
                RULE_ACCOUNTING,
                charge.lineno,
                f"_charge(...) omits counters: {', '.join(sorted(missing))}",
            )
    if not _charges_directly(function):
        flag(
            RULE_ACCOUNTING,
            function.lineno,
            "chain body never reaches an ExecutionMetrics charge",
        )

    # -- determinism: file-level rules over the generated module, plus the
    # stricter no-banned-names check (generated code binds everything it
    # needs through the env, so these names have no business appearing)
    context = RuleContext(relpath="engine/<generated>.py", source=src, tree=tree)
    for rule in (WallClockRule(), ModuleRandomRule()):
        for finding in rule.check_module(context):
            flag(RULE_DETERMINISM, finding.line, finding.message)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and node.id in BANNED_GENERATED_NAMES:
            flag(
                RULE_DETERMINISM,
                node.lineno,
                f"generated chain references banned name {node.id!r}",
            )

    # -- purity: every evaluated predicate is a pure expression
    for condition in _predicate_filters(function):
        reason = _pure_expression_violation(condition)
        if reason:
            flag(
                RULE_PURITY,
                condition.lineno,
                f"impure predicate expression "
                f"{ast.unparse(condition)!r}: {reason}",
            )
    return findings


def audit_fold_source(src: str, label: str) -> list[Finding]:
    """Audit one generated group-by fold's source."""
    findings: list[Finding] = []

    def flag(rule: str, line: int, message: str) -> None:
        findings.append(
            Finding(rule=rule, path=label, line=line, symbol="_fold", message=message)
        )

    tree = ast.parse(src)
    function = _function_def(tree, "_fold")
    if function is None:
        flag(RULE_ACCOUNTING, 1, "generated source defines no _fold function")
        return findings

    def _unconditional_augassign(attr: str) -> bool:
        for stmt in function.body:
            if (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Attribute)
                and stmt.target.attr == attr
            ):
                return True
        return False

    if not _unconditional_augassign("aggregate_updates"):
        flag(
            RULE_ACCOUNTING,
            function.lineno,
            "fold never unconditionally charges metrics.aggregate_updates",
        )
    if not _unconditional_augassign("tuples_consumed"):
        flag(
            RULE_ACCOUNTING,
            function.lineno,
            "fold never unconditionally bumps the accumulator's tuples_consumed",
        )
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and node.id in BANNED_GENERATED_NAMES:
            flag(
                RULE_DETERMINISM,
                node.lineno,
                f"generated fold references banned name {node.id!r}",
            )
    return findings


def _compiled_plan(workload, tree, *, opaque: bool, merge: bool) -> PipelinedPlan:
    query = workload.query
    if opaque and query.selections:
        query = replace(
            query,
            selections={
                relation: OpaquePredicate(predicate)
                for relation, predicate in query.selections.items()
            },
        )
    strategies = None
    if merge:
        strategies = {
            node.relations(): JoinStrategy(algorithm="merge", direction=1)
            for node in tree.internal_nodes()
        }
    cursors = {
        name: SourceCursor(name, relation)
        for name, relation in workload.relations.items()
    }
    return PipelinedPlan(
        query,
        tree,
        cursors,
        output_sink=lambda row: None,
        batch_size=16,
        join_strategies=strategies,
        engine_mode="compiled",
    )


DEFAULT_SEEDS = tuple(range(16))


def audit_generated_pipelines(seeds: tuple[int, ...] = DEFAULT_SEEDS) -> CodegenAuditReport:
    """Generate and audit compiled pipelines for the seeded plan corpus.

    Per seed, a hash pipeline is always audited and — when the plan has join
    nodes — a forced-merge pipeline too; odd seeds get their selection
    predicates wrapped opaque.  Aggregating workloads additionally
    contribute their generated group-by fold.
    """
    report = CodegenAuditReport()
    for seed in seeds:
        workload = generate_workload(seed)
        query = workload.query
        tree = JoinTree.left_deep(query.relations)
        opaque = bool(seed % 2)
        variants = [("hash", False)]
        if any(True for _ in tree.internal_nodes()):
            variants.append(("merge", True))
        for kind, merge in variants:
            plan = _compiled_plan(workload, tree, opaque=opaque, merge=merge)
            chains = compile_plan_chains(plan)
            report.pipelines_audited += 1
            if merge:
                report.merge_pipelines += 1
            else:
                report.hash_pipelines += 1
            for relation, chain in sorted(chains.items()):
                label = f"<compiled seed={seed} {kind} leaf={relation}>"
                src = chain.__compiled_source__
                report.chains_audited += 1
                has_selection = relation in plan.query.selections
                if has_selection and opaque:
                    report.opaque_predicate_chains += 1
                elif has_selection:
                    report.inline_predicate_chains += 1
                report.findings.extend(audit_chain_source(src, label))
            if not merge and query.aggregation is not None:
                accumulator = GroupAccumulator(
                    plan.output_schema,
                    query.aggregation.group_attributes,
                    query.aggregation.aggregates,
                )
                fold = accumulator.make_batch_fold()
                if fold is not None:
                    report.folds_audited += 1
                    report.findings.extend(
                        audit_fold_source(
                            fold.__compiled_source__,
                            f"<fold seed={seed}>",
                        )
                    )
    report.findings.sort()
    return report
