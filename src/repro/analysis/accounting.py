"""Work-accounting audit: every operator mutation path must charge work.

The deferred-charging invariant documented in ``engine/cost.py`` says that
all engine work — tuple reads, hash inserts/probes, comparisons, predicate
evaluations, copies, aggregate folds, outputs — reaches the shared
:class:`~repro.engine.cost.ExecutionMetrics` counters, either per tuple
(``metrics.hash_inserts += n``) or per batch (``charge_batch``).  Uncharged
work would silently desynchronize the simulated clock between engine modes
and break the bit-identity contract the differential suites pin.

This rule checks the invariant statically over the ``engine/`` package:

1. It indexes every function, records which ones **charge directly**
   (an augmented assignment to a metrics counter, or a call to
   ``charge`` / ``charge_batch`` / ``charge_metrics``), and propagates
   charging through the call graph (resolved by callee name — an
   over-approximation that is cheap and stable).

2. Every *operator mutation entry point* — the ``push`` / ``push_batch`` /
   ``process_batch`` / ``_emit`` / ``accumulate*`` methods through which
   tuples mutate operator state — must reach a charge.

3. Every call site of a **state-structure mutation** (``insert``,
   ``insert_batch``, ``add_count``) outside ``engine/state/`` must sit in a
   charging function: state structures deliberately do not self-charge
   (batched and tuple-at-a-time modes charge differently), so the operator
   that drives them must.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.rules import LintRule, RuleContext, register_rule

#: the ExecutionMetrics counter fields (mirrors engine/cost.py)
COUNTER_FIELDS = frozenset(
    {
        "tuples_read",
        "hash_inserts",
        "hash_probes",
        "comparisons",
        "predicate_evals",
        "tuple_copies",
        "aggregate_updates",
        "tuples_output",
        "batches_read",
    }
)

#: call targets that apply charges
CHARGE_CALLS = frozenset({"charge", "charge_batch", "charge_metrics", "_charge"})

#: operator-level mutation entry points that must reach a charge
MUTATION_ENTRY_POINTS = frozenset(
    {
        "push",
        "push_batch",
        "process_batch",
        "_emit",
        "accumulate",
        "accumulate_batch",
        "accumulate_many",
    }
)

#: state-structure mutators whose call sites must sit in charging functions
STATE_MUTATORS = frozenset({"insert", "insert_batch", "add_count"})


@dataclass
class FunctionInfo:
    """One indexed function of the audited package."""

    relpath: str
    qualname: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    charges_directly: bool = False
    calls: set[str] = field(default_factory=set)


def _is_metrics_expr(expr: ast.expr) -> bool:
    """Does ``expr`` denote a metrics object (``metrics``/``self.metrics``)?"""
    if isinstance(expr, ast.Name):
        return expr.id in ("metrics", "_metrics")
    if isinstance(expr, ast.Attribute):
        return expr.attr in ("metrics", "_metrics")
    return False


def _charges_directly(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.AugAssign):
            target = child.target
            if (
                isinstance(target, ast.Attribute)
                and target.attr in COUNTER_FIELDS
                and _is_metrics_expr(target.value)
            ):
                return True
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute) and func.attr in CHARGE_CALLS:
                return True
            if isinstance(func, ast.Name) and func.id in CHARGE_CALLS:
                return True
    return False


def _called_names(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute):
                names.add(func.attr)
            elif isinstance(func, ast.Name):
                names.add(func.id)
    return names


def index_functions(contexts: list[RuleContext]) -> dict[str, FunctionInfo]:
    """Qualname → info for every function in ``contexts`` (nested included)."""
    functions: dict[str, FunctionInfo] = {}
    for context in contexts:
        stack: list[str] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    stack.append(child.name)
                    visit(child)
                    stack.pop()
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = ".".join(stack + [child.name])
                    info = FunctionInfo(
                        relpath=context.relpath,
                        qualname=qualname,
                        name=child.name,
                        node=child,
                        charges_directly=_charges_directly(child),
                        calls=_called_names(child),
                    )
                    functions[f"{context.relpath}::{qualname}"] = info
                    stack.append(child.name)
                    visit(child)
                    stack.pop()
                else:
                    visit(child)

        visit(context.tree)
    return functions


def charging_closure(functions: dict[str, FunctionInfo]) -> set[str]:
    """Keys of all functions that (transitively) reach a charge.

    Call edges resolve a called name to *every* function with that bare
    name — an over-approximation, acceptable because the engine's mutation
    methods have unambiguous names and the check errs toward silence only
    when an unrelated same-named function charges.
    """
    by_name: dict[str, list[str]] = {}
    for key, info in functions.items():
        by_name.setdefault(info.name, []).append(key)
    charging = {key for key, info in functions.items() if info.charges_directly}
    changed = True
    while changed:
        changed = False
        for key, info in functions.items():
            if key in charging:
                continue
            for called in info.calls:
                if any(target in charging for target in by_name.get(called, ())):
                    charging.add(key)
                    changed = True
                    break
    return charging


@register_rule
class WorkAccountingRule(LintRule):
    """Every operator state mutation path must reach an ExecutionMetrics charge."""

    name = "accounting.uncharged-mutation"
    description = (
        "operator mutation entry points (push/push_batch/process_batch/"
        "accumulate*) and state-mutator call sites must reach an "
        "ExecutionMetrics counter update or charge_batch call"
    )
    project_wide = True
    scope_dirs = frozenset({"engine"})

    #: passive state/channel structures account at the operator level by
    #: design: engine/state/ holds the join-state structures, and TupleQueue
    #: is the inter-subplan channel whose enqueues are charged as
    #: tuple_copies by the Split/Combine operators driving it
    exempt_path_prefixes: tuple[str, ...] = (
        "engine/state/",
        "engine/operators/queue.py",
    )

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        scoped = [ctx for ctx in contexts if self.applies_to(ctx)]
        functions = index_functions(scoped)
        charging = charging_closure(functions)
        findings: list[Finding] = []

        for key, info in sorted(functions.items()):
            if info.relpath.startswith(self.exempt_path_prefixes):
                continue
            if info.name in MUTATION_ENTRY_POINTS and key not in charging:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=info.relpath,
                        line=info.node.lineno,
                        symbol=info.qualname,
                        message=(
                            f"mutation entry point {info.name}() never reaches "
                            "an ExecutionMetrics charge (counter update or "
                            "charge_batch); uncharged work desynchronizes the "
                            "simulated clock between engine modes"
                        ),
                    )
                )

        # State-mutator call sites outside engine/state/ must charge.
        by_context = {ctx.relpath: ctx for ctx in scoped}
        for key, info in sorted(functions.items()):
            if info.relpath.startswith(self.exempt_path_prefixes):
                continue
            if key in charging:
                continue
            for child in ast.walk(info.node):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in STATE_MUTATORS
                ):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=info.relpath,
                            line=child.lineno,
                            symbol=info.qualname,
                            message=(
                                f"call to state mutator .{child.func.attr}() "
                                "in a function that never reaches an "
                                "ExecutionMetrics charge"
                            ),
                        )
                    )
        del by_context
        return findings
