"""Findings and the whitelist mechanism of the static analyzer.

A :class:`Finding` is one rule violation pinned to a file and line.  A
:class:`Whitelist` is the *only* sanctioned way to ship code that trips a
rule: each :class:`WhitelistEntry` names the rule, the file and the exact
enclosing symbol it suppresses, plus a human-readable reason.  Matching is
deliberately line-independent (symbols move, invariants don't) and exact —
no globs — so a whitelist entry can never silently widen.  Entries that
suppress nothing are *stale* and reported as findings themselves: the
whitelist must describe exactly the violations that exist, no more.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location.

    ``path`` is the file's posix-style path relative to the scan root
    (``engine/executor.py``); ``symbol`` is the dotted enclosing scope
    (``PipelinedExecutor.execute``, or ``<module>`` at module level) —
    whitelist entries match on ``(rule, path, symbol)``.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.symbol}: {self.message}"


@dataclass(frozen=True)
class WhitelistEntry:
    """Suppresses findings of one rule at one (file, symbol) pair."""

    rule: str
    path: str
    symbol: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and finding.symbol == self.symbol
        )

    def render(self) -> str:
        return f"{self.path} [{self.rule}] {self.symbol}: {self.reason}"


@dataclass
class Whitelist:
    """An ordered collection of whitelist entries with usage tracking."""

    entries: tuple[WhitelistEntry, ...] = ()
    _used: set[WhitelistEntry] = field(default_factory=set, repr=False)

    def suppresses(self, finding: Finding) -> WhitelistEntry | None:
        """The entry suppressing ``finding``, or ``None``; records usage."""
        for entry in self.entries:
            if entry.matches(finding):
                self._used.add(entry)
                return entry
        return None

    def stale_entries(self) -> tuple[WhitelistEntry, ...]:
        """Entries that suppressed nothing in the run(s) seen so far."""
        return tuple(entry for entry in self.entries if entry not in self._used)

    def reset(self) -> None:
        self._used.clear()
