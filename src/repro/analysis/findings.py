"""Findings, the whitelist, and inline pragma suppression of the analyzer.

A :class:`Finding` is one rule violation pinned to a file and line.  Two
sanctioned ways exist to ship code that trips a rule:

* the central :class:`Whitelist` — each :class:`WhitelistEntry` names the
  rule, the file and the exact enclosing symbol it suppresses, plus a
  human-readable reason.  Matching is deliberately line-independent
  (symbols move, invariants don't) and exact — no globs — so a whitelist
  entry can never silently widen;
* an inline ``# lint: ignore[rule-name]`` pragma on the offending line
  (:class:`PragmaIgnore`) — scoped to exactly that line of that file, for
  one-off exemptions that would otherwise accrete in the central list.

Both are kept honest the same way: entries/pragmas that suppress nothing
are *stale* and reported as findings themselves — the suppression surface
must describe exactly the violations that exist, no more.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location.

    ``path`` is the file's posix-style path relative to the scan root
    (``engine/executor.py``); ``symbol`` is the dotted enclosing scope
    (``PipelinedExecutor.execute``, or ``<module>`` at module level) —
    whitelist entries match on ``(rule, path, symbol)``.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.symbol}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        """The machine-readable shape of one finding (``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass(frozen=True)
class WhitelistEntry:
    """Suppresses findings of one rule at one (file, symbol) pair."""

    rule: str
    path: str
    symbol: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and finding.symbol == self.symbol
        )

    def render(self) -> str:
        return f"{self.path} [{self.rule}] {self.symbol}: {self.reason}"


@dataclass
class Whitelist:
    """An ordered collection of whitelist entries with usage tracking."""

    entries: tuple[WhitelistEntry, ...] = ()
    _used: set[WhitelistEntry] = field(default_factory=set, repr=False)

    def suppresses(self, finding: Finding) -> WhitelistEntry | None:
        """The entry suppressing ``finding``, or ``None``; records usage."""
        for entry in self.entries:
            if entry.matches(finding):
                self._used.add(entry)
                return entry
        return None

    def stale_entries(self) -> tuple[WhitelistEntry, ...]:
        """Entries that suppressed nothing in the run(s) seen so far."""
        return tuple(entry for entry in self.entries if entry not in self._used)

    def reset(self) -> None:
        self._used.clear()


#: the inline suppression syntax (several rules may be listed
#: comma-separated); scoped to exactly the line it's on.  Matching is
#: anchored at the start of a *comment token*, so prose that merely
#: mentions the syntax — docstrings, doc-comments — never registers.
PRAGMA_PATTERN = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_.,\- ]+)\]")


@dataclass(frozen=True)
class PragmaIgnore:
    """One inline pragma suppression: (path, line, rule)."""

    path: str
    line: int
    rule: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and finding.line == self.line
        )

    def render(self) -> str:
        return f"{self.path}:{self.line} inline pragma ignore[{self.rule}]"


def collect_pragmas(path: str, source: str) -> tuple[PragmaIgnore, ...]:
    """Every inline ignore pragma of one module, in line order.

    Pragmas are read from comment tokens (not raw lines), so string
    literals and docstrings that *describe* the syntax don't register as
    suppressions.
    """
    pragmas: list[PragmaIgnore] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return ()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_PATTERN.match(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        for rule in match.group(1).split(","):
            rule = rule.strip()
            if rule:
                pragmas.append(PragmaIgnore(path=path, line=lineno, rule=rule))
    return tuple(pragmas)


@dataclass
class PragmaSet:
    """All pragmas of one scan, with usage tracking (stale detection)."""

    pragmas: tuple[PragmaIgnore, ...] = ()
    _used: set[PragmaIgnore] = field(default_factory=set, repr=False)

    def suppresses(self, finding: Finding) -> PragmaIgnore | None:
        """The pragma suppressing ``finding``, or ``None``; records usage."""
        for pragma in self.pragmas:
            if pragma.matches(finding):
                self._used.add(pragma)
                return pragma
        return None

    def stale_pragmas(self) -> tuple[PragmaIgnore, ...]:
        """Pragmas that suppressed nothing in the run seen so far."""
        return tuple(p for p in self.pragmas if p not in self._used)
