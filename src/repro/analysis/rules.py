"""The AST-walking rule framework of the repo-specific static analyzer.

A rule is a class with a unique ``name`` that inspects parsed modules and
returns :class:`~repro.analysis.findings.Finding`s.  Two kinds exist:

* **per-module** rules implement :meth:`LintRule.check_module` and run once
  per file whose root-relative path passes :meth:`LintRule.applies_to`;
* **project-wide** rules (``project_wide = True``) implement
  :meth:`LintRule.check_project` and receive every scanned module at once —
  the work-accounting audit needs the engine's whole call graph, and the
  event-exhaustiveness rule needs the event and policy class populations.

Rules self-register via the :func:`register_rule` decorator into a global
registry keyed by rule name; :func:`default_rules` instantiates the full
set.  The same rule objects are reused by the compiled-codegen audit, which
feeds them *generated* ASTs instead of files on disk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding


@dataclass
class RuleContext:
    """One parsed module handed to the rules.

    ``relpath`` is the posix-style path relative to the scan root — scope
    checks and findings use it.  ``source`` is kept so rules can quote the
    offending text.
    """

    relpath: str
    source: str
    tree: ast.Module

    @classmethod
    def from_source(cls, relpath: str, source: str) -> "RuleContext":
        return cls(relpath=relpath, source=source, tree=ast.parse(source))

    def top_directory(self) -> str:
        """First path segment (``engine`` for ``engine/state/btree.py``)."""
        head, _, _ = self.relpath.partition("/")
        return head if "/" in self.relpath else ""


class LintRule:
    """Base class: one named invariant checked over ASTs."""

    name: str = "rule"
    description: str = ""
    project_wide: bool = False
    #: top-level directories (relative to the scan root) the rule covers;
    #: ``None`` means every scanned file.
    scope_dirs: frozenset[str] | None = None

    def applies_to(self, context: RuleContext) -> bool:
        if self.scope_dirs is None:
            return True
        return context.top_directory() in self.scope_dirs

    def check_module(self, context: RuleContext) -> list[Finding]:
        """Per-module entry point (per-module rules override this)."""
        return []

    def check_project(self, contexts: list[RuleContext]) -> list[Finding]:
        """Project-wide entry point (project-wide rules override this)."""
        return []

    def finding(
        self, context: RuleContext, node: ast.AST, symbol: str, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=context.relpath,
            line=getattr(node, "lineno", 0),
            symbol=symbol,
            message=message,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# Idempotent by construction: repopulated identically in every process by
# the rule-module imports in registered_rules().
_REGISTRY: dict[str, type[LintRule]] = {}  # lint: ignore[effects.global-mutable]


def register_rule(rule_class: type[LintRule]) -> type[LintRule]:
    """Class decorator adding ``rule_class`` to the global rule registry."""
    name = rule_class.name
    if name in _REGISTRY and _REGISTRY[name] is not rule_class:
        raise ValueError(f"duplicate rule name {name!r}")
    _REGISTRY[name] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[LintRule]]:
    """Name → class for every registered rule (import side effects included)."""
    # Importing the rule modules is what populates the registry.
    from repro.analysis import (  # noqa: F401
        accounting,
        determinism,
        effects,
        exhaustiveness,
        sharding,
    )

    return dict(_REGISTRY)


def default_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, in stable name order."""
    return [cls() for _, cls in sorted(registered_rules().items())]


class ScopeTracker(ast.NodeVisitor):
    """NodeVisitor that maintains the dotted enclosing-scope symbol.

    Subclasses read :attr:`symbol` inside their ``visit_*`` methods; it is
    ``<module>`` at module level and ``Class.method`` (or deeper) inside
    definitions.
    """

    def __init__(self) -> None:
        self._stack: list[str] = []

    @property
    def symbol(self) -> str:
        return ".".join(self._stack) if self._stack else "<module>"

    def _enter(self, name: str, node: ast.AST) -> None:
        self._stack.append(name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node.name, node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node.name, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node.name, node)


@dataclass
class ImportMap:
    """What a module's names mean: tracked aliases of selected modules.

    ``modules`` maps local alias → imported module name (``import time as t``
    gives ``{"t": "time"}``); ``members`` maps local alias → ``(module,
    original_name)`` for ``from module import name [as alias]``.
    """

    modules: dict[str, str] = field(default_factory=dict)
    members: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def collect(cls, tree: ast.Module, of_modules: frozenset[str]) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in of_modules:
                        imports.modules[item.asname or item.name] = item.name
            elif isinstance(node, ast.ImportFrom):
                if node.module in of_modules:
                    for item in node.names:
                        imports.members[item.asname or item.name] = (
                            node.module,
                            item.name,
                        )
        return imports
