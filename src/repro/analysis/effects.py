"""Module-level effect hygiene: no mutable globals outside declared caches.

Under multi-process sharding (ROADMAP item 1) every worker imports its own
copy of the package; a module-level mutable global that accumulates state
silently diverges between workers and between a worker and the front end.
The rule flags module-level bindings of mutable containers (dict/list/set
literals and constructors) with two exemptions:

* ``__all__`` — the export-list idiom;
* ``ALL_CAPS`` names never mutated anywhere in their own module — constant
  lookup tables, initialized once and only ever read.

Everything else — including ALL_CAPS names the module *does* mutate — is a
finding.  Idempotent caches that are safe to rebuild per process (the
compiled-source code cache, the lint-rule registry) carry an inline
``# lint: ignore[effects.global-mutable]`` pragma at the declaration, which
doubles as the reviewed inventory of such caches.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import LintRule, RuleContext, register_rule

#: constructor calls that build mutable containers
MUTABLE_CONSTRUCTORS = frozenset(
    {"Counter", "OrderedDict", "bytearray", "defaultdict", "deque", "dict",
     "list", "set"}
)

#: method calls that mutate a container in place
MUTATING_METHODS = frozenset(
    {"add", "append", "clear", "discard", "extend", "insert", "pop",
     "popitem", "remove", "setdefault", "update"}
)


def _is_mutable_binding(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.ListComp) or isinstance(value, ast.DictComp):
        return True
    if isinstance(value, ast.SetComp):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in MUTABLE_CONSTRUCTORS:
            return True
    return False


def _mutated_names(tree: ast.Module) -> set[str]:
    """Module-global names the module itself mutates somewhere."""
    mutated: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    mutated.add(target.value.id)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    mutated.add(target.value.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
            ):
                mutated.add(func.value.id)
        elif isinstance(node, ast.Global):
            mutated.update(node.names)
    return mutated


@register_rule
class GlobalMutableRule(LintRule):
    """No module-level mutable globals outside declared idempotent caches."""

    name = "effects.global-mutable"
    description = (
        "module-level mutable containers diverge between sharded worker "
        "processes; only never-mutated ALL_CAPS constant tables (and "
        "__all__) are exempt — idempotent caches need a reviewed inline "
        "pragma"
    )

    def check_module(self, context: RuleContext) -> list[Finding]:
        mutated = _mutated_names(context.tree)
        findings: list[Finding] = []
        for node in context.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_binding(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name == "__all__":
                    continue
                if name.isupper() and name not in mutated:
                    continue
                findings.append(
                    Finding(
                        rule=self.name,
                        path=context.relpath,
                        line=node.lineno,
                        symbol="<module>",
                        message=(
                            f"module-level mutable global {name!r}; sharded "
                            "worker processes each get a divergent copy — "
                            "pass state explicitly, or mark a rebuild-safe "
                            "idempotent cache with "
                            "# lint: ignore[effects.global-mutable]"
                        ),
                    )
                )
        return findings
