"""Cross-query statistics sharing for the serving layer.

In a one-shot experiment every query starts from the catalog's (often empty)
statistics and learns selectivities from scratch.  Under serving traffic the
same sources are referenced by query after query, so what one execution's
monitor observed is exactly the prior the next execution's re-optimizer
wants: observed subexpression selectivities, multiplicative-join flags, and
exact cardinalities of exhausted sources.

:class:`SharedStatisticsCache` is that memory.  The :class:`QueryServer`
seeds every admitted query's monitor from it (``seed_for``), folds each
finished query's observations back in (``absorb``), and publishes learned
exact cardinalities into its catalog (``apply_cardinalities``) so even the
*initial* optimizer run of later queries benefits.

The cache also offers an attribute-histogram store (``record_histogram`` /
``histogram``) as the sharing point for histogram-producing consumers such
as the Section 4.5 selectivity-prediction machinery.  The serving loop
itself deliberately does **not** build histograms while executing — the
paper measures ~50% maintenance overhead for incremental histograms, so
they stay opt-in — which is why ``histograms`` is 0 in a plain serving
run's summary.

A deliberate approximation: selectivities are keyed by relation set, the
paper's Section 4.2 definition of a logical subexpression *within one
query*.  Two queries over the same relations but different selection
predicates will therefore exchange slightly-off priors.  That is safe — the
seed only pre-populates the monitor, and the query's own observations
overwrite seeded values as soon as data flows — and it is what makes the
cache useful across the paper's workload, where Q3/Q3A/Q10/Q10A share their
join structure.
"""

from __future__ import annotations

import copy
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.optimizer.statistics import ObservedStatistics
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog
from repro.stats.histogram import DynamicCompressedHistogram


@dataclass(frozen=True)
class StatisticsSnapshot:
    """A picklable copy of everything a statistics cache has learned.

    The cross-process protocol of the sharded serving tier: the front-end
    snapshots its persistent cache once per run and ships the snapshot to
    every worker (each worker hydrates a private cache from it), and each
    worker ships its own post-run snapshot back so the front-end can fold
    the shards' learning together deterministically (worker-id order).
    Snapshots are plain data — no live views, no clocks, no cursors — so
    they cross process boundaries whole.
    """

    observed: ObservedStatistics = field(default_factory=ObservedStatistics)
    cardinalities: dict[str, int] = field(default_factory=dict)
    histograms: dict[tuple[str, str], DynamicCompressedHistogram] = field(
        default_factory=dict
    )
    rate_samples: dict[str, list[tuple[float, int]]] = field(default_factory=dict)
    rate_promises: dict[str, float] = field(default_factory=dict)
    rate_totals: dict[str, int] = field(default_factory=dict)
    queries_absorbed: int = 0


class SharedStatisticsCache:
    """Statistics learned by finished queries, reusable by future ones."""

    def __init__(self) -> None:
        #: the accumulated cross-query observations; ``merge`` (later wins /
        #: max-fold) is exactly the folding the cache needs, so absorbing a
        #: finished query delegates to it rather than re-implementing it
        self._observed = ObservedStatistics()
        #: observed selectivity per subexpression (keyed by relation set) —
        #: a live view into the accumulated observations
        self.selectivities: dict[frozenset[str], float] = (
            self._observed.selectivities
        )
        #: multiplicative-join blow-up factors keyed by predicate (live view)
        self.multiplicative_factors: dict[frozenset[tuple[str, str]], float] = (
            self._observed.multiplicative_factors
        )
        #: discovered arrival orderings keyed by (relation, attribute) — a
        #: live view; later queries inherit them so an order discovered once
        #: lets the very first phase of the next query run merge joins
        self.orderings = self._observed.orderings
        #: exact cardinalities of sources some query has fully consumed
        self.cardinalities: dict[str, int] = {}
        #: attribute histograms keyed by ``(relation, attribute)``
        self.histograms: dict[tuple[str, str], DynamicCompressedHistogram] = {}
        #: recent delivery telemetry per relation: ``(now, arrived)`` samples
        #: (capped at :data:`RATE_SAMPLE_WINDOW`), the promised rate, and the
        #: source's total size — fed by the server's admission/absorption
        #: hooks, read by backpressure and rate-aware initial plan choice
        self.rate_samples: dict[str, list[tuple[float, int]]] = {}
        self.rate_promises: dict[str, float] = {}
        self.rate_totals: dict[str, int] = {}
        self.queries_seeded = 0
        self.queries_absorbed = 0

    # -- seeding new queries ---------------------------------------------------

    def seed_for(self, query: SPJAQuery) -> ObservedStatistics | None:
        """Observations relevant to ``query``, or ``None`` when nothing applies.

        Only entries whose relation sets fall entirely within the query's
        relations are seeded; statistics about unrelated subexpressions would
        never be read and would only bloat the monitor.
        """
        relations = set(query.relations)
        seed = ObservedStatistics()
        for key, selectivity in self.selectivities.items():
            if key <= relations:
                seed.selectivities[key] = selectivity
        for key, factor in self.multiplicative_factors.items():
            if all(relation in relations for relation, _attr in key):
                seed.multiplicative_factors[key] = factor
        for (relation, attribute), ordering in self.orderings.items():
            if relation in relations:
                seed.orderings[(relation, attribute)] = ordering
        if (
            not seed.selectivities
            and not seed.multiplicative_factors
            and not seed.orderings
        ):
            return None
        self.queries_seeded += 1
        return seed

    def apply_cardinalities(self, catalog: Catalog) -> int:
        """Publish learned exact cardinalities into ``catalog``.

        Exhausted-source counts are published as catalog statistics rather
        than seeded as source observations: a new query's ``tuples_read``
        must start at zero (it drives the remaining-progress estimate), but
        the *total* size of a source is a property of the source itself.
        Returns the number of entries updated.
        """
        updated = 0
        for relation, cardinality in self.cardinalities.items():
            if relation not in catalog:
                continue
            stats = catalog.statistics(relation)
            if stats.cardinality != cardinality:
                catalog.set_statistics(relation, stats.with_cardinality(cardinality))
                updated += 1
        return updated

    # -- absorbing finished queries --------------------------------------------

    def absorb(self, observed: ObservedStatistics) -> None:
        """Fold one execution's accumulated observations into the cache."""
        self.queries_absorbed += 1
        self._observed.merge(observed)
        for relation, obs in observed.sources.items():
            if obs.exhausted and obs.tuples_read > 0:
                existing_count = self.cardinalities.get(relation, 0)
                self.cardinalities[relation] = max(existing_count, obs.tuples_read)

    # -- cross-process transfer --------------------------------------------------

    def snapshot_state(self) -> StatisticsSnapshot:
        """A detached, picklable copy of everything the cache has learned.

        Deep-copied so the snapshot neither aliases the cache's live views
        nor is mutated by later ``absorb`` calls — exactly the hand-off shape
        the sharded serving tier ships over its task and result queues.
        """
        return StatisticsSnapshot(
            observed=copy.deepcopy(self._observed),
            cardinalities=dict(self.cardinalities),
            histograms=dict(self.histograms),
            rate_samples={
                relation: list(samples)
                for relation, samples in self.rate_samples.items()
            },
            rate_promises=dict(self.rate_promises),
            rate_totals=dict(self.rate_totals),
            queries_absorbed=self.queries_absorbed,
        )

    def hydrate_state(self, snapshot: StatisticsSnapshot) -> None:
        """Replace this cache's learned state with ``snapshot``'s.

        Used by worker processes to build a private cache from the
        front-end's run-start snapshot.  Seed/absorb counters restart at
        zero: they count what *this* cache did, not what its ancestor did.
        """
        self._observed = copy.deepcopy(snapshot.observed)
        self.selectivities = self._observed.selectivities
        self.multiplicative_factors = self._observed.multiplicative_factors
        self.orderings = self._observed.orderings
        self.cardinalities = dict(snapshot.cardinalities)
        self.histograms = dict(snapshot.histograms)
        self.rate_samples = {
            relation: list(samples)
            for relation, samples in snapshot.rate_samples.items()
        }
        self.rate_promises = dict(snapshot.rate_promises)
        self.rate_totals = dict(snapshot.rate_totals)
        self.queries_seeded = 0
        self.queries_absorbed = 0

    def absorb_snapshot(self, snapshot: StatisticsSnapshot) -> None:
        """Fold another cache's learned state into this one.

        The front-end calls this once per worker, in worker-id order, when a
        sharded run finishes — the deterministic cross-process counterpart of
        per-query :meth:`absorb`.  Rate telemetry is folded by plain update
        (samples were taken on the shard's own simulated clock, so merging
        sample windows across shards would be meaningless); selectivities,
        orderings, and factors go through :meth:`ObservedStatistics.merge`,
        and exhausted-source cardinalities max-fold like ``absorb``'s.
        """
        self._observed.merge(snapshot.observed)
        for relation, cardinality in snapshot.cardinalities.items():
            existing_count = self.cardinalities.get(relation, 0)
            self.cardinalities[relation] = max(existing_count, cardinality)
        self.histograms.update(snapshot.histograms)
        for relation, samples in snapshot.rate_samples.items():
            self.rate_samples[relation] = list(samples)
        self.rate_promises.update(snapshot.rate_promises)
        self.rate_totals.update(snapshot.rate_totals)
        self.queries_absorbed += snapshot.queries_absorbed

    # -- histograms -------------------------------------------------------------

    def record_histogram(
        self, relation: str, attribute: str, histogram: DynamicCompressedHistogram
    ) -> None:
        """Cache an attribute histogram built by a histogram-producing consumer.

        The serving loop itself never calls this (histogram maintenance is
        opt-in, see the module docstring); callers that do build histograms
        — e.g. the Section 4.5 predictor — use the cache to share them
        across queries and successive ``serve()`` calls.
        """
        self.histograms[(relation, attribute)] = histogram

    def histogram(
        self, relation: str, attribute: str
    ) -> DynamicCompressedHistogram | None:
        return self.histograms.get((relation, attribute))

    # -- delivery-rate telemetry -------------------------------------------------

    #: how many recent ``(now, arrived)`` samples each relation keeps
    RATE_SAMPLE_WINDOW = 8

    def record_rate_sample(
        self,
        relation: str,
        now: float,
        arrived: int,
        promised_rate: float | None = None,
        total: int | None = None,
    ) -> None:
        """Record one delivery observation (source had delivered ``arrived``
        tuples by simulated time ``now``).  Samples are deduplicated per
        instant — the serving loop touches sources at admission *and*
        absorption, often within the same tick — and the window keeps only
        the most recent :data:`RATE_SAMPLE_WINDOW` entries."""
        samples = self.rate_samples.setdefault(relation, [])
        if samples and samples[-1][0] == now:
            samples[-1] = (now, max(samples[-1][1], arrived))
        else:
            samples.append((now, arrived))
            if len(samples) > self.RATE_SAMPLE_WINDOW:
                del samples[0]
        if promised_rate is not None:
            self.rate_promises[relation] = promised_rate
        if total is not None:
            self.rate_totals[relation] = total

    def observed_rate(self, relation: str) -> float | None:
        """Recent delivery rate (tuples/second), or ``None`` when unmeasurable.

        Windowed over the recorded samples when at least two distinct
        instants exist; the cumulative ``arrived / now`` otherwise.
        """
        samples = self.rate_samples.get(relation, [])
        if not samples:
            return None
        (t0, a0), (t1, a1) = samples[0], samples[-1]
        if len(samples) >= 2 and t1 > t0:
            return max(a1 - a0, 0) / (t1 - t0)
        if t1 > 0:
            return a1 / t1
        return None

    def rate_outlook(
        self,
        relations: Iterable[str],
        collapse_fraction: float = 0.5,
        min_expected: int = 16,
    ) -> dict[str, float]:
        """Estimated remaining arrival windows of currently-collapsed sources.

        For each named relation whose recent telemetry shows delivery
        decisively below its promise (the rate policy's collapse bar:
        ``arrived < collapse_fraction * min(promised * now, total)``, judged
        only once ``min_expected`` tuples should have arrived), the map
        carries ``remaining_tuples / observed_rate`` in simulated seconds —
        the ``rate_outlook`` shape the optimizer's
        :func:`~repro.optimizer.exposure.choose_rate_aware_tree` consumes.
        Healthy, unknown, and fully-delivered sources are absent.
        """
        from repro.optimizer.exposure import MAX_REMAINING_SECONDS

        outlook: dict[str, float] = {}
        for relation in relations:
            samples = self.rate_samples.get(relation, [])
            promised = self.rate_promises.get(relation)
            if not samples or promised is None or promised <= 0:
                continue
            t1, a1 = samples[-1]
            if t1 <= 0:
                continue
            expected = promised * t1
            total = self.rate_totals.get(relation)
            if total is not None:
                expected = min(expected, float(total))
                if a1 >= total:
                    continue
            if expected < min_expected:
                continue
            if a1 >= collapse_fraction * expected:
                continue
            remaining = max((total - a1) if total is not None else expected - a1, 0.0)
            rate = self.observed_rate(relation)
            if rate is None or rate <= 0:
                outlook[relation] = MAX_REMAINING_SECONDS
            else:
                outlook[relation] = min(remaining / rate, MAX_REMAINING_SECONDS)
        return outlook

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        return {
            "selectivities": len(self.selectivities),
            "multiplicative_factors": len(self.multiplicative_factors),
            "cardinalities": len(self.cardinalities),
            "orderings": len(self.orderings),
            "histograms": len(self.histograms),
            "rate_samples": len(self.rate_samples),
            "queries_seeded": self.queries_seeded,
            "queries_absorbed": self.queries_absorbed,
        }
