"""One admitted query's resumable execution inside the query server."""

from __future__ import annotations

from collections.abc import Generator

from repro.core.corrective import (
    CorrectiveExecutionReport,
    CorrectiveQueryProcessor,
    CorrectiveTick,
)
from repro.engine.cost import SimulatedClock
from repro.optimizer.plans import JoinTree
from repro.optimizer.statistics import ObservedStatistics
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog


class QuerySession:
    """A query admitted to the server: a suspended corrective execution.

    The session wraps :meth:`CorrectiveQueryProcessor.execute_incremental`
    and exposes exactly what the scheduler needs: whether the session could
    make progress *right now* without stalling the shared clock
    (:meth:`is_ready`), an estimate of the work left
    (:meth:`remaining_cost_estimate`), and :meth:`grant` to run one quantum.
    """

    PENDING = "pending"
    ACTIVE = "active"
    DONE = "done"

    def __init__(
        self,
        index: int,
        label: str,
        query: SPJAQuery,
        processor: CorrectiveQueryProcessor,
        catalog: Catalog,
        admit_at: float = 0.0,
        initial_tree: JoinTree | None = None,
        quantum_tuples: int = 200,
        cooperative: bool = True,
    ) -> None:
        self.index = index
        self.label = label
        self.query = query
        self.processor = processor
        self.catalog = catalog
        self.admit_at = admit_at
        self.initial_tree = initial_tree
        self.quantum_tuples = quantum_tuples
        #: cooperative sessions stop chunks at the arrival horizon and yield
        #: (the shared-clock server mode); non-cooperative sessions block on
        #: a *private* clock exactly like solo execution — the mode the
        #: sharded worker fabric uses to keep per-session simulated seconds
        #: bit-identical to solo.
        self.cooperative = cooperative
        self.state = self.PENDING
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.quanta = 0
        #: scheduler bookkeeping: the turn number of the last granted quantum
        #: (least-recently-served fairness); -1 = never granted.
        self.last_granted_turn = -1
        self.last_tick: CorrectiveTick | None = None
        self.report: CorrectiveExecutionReport | None = None
        self._runner: (
            Generator[CorrectiveTick, None, CorrectiveExecutionReport] | None
        ) = None

    # -- lifecycle ---------------------------------------------------------------

    def start(
        self, clock: SimulatedClock, seed_statistics: ObservedStatistics | None = None
    ) -> None:
        """Activate the session on the shared ``clock``.

        Builds the incremental execution (initial plan choice happens here,
        so it sees every statistic the server has published to its catalog
        by activation time) and advances it to the first tick — no source
        tuples are consumed yet.
        """
        if self.state is not self.PENDING:
            raise RuntimeError(f"session {self.label!r} started twice")
        self._runner = self.processor.execute_incremental(
            self.query,
            initial_tree=self.initial_tree,
            poll_step_limit=self.quantum_tuples,
            clock=clock,
            seed_statistics=seed_statistics,
            # Cooperative mode never stalls the shared clock inside a
            # quantum: chunks stop at the first not-yet-arrived tuple and
            # yield, so the scheduler can overlap this query's waits with
            # other queries' work.  Blocking mode (sharded workers) waits on
            # the session's private clock instead, as solo execution does.
            cooperative=self.cooperative,
        )
        self.state = self.ACTIVE
        self.started_at = clock.now
        self._advance()

    def grant(self) -> bool:
        """Run one quantum (one chunk of up to ``quantum_tuples`` source
        tuples, or a phase transition / the final stitch-up); return ``True``
        when the query finished."""
        if self.state is not self.ACTIVE:
            raise RuntimeError(f"session {self.label!r} granted while {self.state}")
        self.quanta += 1
        self._advance()
        return self.state is self.DONE

    def _advance(self) -> None:
        if self._runner is None:  # pragma: no cover - state checks guard this
            raise RuntimeError(f"session {self.label!r} advanced before start()")
        try:
            self.last_tick = next(self._runner)
        except StopIteration as stop:
            self.report = stop.value
            self.state = self.DONE

    # -- scheduler interface -----------------------------------------------------

    def is_ready(self, now: float) -> bool:
        """Could a quantum granted at ``now`` make progress without stalling?"""
        if self.state is not self.ACTIVE:
            return False
        arrival = self.last_tick.next_arrival if self.last_tick is not None else None
        return arrival is None or arrival <= now

    def next_arrival(self) -> float | None:
        """Earliest future source arrival this session is waiting on."""
        if self.state is not self.ACTIVE or self.last_tick is None:
            return None
        return self.last_tick.next_arrival

    def remaining_cost_estimate(self) -> float:
        """Estimated source tuples still to be read by this session.

        Uses the server catalog's (possibly learned) cardinalities, so the
        estimate sharpens as the statistics cache publishes exact counts.
        """
        consumed = self.last_tick.consumed if self.last_tick is not None else {}
        remaining = 0.0
        for relation in self.query.relations:
            expected = float(self.catalog.assumed_cardinality(relation))
            remaining += max(expected - consumed.get(relation, 0), 0.0)
        return remaining

    # -- results -----------------------------------------------------------------

    @property
    def latency(self) -> float | None:
        """Admission-to-completion time on the shared simulated clock."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.admit_at

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"QuerySession({self.label!r}, state={self.state}, "
            f"quanta={self.quanta})"
        )
