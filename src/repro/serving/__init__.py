"""Multi-query serving: one shared clock in-process, or N worker shards."""

from repro.serving.scheduler import (
    POLICIES,
    RoundRobinPolicy,
    SchedulingPolicy,
    ShortestRemainingCostPolicy,
    make_policy,
    shard_assignment,
)
from repro.serving.server import QueryServer, ServedQuery, ServingReport
from repro.serving.session import QuerySession
from repro.serving.sharded import (
    PartitionedServedQuery,
    ShardedQueryServer,
    ShardedServingReport,
    WorkerSummary,
)
from repro.serving.specs import SessionResult, SessionSpec, ShardResult, ShardTask
from repro.serving.stats_cache import SharedStatisticsCache, StatisticsSnapshot
from repro.serving.stats_store import SharedStatisticsStore

__all__ = [
    "POLICIES",
    "PartitionedServedQuery",
    "QueryServer",
    "QuerySession",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "ServedQuery",
    "ServingReport",
    "SessionResult",
    "SessionSpec",
    "ShardResult",
    "ShardTask",
    "ShardedQueryServer",
    "ShardedServingReport",
    "SharedStatisticsCache",
    "SharedStatisticsStore",
    "ShortestRemainingCostPolicy",
    "StatisticsSnapshot",
    "WorkerSummary",
    "make_policy",
    "shard_assignment",
]
