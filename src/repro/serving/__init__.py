"""Multi-query serving: concurrent adaptive executions on one shared clock."""

from repro.serving.scheduler import (
    POLICIES,
    RoundRobinPolicy,
    SchedulingPolicy,
    ShortestRemainingCostPolicy,
    make_policy,
)
from repro.serving.server import QueryServer, ServedQuery, ServingReport
from repro.serving.session import QuerySession
from repro.serving.stats_cache import SharedStatisticsCache

__all__ = [
    "POLICIES",
    "QueryServer",
    "QuerySession",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "ServedQuery",
    "ServingReport",
    "SharedStatisticsCache",
    "ShortestRemainingCostPolicy",
    "make_policy",
]
