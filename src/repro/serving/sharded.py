"""The sharded serving front-end: admission and statistics, no execution.

:class:`ShardedQueryServer` is the multi-process counterpart of
:class:`~repro.serving.server.QueryServer`.  It owns admission (queries
become picklable :class:`~repro.serving.specs.SessionSpec` records), the
deterministic session→worker routing
(:func:`~repro.serving.scheduler.shard_assignment` — plain round-robin by
admission index), and the persistent statistics cache.  All execution
happens in worker processes (:mod:`repro.serving.worker`): each worker
receives one :class:`~repro.serving.specs.ShardTask` over a FIFO task queue,
drives its scheduler shard with per-session private clocks, and returns one
:class:`~repro.serving.specs.ShardResult` over the FIFO result queue — the
``shard_tasks`` / ``handoff`` channels of :mod:`repro.serving.channels`.

Determinism contract: session results (multisets, metrics, phase counts,
simulated seconds) are bit-identical to solo runs of the same queries —
sessions run blocking on private clocks, exactly like solo execution — and
the front-end folds worker statistics snapshots in worker-id order, so the
persistent cache's end state never depends on wall-clock races.  Wall-clock
*speed* is where the workers show up: shards execute concurrently across
processes, which is the scaling curve ``serve-bench --workers`` measures.

Partition-parallel execution rides on the same fabric:
:meth:`ShardedQueryServer.submit_partitioned` hash-partitions one heavy
query's join inputs (:mod:`repro.serving.partition`), admits one fragment
spec per partition (round-robin routing spreads them across workers), and
merges fragment outputs deterministically at the root when results arrive.

Unsupported here (front-end features of the in-process server that need a
shared clock or live policy objects): admission backpressure, rate-seeded
plans, and custom ``session_policies`` instances.  ``admit_at`` orders
activations within a shard but does not gate them — private clocks have no
shared "now" to gate against.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.engine.cost import CostModel
from repro.io.wallclock import wall_now
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, DEFAULT_ASSUMED_CARDINALITY
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving.partition import (
    PartitionPlan,
    build_partition_plan,
    merge_partition_results,
)
from repro.serving.scheduler import SchedulingPolicy, make_policy, shard_assignment
from repro.serving.server import ServedQuery, ServingReport, corrective_processor_options
from repro.serving.specs import SessionResult, SessionSpec, ShardResult, ShardTask
from repro.serving.stats_cache import SharedStatisticsCache, StatisticsSnapshot
from repro.serving.worker import drive_shard, worker_main
from repro.sources.source import LocalSource


class StatisticsBackend(Protocol):
    """What the front-end needs from its persistent statistics store — both
    :class:`SharedStatisticsCache` (in-process) and
    :class:`~repro.serving.stats_store.SharedStatisticsStore` (cross-process
    manager) satisfy it."""

    def snapshot_state(self) -> StatisticsSnapshot: ...

    def absorb_snapshot(self, snapshot: StatisticsSnapshot) -> None: ...

    def summary(self) -> dict[str, int]: ...


@dataclass
class WorkerSummary:
    """One worker's telemetry for a sharded run."""

    worker_id: int
    sessions: int
    quanta: int
    #: simulated seconds the shard's sessions charged in total
    shard_seconds: float
    #: wall seconds the worker spent driving its shard
    wall_seconds: float
    #: wall seconds inside session activations and quanta (excludes queue
    #: and pickling overhead)
    busy_wall_seconds: float

    def summary(self) -> dict[str, object]:
        return {
            "worker": self.worker_id,
            "sessions": self.sessions,
            "quanta": self.quanta,
            "shard_seconds": round(self.shard_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_wall_seconds": round(self.busy_wall_seconds, 4),
        }


@dataclass
class PartitionedServedQuery:
    """One partition-parallel submission's merged result."""

    label: str
    query_name: str
    partitions: int
    edge: str
    rows: list[tuple]
    schema: Schema
    fragments: list[SessionResult]

    @property
    def simulated_seconds(self) -> float:
        """Simulated seconds of the slowest fragment (fragments run
        concurrently on separate workers)."""
        return max(
            (fragment.report.simulated_seconds for fragment in self.fragments),
            default=0.0,
        )


@dataclass
class ShardedServingReport(ServingReport):
    """A :class:`ServingReport` plus the sharded tier's telemetry."""

    workers: int = 1
    start_method: str = ""
    wall_seconds: float = 0.0
    worker_summaries: list[WorkerSummary] = field(default_factory=list)
    partitioned: list[PartitionedServedQuery] = field(default_factory=list)

    def utilization(self) -> dict[int, float]:
        """Per-worker share of the front-end wall time spent driving its
        shard — the load-balance view of the run."""
        if self.wall_seconds <= 0:
            return {summary.worker_id: 0.0 for summary in self.worker_summaries}
        return {
            summary.worker_id: min(summary.wall_seconds / self.wall_seconds, 1.0)
            for summary in self.worker_summaries
        }


class ShardedQueryServer:
    """Admit queries in-process; execute them on N worker processes."""

    def __init__(
        self,
        catalog: Catalog,
        sources: dict[str, object],
        cost_model: CostModel | None = None,
        policy: str | SchedulingPolicy = "round_robin",
        workers: int = 2,
        batch_size: int | None = None,
        quantum_tuples: int = 200,
        polling_interval_seconds: float = 1.0,
        switch_threshold: float = 0.8,
        max_phases: int = 8,
        bushy: bool = True,
        default_cardinality: int = DEFAULT_ASSUMED_CARDINALITY,
        stats_cache: StatisticsBackend | None = None,
        share_statistics: bool = True,
        order_adaptive: bool = False,
        engine_mode: str = "interpreted",
        rate_adaptive: bool = False,
        rate_collapse_fraction: float = 0.5,
        rate_switch_threshold: float = 0.8,
        failover_adaptive: bool = False,
        failover_stall_seconds: float = 0.05,
        failover_outage_polls: int = 2,
        start_method: str | None = None,
        result_timeout_seconds: float = 600.0,
    ) -> None:
        """``workers`` is the shard count; ``start_method`` picks the
        multiprocessing start method (``None`` = platform default, e.g.
        ``fork`` on Linux) or the special value ``"inline"`` which drives
        every shard in the calling process — same scheduling, same results,
        no concurrency — for debugging and deterministic unit tests."""
        if workers < 1:
            raise ValueError("workers must be positive")
        if quantum_tuples < 1:
            raise ValueError("quantum_tuples must be positive")
        self.catalog = catalog.copy()
        self.sources = dict(sources)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.policy = make_policy(policy)
        self.workers = workers
        self.batch_size = batch_size
        self.quantum_tuples = quantum_tuples
        self.stats_cache: StatisticsBackend = (
            stats_cache if stats_cache is not None else SharedStatisticsCache()
        )
        self.share_statistics = share_statistics
        self.start_method = start_method
        self.result_timeout_seconds = result_timeout_seconds
        self._options: dict[str, Any] = corrective_processor_options(
            polling_interval_seconds=polling_interval_seconds,
            switch_threshold=switch_threshold,
            max_phases=max_phases,
            default_cardinality=default_cardinality,
            bushy=bushy,
            batch_size=batch_size,
            order_adaptive=order_adaptive,
            engine_mode=engine_mode,
            rate_adaptive=rate_adaptive,
            rate_collapse_fraction=rate_collapse_fraction,
            rate_switch_threshold=rate_switch_threshold,
            failover_adaptive=failover_adaptive,
            failover_stall_seconds=failover_stall_seconds,
            failover_outage_polls=failover_outage_polls,
        )
        self._specs: list[SessionSpec] = []
        self._partition_plans: dict[str, PartitionPlan] = {}
        self._ran = False

    # -- admission ---------------------------------------------------------------

    def _next_label(self, query: SPJAQuery, label: str | None) -> str:
        index = len(self._specs)
        session_label = label or f"q{index}:{query.name}"
        taken = {spec.label for spec in self._specs} | set(self._partition_plans)
        if session_label in taken:
            session_label = f"{session_label}#{index}"
        return session_label

    def _check_submittable(self, query: SPJAQuery, admit_at: float) -> None:
        if self._ran:
            raise RuntimeError("this server has already run; build a new one")
        missing = [name for name in query.relations if name not in self.sources]
        if missing:
            raise KeyError(f"query references unregistered sources: {missing}")
        if admit_at < 0:
            raise ValueError("admit_at must be non-negative")

    def submit(
        self,
        query: SPJAQuery,
        admit_at: float = 0.0,
        initial_tree: JoinTree | None = None,
        label: str | None = None,
    ) -> str:
        """Admit ``query``; returns its label.  Mirrors
        :meth:`QueryServer.submit`, but only records a spec — the session is
        rehydrated inside whichever worker the routing assigns it to."""
        self._check_submittable(query, admit_at)
        session_label = self._next_label(query, label)
        self._specs.append(
            SessionSpec(
                index=len(self._specs),
                label=session_label,
                query=query,
                admit_at=admit_at,
                quantum_tuples=self.quantum_tuples,
                initial_tree=initial_tree,
            )
        )
        return session_label

    def _materialized_relations(self) -> dict[str, Relation]:
        relations: dict[str, Relation] = {}
        for name, source in self.sources.items():
            if isinstance(source, Relation):
                relations[name] = source
            elif isinstance(source, LocalSource):
                relations[name] = source.relation
        return relations

    def submit_partitioned(
        self,
        query: SPJAQuery,
        partitions: int,
        initial_tree: JoinTree | None = None,
        label: str | None = None,
    ) -> str:
        """Admit one heavy query partition-parallel: ``partitions`` fragment
        sessions over hash-partitioned join inputs, merged at the root when
        the run collects results.  Requires the chosen join edge's sources
        to be materialized local relations."""
        self._check_submittable(query, 0.0)
        session_label = self._next_label(query, label)
        plan = build_partition_plan(
            session_label, query, self._materialized_relations(), partitions
        )
        for partition_index in range(partitions):
            self._specs.append(
                SessionSpec(
                    index=len(self._specs),
                    label=f"{session_label}[p{partition_index}]",
                    query=plan.fragment,
                    admit_at=0.0,
                    quantum_tuples=self.quantum_tuples,
                    initial_tree=initial_tree,
                    partition_of=session_label,
                    partition_index=partition_index,
                    source_overrides=plan.overrides[partition_index],
                )
            )
        self._partition_plans[session_label] = plan
        return session_label

    # -- execution ---------------------------------------------------------------

    def _build_tasks(self) -> list[ShardTask]:
        assignment = shard_assignment(len(self._specs), self.workers)
        shards: list[list[SessionSpec]] = [[] for _ in range(self.workers)]
        for spec, worker_id in zip(self._specs, assignment):
            shards[worker_id].append(spec)
        snapshot = (
            self.stats_cache.snapshot_state() if self.share_statistics else None
        )
        return [
            ShardTask(
                worker_id=worker_id,
                policy=self.policy.name,
                catalog=self.catalog,
                sources=self.sources,
                specs=tuple(specs),
                processor_options=dict(self._options),
                snapshot=snapshot,
                share_statistics=self.share_statistics,
                cost_model=self.cost_model,
            )
            for worker_id, specs in enumerate(shards)
            if specs
        ]

    def _execute_tasks(self, tasks: list[ShardTask]) -> list[ShardResult]:
        if self.start_method == "inline":
            return [drive_shard(task) for task in tasks]
        ctx = multiprocessing.get_context(self.start_method)
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=worker_main, args=(task_queue, result_queue), daemon=True
            )
            for _ in tasks
        ]
        for process in processes:
            process.start()
        for task in tasks:
            task_queue.put(task)
        results: list[ShardResult] = []
        try:
            for _ in tasks:
                try:
                    results.append(
                        result_queue.get(timeout=self.result_timeout_seconds)
                    )
                except queue_module.Empty:
                    raise RuntimeError(
                        f"sharded run timed out: {len(results)} of "
                        f"{len(tasks)} shard results arrived within "
                        f"{self.result_timeout_seconds:.0f}s"
                    ) from None
        finally:
            for process in processes:
                process.join(timeout=30.0)
                if process.is_alive():  # pragma: no cover - hang safety net
                    process.terminate()
                    process.join()
        for result in results:
            if result.error is not None:
                raise RuntimeError(
                    f"worker {result.worker_id} failed:\n{result.error}"
                )
        return results

    def run(self) -> ShardedServingReport:
        """Route specs to shards, execute them, fold statistics and results."""
        if self._ran:
            raise RuntimeError("this server has already run; build a new one")
        self._ran = True
        wall_start = wall_now()
        tasks = self._build_tasks()
        shard_results = sorted(
            self._execute_tasks(tasks), key=lambda result: result.worker_id
        )
        wall_seconds = wall_now() - wall_start

        # Fold worker learning in worker-id order — deterministic regardless
        # of which shard finished first on the wall clock.
        for shard in shard_results:
            if shard.snapshot is not None:
                self.stats_cache.absorb_snapshot(shard.snapshot)

        session_results = sorted(
            (result for shard in shard_results for result in shard.results),
            key=lambda result: result.index,
        )
        served: list[ServedQuery] = []
        fragments: dict[str, list[SessionResult]] = {}
        for result in session_results:
            if result.partition_of is not None:
                fragments.setdefault(result.partition_of, []).append(result)
                continue
            served.append(
                ServedQuery(
                    label=result.label,
                    query_name=result.query_name,
                    admitted_at=result.admitted_at,
                    started_at=result.started_at,
                    finished_at=result.finished_at,
                    quanta=result.quanta,
                    report=result.report,
                )
            )
        partitioned: list[PartitionedServedQuery] = []
        for label, plan in self._partition_plans.items():
            merged_rows, merged_schema = merge_partition_results(
                plan, fragments.get(label, [])
            )
            partitioned.append(
                PartitionedServedQuery(
                    label=label,
                    query_name=plan.query.name,
                    partitions=plan.partitions,
                    edge=str(plan.edge),
                    rows=merged_rows,
                    schema=merged_schema,
                    fragments=fragments.get(label, []),
                )
            )

        makespan = max(
            [query.finished_at for query in served]
            + [entry.simulated_seconds for entry in partitioned]
            + [0.0]
        )
        return ShardedServingReport(
            policy=self.policy.name,
            batch_size=self.batch_size,
            quantum_tuples=self.quantum_tuples,
            served=served,
            makespan=makespan,
            total_quanta=sum(shard.quanta for shard in shard_results),
            clock_wait_seconds=0.0,
            stats_cache_summary=dict(self.stats_cache.summary()),
            workers=self.workers,
            start_method=self.start_method or "default",
            wall_seconds=wall_seconds,
            worker_summaries=[
                WorkerSummary(
                    worker_id=shard.worker_id,
                    sessions=len(shard.results),
                    quanta=shard.quanta,
                    shard_seconds=shard.shard_seconds,
                    wall_seconds=shard.wall_seconds,
                    busy_wall_seconds=shard.busy_wall_seconds,
                )
                for shard in shard_results
            ],
            partitioned=partitioned,
        )
