"""Partition-parallel execution of one heavy query across workers.

Classic hash partitioning on an equi-join edge: pick one join predicate of
the query, split **both** of its relations into ``k`` fragments by a stable
hash of the join-key value, broadcast every other relation whole, and run
the unmodified query once per fragment.  Because the chosen predicate forces
matching rows to carry equal keys, every joined result row materializes in
exactly the fragment its key hashes to — the fragment result multisets are a
partition of the solo result multiset, so the root merge is pure data
plumbing:

* **SPJ queries**: concatenate fragment rows in partition order (columns
  permuted by name onto fragment 0's layout — different fragments may settle
  on different join trees and therefore different column orders);
* **aggregation queries**: fragment queries are rewritten to emit partial
  aggregates (``avg`` decomposes into sum/count, the paper's Section 2.2
  pre-aggregation), and the root folds partials per group key with
  :meth:`~repro.relational.expressions.Aggregate.merge_partial` semantics
  before finalizing — exact for the integer-valued differential workloads,
  and bit-identical to solo because the same operands reach the same
  finalization arithmetic.

The stable hash is ``crc32(repr(value))`` — never the builtin ``hash``,
whose string seed varies per process and would make fragment composition
irreproducible across runs and across spawn boundaries.  It requires join
keys that compare equal to have equal ``repr`` (true for the homogeneous
int/str key columns of every workload here).

Partitioning requires materialized inputs (the fragments *are* new
:class:`~repro.relational.relation.Relation` objects), so only sources that
expose local rows can be partitioned; remote sources stay broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from zlib import crc32

from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.expressions import Aggregate, JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving.specs import SessionResult

#: suffixes of the partial-aggregate columns an ``avg`` rewrite emits
_AVG_SUM_SUFFIX = "__psum"
_AVG_COUNT_SUFFIX = "__pcnt"


def stable_partition_index(value: object, partitions: int) -> int:
    """Deterministic bucket of one join-key value, identical in every
    process regardless of ``PYTHONHASHSEED``."""
    return crc32(repr(value).encode("utf-8")) % partitions


def choose_partition_edge(
    query: SPJAQuery, relations: dict[str, Relation]
) -> JoinPredicate:
    """The equi-join edge worth splitting: the one with the most input rows
    behind it (ties broken by predicate text, so the choice is stable)."""
    if not query.join_predicates:
        raise ValueError(
            f"query {query.name!r} has no join predicates to partition on"
        )
    candidates = [
        predicate
        for predicate in query.join_predicates
        if predicate.left_relation in relations
        and predicate.right_relation in relations
    ]
    if not candidates:
        raise ValueError(
            f"query {query.name!r} has no join edge between materialized "
            "relations; partition-parallel execution needs local inputs"
        )
    return max(
        candidates,
        key=lambda predicate: (
            len(relations[predicate.left_relation].rows)
            + len(relations[predicate.right_relation].rows),
            str(predicate),
        ),
    )


def partition_relation(
    relation: Relation, attribute: str, partitions: int
) -> list[Relation]:
    """Split one relation into ``partitions`` fragments by key hash."""
    position = relation.schema.position(attribute)
    buckets: list[list[tuple]] = [[] for _ in range(partitions)]
    for row in relation.rows:
        buckets[stable_partition_index(row[position], partitions)].append(row)
    return [
        Relation(relation.name, relation.schema, rows) for rows in buckets
    ]


def fragment_query(query: SPJAQuery) -> SPJAQuery:
    """The query each fragment runs.

    Identical to the original except that ``avg`` aggregates are decomposed
    into partial sum/count columns (every other aggregate function is its
    own partial: min/max/sum fold by themselves, count folds by summation).
    """
    aggregation = query.aggregation
    if aggregation is None or not any(
        aggregate.function == "avg" for aggregate in aggregation.aggregates
    ):
        return query
    partial_aggregates: list[Aggregate] = []
    for aggregate in aggregation.aggregates:
        if aggregate.function == "avg":
            partial_aggregates.append(
                Aggregate("sum", aggregate.attribute, aggregate.alias + _AVG_SUM_SUFFIX)
            )
            partial_aggregates.append(
                Aggregate(
                    "count", aggregate.attribute, aggregate.alias + _AVG_COUNT_SUFFIX
                )
            )
        else:
            partial_aggregates.append(aggregate)
    return replace(
        query,
        aggregation=AggregateSpec(
            aggregation.group_attributes, tuple(partial_aggregates)
        ),
    )


@dataclass(frozen=True)
class PartitionPlan:
    """One partitioned submission: the edge, the fragments, the rewrite."""

    label: str
    query: SPJAQuery
    fragment: SPJAQuery
    partitions: int
    edge: JoinPredicate
    #: per-partition source overrides (the two edge relations, split)
    overrides: tuple[dict[str, Relation], ...]


def build_partition_plan(
    label: str,
    query: SPJAQuery,
    relations: dict[str, Relation],
    partitions: int,
) -> PartitionPlan:
    """Plan a ``partitions``-way split of ``query`` over local ``relations``."""
    if partitions < 2:
        raise ValueError("partitions must be at least 2")
    edge = choose_partition_edge(query, relations)
    left_fragments = partition_relation(
        relations[edge.left_relation], edge.left_attr, partitions
    )
    right_fragments = partition_relation(
        relations[edge.right_relation], edge.right_attr, partitions
    )
    overrides = tuple(
        {
            edge.left_relation: left_fragments[index],
            edge.right_relation: right_fragments[index],
        }
        for index in range(partitions)
    )
    return PartitionPlan(
        label=label,
        query=query,
        fragment=fragment_query(query),
        partitions=partitions,
        edge=edge,
        overrides=overrides,
    )


def _permuted_rows(
    rows: list[tuple], schema: Schema, canonical: Schema
) -> list[tuple]:
    if tuple(schema.names) == tuple(canonical.names):
        return list(rows)
    positions = [tuple(schema.names).index(name) for name in canonical.names]
    return [tuple(row[p] for p in positions) for row in rows]


def merge_partition_results(
    plan: PartitionPlan, fragments: list[SessionResult]
) -> tuple[list[tuple], Schema]:
    """Deterministic root merge of the fragment results.

    ``fragments`` must hold one result per partition; they are folded in
    partition order, so the merged output is a pure function of the plan and
    the fragment payloads.
    """
    ordered = sorted(fragments, key=lambda fragment: fragment.partition_index)
    if len(ordered) != plan.partitions or [
        fragment.partition_index for fragment in ordered
    ] != list(range(plan.partitions)):
        raise ValueError(
            f"partitioned query {plan.label!r} expected fragments "
            f"0..{plan.partitions - 1}, got "
            f"{[fragment.partition_index for fragment in ordered]}"
        )
    aggregation = plan.query.aggregation
    if aggregation is None:
        canonical = ordered[0].report.schema
        merged: list[tuple] = []
        for fragment in ordered:
            merged.extend(
                _permuted_rows(
                    fragment.report.rows, fragment.report.schema, canonical
                )
            )
        return merged, canonical

    # Aggregation: fold fragment partials per group key, then finalize.
    group_names = list(aggregation.group_attributes)
    fragment_names = list(plan.fragment.aggregation.output_attributes)  # type: ignore[union-attr]
    states: dict[tuple, list[object]] = {}
    order: list[tuple] = []
    for fragment in ordered:
        rows = _permuted_rows(
            fragment.report.rows,
            fragment.report.schema,
            Schema.from_names(fragment_names),
        )
        for row in rows:
            key = tuple(row[: len(group_names)])
            partials = list(row[len(group_names) :])
            if key not in states:
                states[key] = partials
                order.append(key)
                continue
            state = states[key]
            for position, value in enumerate(partials):
                state[position] = _merge_partial_column(
                    plan.fragment, position, state[position], value
                )
    merged_rows: list[tuple] = []
    for key in order:
        merged_rows.append(key + _finalize_group(plan, states[key]))
    return merged_rows, Schema.from_names(aggregation.output_attributes)


def _merge_partial_column(
    fragment: SPJAQuery, position: int, state: object, value: object
) -> object:
    aggregation = fragment.aggregation
    assert aggregation is not None
    aggregate = aggregation.aggregates[position]
    function = aggregate.function
    if function in ("sum", "count"):
        return state + value  # type: ignore[operator]
    if function == "min":
        if value is None:
            return state
        return value if state is None or value < state else state  # type: ignore[operator]
    if function == "max":
        if value is None:
            return state
        return value if state is None or value > state else state  # type: ignore[operator]
    raise AssertionError(f"unexpected partial aggregate {function!r}")


def _finalize_group(plan: PartitionPlan, partials: list[object]) -> tuple:
    """Turn one group's merged fragment partials into final output values.

    Walks the *original* aggregate list; ``avg`` consumes its two rewritten
    partial columns and divides exactly as
    :meth:`~repro.relational.expressions.Aggregate.finalize` does.
    """
    aggregation = plan.query.aggregation
    assert aggregation is not None
    finals: list[object] = []
    position = 0
    for aggregate in aggregation.aggregates:
        if aggregate.function == "avg":
            total, count = partials[position], partials[position + 1]
            position += 2
            finals.append(total / count if count else None)  # type: ignore[operator]
        else:
            finals.append(partials[position])
            position += 1
    return tuple(finals)
