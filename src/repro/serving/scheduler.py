"""Scheduling policies for the multi-query serving layer.

The :class:`~repro.serving.server.QueryServer` repeatedly asks its policy
which of the currently *ready* sessions (admitted, unfinished, and able to
make progress without stalling the shared clock) should receive the next
execution quantum.  Policies are deterministic: ties are broken by admission
order, so a serving run is a pure function of its inputs — the property the
serving-vs-solo differential tests rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.session import QuerySession


class SchedulingPolicy:
    """Base class: choose which ready session runs next."""

    name = "base"

    def pick(self, ready: Sequence["QuerySession"], now: float) -> "QuerySession":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


class RoundRobinPolicy(SchedulingPolicy):
    """Fair share: grant the quantum to the least-recently-served session.

    With a static session population this degenerates to classic round-robin
    rotation; with dynamic admissions and sessions that block on source
    arrivals it generalizes gracefully — a session that was skipped while
    waiting for data is first in line once its data arrives.
    """

    name = "round_robin"

    def pick(self, ready: Sequence["QuerySession"], now: float) -> "QuerySession":
        return min(ready, key=lambda session: (session.last_granted_turn, session.index))


class ShortestRemainingCostPolicy(SchedulingPolicy):
    """Grant the quantum to the session with the least estimated work left.

    The classic shortest-remaining-processing-time discipline, which
    minimizes mean latency when estimates are accurate.  Remaining cost is
    estimated as the number of source tuples still to be read (catalog or
    learned cardinalities minus tuples consumed), the same consistency
    assumption the re-optimizer applies to a single query's remaining work.
    Long queries are never starved outright: a blocked short query drops out
    of the ready set, letting longer ones progress through its stalls.
    """

    name = "shortest_remaining_cost"

    def pick(self, ready: Sequence["QuerySession"], now: float) -> "QuerySession":
        return min(
            ready,
            key=lambda session: (session.remaining_cost_estimate(), session.index),
        )


POLICIES: dict[str, type[SchedulingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    ShortestRemainingCostPolicy.name: ShortestRemainingCostPolicy,
}


def shard_assignment(num_sessions: int, workers: int) -> list[int]:
    """Deterministic session→worker routing for the sharded server.

    Plain round-robin by admission index: session ``i`` runs on worker
    ``i % workers``.  A pure function of the two counts — no hashing, no
    randomness — so a sharded run's shard composition (and therefore every
    worker-local learning order) is reproducible from the submission order
    alone.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    return [index % workers for index in range(num_sessions)]


def make_policy(policy: str | SchedulingPolicy) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; expected one of {sorted(POLICIES)}"
        ) from None
