"""Worker-process side of the sharded serving tier.

A worker process receives exactly one :class:`~repro.serving.specs.ShardTask`
over its task queue, drives the shard to completion, and sends one
:class:`~repro.serving.specs.ShardResult` back over the result queue.  The
shard driver is deliberately a plain function (:func:`drive_shard`) so the
same code runs in-process for ``workers=1`` and for deterministic tests.

Determinism contract (the sharded differential suites pin all of it):

* every session runs in **blocking** mode on its own **private**
  :class:`~repro.engine.cost.SimulatedClock` — exactly the solo-execution
  configuration, so each session's result multiset, metrics, phase count
  and simulated seconds are bit-identical to a solo run of the same query;
* sessions are activated in ``(admit_at, index)`` order and their quanta
  interleaved by the shard's scheduling policy at tick granularity; because
  clocks are private, interleaving affects wall-clock overlap only, never
  results or simulated timings;
* each worker learns statistics into a private cache hydrated from the
  front-end's run-start snapshot; its post-run snapshot rides home in the
  :class:`ShardResult` and the front-end folds snapshots in worker-id order,
  so the persistent cache's end state is independent of wall-clock races.

Partition fragments (``spec.partition_of`` set) read partition-local source
overrides and are excluded from statistics absorption: an exhausted
partition override proves nothing about the full relation's cardinality.
"""

from __future__ import annotations

import traceback
from typing import TYPE_CHECKING, Any

from repro.adaptivity import AdaptationController, SharedLearningPolicy
from repro.core.corrective import CorrectiveQueryProcessor
from repro.engine.cost import CostModel, SimulatedClock
from repro.io.wallclock import wall_now
from repro.serving.scheduler import make_policy
from repro.serving.session import QuerySession
from repro.serving.specs import SessionResult, SessionSpec, ShardResult, ShardTask
from repro.serving.stats_cache import SharedStatisticsCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.queues import Queue as MPQueue


def _session_sources(task: ShardTask, spec: SessionSpec) -> dict[str, object]:
    """The source pool one session reads: the shard's, plus any
    partition-local overrides (overrides shadow, never mutate, the pool)."""
    if not spec.source_overrides:
        return task.sources
    merged: dict[str, object] = dict(task.sources)
    merged.update(spec.source_overrides)
    return merged


def drive_shard(task: ShardTask) -> ShardResult:
    """Run one shard's sessions to completion; pure function of the task."""
    wall_start = wall_now()
    busy_seconds = 0.0
    catalog = task.catalog.copy()
    cost_model = task.cost_model if task.cost_model is not None else CostModel()
    cache = SharedStatisticsCache()
    if task.snapshot is not None:
        cache.hydrate_state(task.snapshot)
    adaptation = AdaptationController(
        [SharedLearningPolicy(cache, share_statistics=task.share_statistics)]
    )
    policy = make_policy(task.policy)
    specs_by_index = {spec.index: spec for spec in task.specs}
    sessions: list[QuerySession] = []
    for spec in sorted(task.specs, key=lambda item: item.index):
        processor = CorrectiveQueryProcessor(
            catalog,
            _session_sources(task, spec),
            cost_model,
            **task.processor_options,
        )
        sessions.append(
            QuerySession(
                index=spec.index,
                label=spec.label,
                query=spec.query,
                processor=processor,
                catalog=catalog,
                admit_at=spec.admit_at,
                initial_tree=spec.initial_tree,
                quantum_tuples=spec.quantum_tuples,
                cooperative=False,
            )
        )

    finished: list[QuerySession] = []
    active: list[QuerySession] = []
    quanta = 0
    turn = 0

    def retire(session: QuerySession) -> None:
        report = session.report
        assert report is not None
        session.finished_at = session.admit_at + report.simulated_seconds
        spec = specs_by_index[session.index]
        if spec.partition_of is None:
            adaptation.session_finished(report, catalog)
        finished.append(session)

    # Activate in (admit_at, index) order.  On a private-clock shard,
    # admission time orders activations (and therefore which published
    # statistics each initial plan sees) but gates nothing else.
    for session in sorted(sessions, key=lambda item: (item.admit_at, item.index)):
        step_start = wall_now()
        seed = adaptation.session_starting(session.query, catalog)
        session.start(SimulatedClock(cost_model), seed)
        busy_seconds += wall_now() - step_start
        if session.state is QuerySession.DONE:
            retire(session)
        else:
            active.append(session)

    while active:
        # Blocking sessions are always ready (they wait on their own clock,
        # never on the scheduler); the turn counter is the shard's logical
        # time — both policies ignore the wall meaning of ``now``.
        session = policy.pick(active, float(turn))
        session.last_granted_turn = turn
        turn += 1
        quanta += 1
        step_start = wall_now()
        done = session.grant()
        busy_seconds += wall_now() - step_start
        if done:
            active.remove(session)
            retire(session)

    collected: list[SessionResult] = []
    for session in sorted(finished, key=lambda item: item.index):
        report = session.report
        assert report is not None
        spec = specs_by_index[session.index]
        collected.append(
            SessionResult(
                index=session.index,
                label=session.label,
                query_name=session.query.name,
                worker_id=task.worker_id,
                admitted_at=session.admit_at,
                started_at=session.admit_at,
                finished_at=session.admit_at + report.simulated_seconds,
                quanta=session.quanta,
                report=report,
                partition_of=spec.partition_of,
                partition_index=spec.partition_index,
            )
        )
    results = tuple(collected)
    shard_seconds = sum(result.report.simulated_seconds for result in results)
    return ShardResult(
        worker_id=task.worker_id,
        results=results,
        snapshot=cache.snapshot_state() if task.share_statistics else None,
        quanta=quanta,
        shard_seconds=shard_seconds,
        wall_seconds=wall_now() - wall_start,
        busy_wall_seconds=busy_seconds,
    )


def worker_main(
    task_queue: "MPQueue[ShardTask]", result_queue: "MPQueue[ShardResult]"
) -> None:
    """Process entry point: one task in, one result out, then exit.

    Any failure travels home as a :class:`ShardResult` carrying the formatted
    traceback — the front-end re-raises it — so a crashing shard fails the
    run loudly instead of hanging the result collection.
    """
    task = task_queue.get()
    try:
        result = drive_shard(task)
    except BaseException:
        result = ShardResult(worker_id=task.worker_id, error=traceback.format_exc())
    result_queue.put(result)
    result_queue.close()
    # Flush the feeder thread before the process exits so the payload is
    # never truncated by a fast shutdown.
    result_queue.join_thread()


def run_task_inline(task: ShardTask) -> ShardResult:
    """Drive a shard in the calling process (the ``workers=1`` fast path and
    the deterministic harness used by unit tests)."""
    return drive_shard(task)
