"""Picklable hand-off payloads for the sharded serving tier.

The multi-process server (:mod:`repro.serving.sharded`) never ships live
execution state between processes — no generators, no clocks, no cursors,
no compiled code objects.  Everything that crosses the FIFO hand-off queues
is one of the plain-data shapes below:

* :class:`SessionSpec` — one admitted query as data: the query, its
  admission time, optional plan override, quantum size, and (for
  partition-parallel execution) per-partition source overrides.  The worker
  rehydrates a full :class:`~repro.serving.session.QuerySession` from it;
  compiled pipelines are rebuilt from generated source on the worker side
  (see :func:`repro.engine.compiled.bind_chain`), never pickled.
* :class:`ShardTask` — one worker's entire assignment: catalog snapshot,
  source pool, processor knobs, scheduling policy, statistics snapshot, and
  the specs of every session routed to that shard.
* :class:`SessionResult` — one finished session: shard-clock timing plus the
  complete :class:`~repro.core.corrective.CorrectiveExecutionReport` (the
  report is plain data end to end, so workers return it whole and the
  differential harness can compare bits, not summaries).
* :class:`ShardResult` — one worker's return payload: its session results,
  its post-run statistics snapshot (folded into the front-end store in
  worker-id order), and wall-clock utilization telemetry.

These classes are declared as ``cross_process_safe`` payloads in
:mod:`repro.serving.channels`, which puts them — and every class their
annotations reference — under the shard audit's picklability rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.corrective import CorrectiveExecutionReport
from repro.engine.cost import CostModel
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.serving.stats_cache import StatisticsSnapshot


@dataclass(frozen=True)
class SessionSpec:
    """One admitted query, as data a worker can rehydrate a session from."""

    index: int
    label: str
    query: SPJAQuery
    admit_at: float = 0.0
    quantum_tuples: int = 200
    initial_tree: JoinTree | None = None
    #: label of the partitioned submission this spec is one fragment of
    #: (``None`` for ordinary sessions); partition fragments are excluded
    #: from statistics absorption — their exhausted-source counts describe
    #: a partition, not the relation.
    partition_of: str | None = None
    partition_index: int = 0
    #: relations whose data this session reads from a partition-local
    #: override instead of the shard's shared source pool
    source_overrides: dict[str, Relation] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker process needs to drive its scheduler shard."""

    worker_id: int
    policy: str
    catalog: Catalog
    sources: dict[str, object]
    specs: tuple[SessionSpec, ...]
    processor_options: dict[str, Any] = field(default_factory=dict)
    snapshot: StatisticsSnapshot | None = None
    share_statistics: bool = True
    #: the front-end's cost model (a plain dataclass of weights); ``None``
    #: means the worker builds a default one
    cost_model: CostModel | None = None


@dataclass(frozen=True)
class SessionResult:
    """One finished session, with shard-clock timing and its full report."""

    index: int
    label: str
    query_name: str
    worker_id: int
    admitted_at: float
    started_at: float
    finished_at: float
    quanta: int
    report: CorrectiveExecutionReport
    partition_of: str | None = None
    partition_index: int = 0


@dataclass(frozen=True)
class ShardResult:
    """One worker's return payload over the result hand-off queue."""

    worker_id: int
    results: tuple[SessionResult, ...] = ()
    #: the worker-local cache's post-run state; ``None`` when the shard ran
    #: with statistics learning disabled
    snapshot: StatisticsSnapshot | None = None
    quanta: int = 0
    #: simulated seconds this shard serialized (max of its sessions' finish
    #: times — each session ran on its own private clock)
    shard_seconds: float = 0.0
    wall_seconds: float = 0.0
    busy_wall_seconds: float = 0.0
    #: formatted traceback when the shard failed; the front-end re-raises
    error: str | None = None
