"""A cross-process :class:`SharedStatisticsCache` behind the existing API.

:class:`SharedStatisticsStore` hosts one real
:class:`~repro.serving.stats_cache.SharedStatisticsCache` inside a
``multiprocessing`` manager process and exposes the cache's method surface
as a local facade.  Any process holding the facade (or a pickled copy of
it) reads and writes the *same* learned statistics — the "later queries on
any worker still start from learned estimates" property of the sharded
serving tier, held across successive server runs.

Two deliberate design points:

* **Method calls only.**  Every consumer of the cache — the
  :class:`~repro.adaptivity.policies.SharedLearningPolicy`, the sharded
  front-end, the benchmarks — already talks to it through methods, never
  attributes, which is exactly what a manager proxy can forward.  The one
  exception, :meth:`apply_cardinalities`, mutates its *argument* (the
  caller's catalog), so the facade performs it locally from a fetched
  snapshot instead of forwarding it.
* **Snapshots stay the bulk-transfer protocol.**  The sharded server seeds
  workers from one run-start :meth:`snapshot_state` and folds their results
  back via :meth:`absorb_snapshot`; pointing its ``stats_cache`` at a store
  simply makes that persistent state live outside any single front-end
  process.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.managers import BaseManager
from typing import Any, Iterable

from repro.optimizer.statistics import ObservedStatistics
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog
from repro.serving.stats_cache import SharedStatisticsCache, StatisticsSnapshot
from repro.stats.histogram import DynamicCompressedHistogram


def _make_manager(start_method: str | None) -> BaseManager:
    """A manager whose server process hosts one statistics cache."""

    class _StoreManager(BaseManager):
        pass

    _StoreManager.register("shared_statistics_cache", SharedStatisticsCache)
    return _StoreManager(ctx=multiprocessing.get_context(start_method))


class SharedStatisticsStore:
    """The statistics cache's API, served out of a manager process."""

    def __init__(self, start_method: str | None = None) -> None:
        manager = _make_manager(start_method)
        manager.start()
        self._manager = manager
        factory = getattr(manager, "shared_statistics_cache")
        self._proxy: Any = factory()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the manager process (the learned state dies with it)."""
        self._manager.shutdown()

    def __enter__(self) -> "SharedStatisticsStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the cache API, forwarded -------------------------------------------------

    def seed_for(self, query: SPJAQuery) -> ObservedStatistics | None:
        seed = self._proxy.seed_for(query)
        return seed if isinstance(seed, ObservedStatistics) else None

    def apply_cardinalities(self, catalog: Catalog) -> int:
        # Performed locally — a proxy call would mutate a remote *copy* of
        # the caller's catalog and discard it.
        local = SharedStatisticsCache()
        local.hydrate_state(self.snapshot_state())
        return local.apply_cardinalities(catalog)

    def absorb(self, observed: ObservedStatistics) -> None:
        self._proxy.absorb(observed)

    def record_histogram(
        self, relation: str, attribute: str, histogram: DynamicCompressedHistogram
    ) -> None:
        self._proxy.record_histogram(relation, attribute, histogram)

    def histogram(
        self, relation: str, attribute: str
    ) -> DynamicCompressedHistogram | None:
        result = self._proxy.histogram(relation, attribute)
        return result if isinstance(result, DynamicCompressedHistogram) else None

    def record_rate_sample(
        self,
        relation: str,
        now: float,
        arrived: int,
        promised_rate: float | None = None,
        total: int | None = None,
    ) -> None:
        self._proxy.record_rate_sample(relation, now, arrived, promised_rate, total)

    def observed_rate(self, relation: str) -> float | None:
        rate = self._proxy.observed_rate(relation)
        return rate if isinstance(rate, float) else None

    def rate_outlook(
        self,
        relations: Iterable[str],
        collapse_fraction: float = 0.5,
        min_expected: int = 16,
    ) -> dict[str, float]:
        outlook = self._proxy.rate_outlook(
            list(relations), collapse_fraction, min_expected
        )
        return dict(outlook)

    # -- cross-process transfer ---------------------------------------------------

    def snapshot_state(self) -> StatisticsSnapshot:
        snapshot = self._proxy.snapshot_state()
        assert isinstance(snapshot, StatisticsSnapshot)
        return snapshot

    def hydrate_state(self, snapshot: StatisticsSnapshot) -> None:
        self._proxy.hydrate_state(snapshot)

    def absorb_snapshot(self, snapshot: StatisticsSnapshot) -> None:
        self._proxy.absorb_snapshot(snapshot)

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        return dict(self._proxy.summary())
