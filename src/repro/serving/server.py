"""The multi-query serving layer: N concurrent queries, one simulated clock.

This is the first layer that makes the reproduction a *server* rather than a
one-shot experiment harness.  A :class:`QueryServer` admits SPJA queries over
a shared catalog / source pool and interleaves their corrective (pipelined,
optionally batched) executions quantum by quantum on one shared
:class:`~repro.engine.cost.SimulatedClock`:

* a **scheduling policy** (round-robin or shortest-remaining-cost, see
  :mod:`repro.serving.scheduler`) picks which *ready* session runs next — a
  session waiting on a remote source's next burst drops out of the ready set,
  so its I/O stall is overlapped with other queries' computation, the
  multi-query generalization of the paper's data-availability-driven
  scheduling;
* every query referencing a source shares the **same source object** (and
  for :class:`~repro.sources.remote.RemoteSource` the same cached arrival
  schedule), each with its own sequential cursor — the shared source pool of
  adaptive federated processing;
* a :class:`~repro.serving.stats_cache.SharedStatisticsCache` carries what
  each finished query's monitor learned (selectivities, multiplicative-join
  flags, exact cardinalities of exhausted sources) into the optimizer and
  re-optimizer of every later query.

Correctness bar: interleaving changes *when* each query polls its
re-optimizer and which plans it runs through, but never its answer — each
query's result multiset is identical to a solo run of the same query
(enforced by the serving-vs-solo differential tests).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sized
from dataclasses import dataclass, field
from typing import Any

from repro.adaptivity import (
    AdaptationController,
    AdaptationPolicy,
    RateOutlookPolicy,
    SharedLearningPolicy,
)
from repro.core.corrective import CorrectiveExecutionReport, CorrectiveQueryProcessor
from repro.engine.cost import CostModel, SimulatedClock
from repro.optimizer.plans import JoinTree
from repro.relational.algebra import SPJAQuery
from repro.relational.catalog import Catalog, DEFAULT_ASSUMED_CARDINALITY
from repro.relational.schema import Schema
from repro.serving.scheduler import SchedulingPolicy, make_policy
from repro.serving.session import QuerySession
from repro.serving.stats_cache import SharedStatisticsCache


@dataclass
class ServedQuery:
    """One completed query: identity, timing, and its execution report."""

    label: str
    query_name: str
    admitted_at: float
    started_at: float
    finished_at: float
    quanta: int
    report: CorrectiveExecutionReport

    @property
    def latency(self) -> float:
        """Admission-to-completion simulated seconds on the shared clock."""
        return self.finished_at - self.admitted_at

    @property
    def rows(self) -> list[tuple[object, ...]]:
        return self.report.rows

    @property
    def schema(self) -> Schema:
        return self.report.schema

    @property
    def phases(self) -> int:
        return self.report.num_phases

    def summary(self) -> dict[str, object]:
        return {
            "label": self.label,
            "query": self.query_name,
            "admitted": round(self.admitted_at, 3),
            "finished": round(self.finished_at, 3),
            "latency_seconds": round(self.latency, 3),
            "phases": self.phases,
            "quanta": self.quanta,
            "answers": len(self.rows),
        }


@dataclass
class ServingReport:
    """Everything one serving run produced."""

    policy: str
    batch_size: int | None
    quantum_tuples: int
    served: list[ServedQuery]
    makespan: float
    total_quanta: int
    clock_wait_seconds: float
    source_opens: dict[str, int] = field(default_factory=dict)
    stats_cache_summary: dict[str, int] = field(default_factory=dict)
    #: labels of sessions whose activation admission backpressure deferred
    #: at least once (empty when the knob is off or the pool stayed healthy)
    backpressure_deferred: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.served)

    def latencies(self) -> list[float]:
        return sorted(query.latency for query in self.served)

    def throughput(self) -> float:
        """Completed queries per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return len(self.served) / self.makespan

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (``fraction`` in [0, 1]) of query latency."""
        latencies = self.latencies()
        if not latencies:
            return 0.0
        rank = math.ceil(fraction * len(latencies))
        return latencies[min(max(rank - 1, 0), len(latencies) - 1)]

    def summary_rows(self) -> list[dict[str, object]]:
        return [query.summary() for query in self.served]

    def aggregate_summary(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "queries": len(self.served),
            "makespan_seconds": round(self.makespan, 3),
            "throughput_qps": round(self.throughput(), 4),
            "p50_latency_seconds": round(self.latency_percentile(0.50), 3),
            "p95_latency_seconds": round(self.latency_percentile(0.95), 3),
            "total_quanta": self.total_quanta,
        }


def corrective_processor_options(
    *,
    polling_interval_seconds: float = 1.0,
    switch_threshold: float = 0.8,
    max_phases: int = 8,
    default_cardinality: int = DEFAULT_ASSUMED_CARDINALITY,
    bushy: bool = True,
    batch_size: int | None = None,
    order_adaptive: bool = False,
    engine_mode: str = "interpreted",
    rate_adaptive: bool = False,
    rate_collapse_fraction: float = 0.5,
    rate_switch_threshold: float = 0.8,
    failover_adaptive: bool = False,
    failover_stall_seconds: float = 0.05,
    failover_outage_polls: int = 2,
) -> dict[str, Any]:
    """The :class:`CorrectiveQueryProcessor` keyword set as a plain dict.

    One definition shared by the in-process server and the sharded worker
    fabric: :meth:`QueryServer.submit` expands it locally, while
    :class:`~repro.serving.sharded.ShardedQueryServer` embeds it in each
    picklable :class:`~repro.serving.specs.ShardTask` so workers build
    processors with exactly the knobs the front-end was configured with.
    Every value is a plain scalar, so the dict pickles as-is.
    """
    from repro.engine.compiled import ENGINE_MODES

    if engine_mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine_mode {engine_mode!r}; expected one of {ENGINE_MODES}"
        )
    if engine_mode == "compiled" and batch_size is None:
        raise ValueError(
            "engine_mode='compiled' requires batch_size (the compiled "
            "engine specializes the batched execution path)"
        )
    return {
        "polling_interval_seconds": polling_interval_seconds,
        "switch_threshold": switch_threshold,
        "max_phases": max_phases,
        "default_cardinality": default_cardinality,
        "bushy": bushy,
        "batch_size": batch_size,
        "order_adaptive": order_adaptive,
        "engine_mode": engine_mode,
        "rate_adaptive": rate_adaptive,
        "rate_collapse_fraction": rate_collapse_fraction,
        "rate_switch_threshold": rate_switch_threshold,
        "failover_adaptive": failover_adaptive,
        "failover_stall_seconds": failover_stall_seconds,
        "failover_outage_polls": failover_outage_polls,
    }


class QueryServer:
    """Admit N concurrent SPJA queries and serve them on one shared clock."""

    def __init__(
        self,
        catalog: Catalog,
        sources: dict[str, object],
        cost_model: CostModel | None = None,
        policy: str | SchedulingPolicy = "round_robin",
        batch_size: int | None = None,
        quantum_tuples: int = 200,
        polling_interval_seconds: float = 1.0,
        switch_threshold: float = 0.8,
        max_phases: int = 8,
        bushy: bool = True,
        default_cardinality: int = DEFAULT_ASSUMED_CARDINALITY,
        stats_cache: SharedStatisticsCache | None = None,
        share_statistics: bool = True,
        order_adaptive: bool = False,
        engine_mode: str = "interpreted",
        rate_adaptive: bool = False,
        rate_collapse_fraction: float = 0.5,
        rate_switch_threshold: float = 0.8,
        failover_adaptive: bool = False,
        failover_stall_seconds: float = 0.05,
        failover_outage_polls: int = 2,
        admission_backpressure: bool = False,
        backpressure_collapse_fraction: float = 0.5,
        rate_seeded_plans: bool = False,
        session_policies: tuple[AdaptationPolicy, ...] = (),
    ) -> None:
        """``quantum_tuples`` is the scheduling granularity: how many source
        tuples one grant may process before control returns to the scheduler
        (it doubles as each session's re-optimization ``poll_step_limit``).
        ``share_statistics=False`` disables cross-query seeding while keeping
        the cache's learning (useful for ablations).  ``order_adaptive=True``
        turns on order-adaptive join processing in every session; discovered
        orderings travel through the shared statistics cache, so an order
        learned while serving one query lets later queries start on merge
        joins immediately.  ``rate_adaptive=True`` adds the source-rate
        policy to every session (collapsed sources are demoted in the read
        schedule and can trigger rate-aware plan switches — see
        :class:`~repro.adaptivity.rate.SourceRatePolicy`).
        ``engine_mode="compiled"`` (requires a
        ``batch_size``) runs every session's phases through the fused
        compiled batch pipelines; served answers, per-query simulated
        timings and phase counts are bit-identical to interpreted serving,
        and each session recompiles per phase exactly as in solo execution —
        incremental quanta suspend and resume compiled plans transparently.
        ``failover_adaptive=True`` adds the mirror-failover policy to every
        session (sources in sustained outage resume from registered mirrors
        — see :class:`~repro.adaptivity.failover.MirrorFailoverPolicy`).
        ``admission_backpressure=True`` defers *activating* a due session
        while a source it reads is collapsed (delivery below
        ``backpressure_collapse_fraction`` of its promise, judged from the
        cache's rate telemetry): healthy sessions run first and the flaky
        session stops contending for quanta it would only spend waiting.  A
        deferred session is force-admitted the moment it would hold the only
        runnable slot, so backpressure can starve nobody.
        ``rate_seeded_plans=True`` registers a
        :class:`~repro.adaptivity.rate.RateOutlookPolicy` with every session:
        repeat queries over a source the cache knows is slow get an initial
        plan that gates joins behind that source's arrivals.
        ``session_policies`` are extra adaptation policies registered with
        every session's controller — the serving-side extension point for
        new adaptive behaviours (no server change needed to add one).
        The remaining knobs are forwarded to each session's
        :class:`CorrectiveQueryProcessor`.
        """
        if quantum_tuples < 1:
            raise ValueError("quantum_tuples must be positive")
        # Validates engine_mode / batch_size combinations as a side effect;
        # submit() re-derives the dict so later attribute tweaks still apply.
        corrective_processor_options(batch_size=batch_size, engine_mode=engine_mode)
        # The server owns a private catalog copy: learned statistics are
        # published into it between sessions without mutating the caller's.
        self.catalog = catalog.copy()
        self.sources = dict(sources)
        self.cost_model = cost_model or CostModel()
        self.policy = make_policy(policy)
        self.batch_size = batch_size
        self.quantum_tuples = quantum_tuples
        self.polling_interval_seconds = polling_interval_seconds
        self.switch_threshold = switch_threshold
        self.max_phases = max_phases
        self.bushy = bushy
        self.default_cardinality = default_cardinality
        self.stats_cache = stats_cache or SharedStatisticsCache()
        self.share_statistics = share_statistics
        self.order_adaptive = order_adaptive
        self.engine_mode = engine_mode
        self.rate_adaptive = rate_adaptive
        self.rate_collapse_fraction = rate_collapse_fraction
        self.rate_switch_threshold = rate_switch_threshold
        self.failover_adaptive = failover_adaptive
        self.failover_stall_seconds = failover_stall_seconds
        self.failover_outage_polls = failover_outage_polls
        self.admission_backpressure = admission_backpressure
        self.backpressure_collapse_fraction = backpressure_collapse_fraction
        self.rate_seeded_plans = rate_seeded_plans
        self.session_policies = tuple(session_policies)
        self._deferred_labels: list[str] = []
        # Cross-query adaptation: the shared-learning policy owns every
        # interaction with the statistics cache; the serving loop only talks
        # to this controller (session_starting / session_finished).
        self.adaptation = AdaptationController(
            [SharedLearningPolicy(self.stats_cache, share_statistics=share_statistics)]
        )
        self.clock = SimulatedClock(self.cost_model)
        self._sessions: list[QuerySession] = []
        self._turn = 0
        self._ran = False

    def processor_options(self) -> dict[str, Any]:
        """This server's per-session :class:`CorrectiveQueryProcessor` knobs."""
        return corrective_processor_options(
            polling_interval_seconds=self.polling_interval_seconds,
            switch_threshold=self.switch_threshold,
            max_phases=self.max_phases,
            default_cardinality=self.default_cardinality,
            bushy=self.bushy,
            batch_size=self.batch_size,
            order_adaptive=self.order_adaptive,
            engine_mode=self.engine_mode,
            rate_adaptive=self.rate_adaptive,
            rate_collapse_fraction=self.rate_collapse_fraction,
            rate_switch_threshold=self.rate_switch_threshold,
            failover_adaptive=self.failover_adaptive,
            failover_stall_seconds=self.failover_stall_seconds,
            failover_outage_polls=self.failover_outage_polls,
        )

    # -- admission ---------------------------------------------------------------

    def submit(
        self,
        query: SPJAQuery,
        admit_at: float = 0.0,
        initial_tree: JoinTree | None = None,
        label: str | None = None,
    ) -> str:
        """Admit ``query`` at simulated time ``admit_at``; returns its label.

        Labels are unique per session (several instances of the same query
        may be in flight at once).  ``initial_tree`` overrides the
        optimizer's initial plan choice, as in the solo corrective API.
        """
        if self._ran:
            raise RuntimeError("this server has already run; build a new one")
        missing = [name for name in query.relations if name not in self.sources]
        if missing:
            raise KeyError(f"query references unregistered sources: {missing}")
        if admit_at < 0:
            raise ValueError("admit_at must be non-negative")
        index = len(self._sessions)
        session_label = label or f"q{index}:{query.name}"
        if any(session.label == session_label for session in self._sessions):
            session_label = f"{session_label}#{index}"
        processor = CorrectiveQueryProcessor(
            self.catalog,
            self.sources,
            self.cost_model,
            **self.processor_options(),
        )
        for policy in self.session_policies:
            processor.adaptation.register(policy)
        if self.rate_seeded_plans:
            processor.adaptation.register(
                RateOutlookPolicy(
                    self.stats_cache,
                    collapse_fraction=self.backpressure_collapse_fraction,
                )
            )
        self._sessions.append(
            QuerySession(
                index=index,
                label=session_label,
                query=query,
                processor=processor,
                catalog=self.catalog,
                admit_at=admit_at,
                initial_tree=initial_tree,
                quantum_tuples=self.quantum_tuples,
            )
        )
        return session_label

    # -- serving loop ------------------------------------------------------------

    def run(self) -> ServingReport:
        """Serve every admitted query to completion; returns the report."""
        if self._ran:
            raise RuntimeError("this server has already run; build a new one")
        self._ran = True
        self._prime_sources()
        # Snapshot shared sources' lifetime open counters so the report shows
        # the connection load of *this* run, not of prior solo/serving runs
        # over the same source objects.
        opens_before: dict[str, int] = {
            name: getattr(source, "open_count")
            for name, source in self.sources.items()
            if hasattr(source, "open_count")
        }
        clock = self.clock
        started_now = clock.now
        pending = sorted(self._sessions, key=lambda s: (s.admit_at, s.index))
        active: list[QuerySession] = []
        finished: list[QuerySession] = []

        while pending or active:
            # Admit sessions whose arrival time has come.  Activation runs
            # the initial optimization against the catalog as of *now*, so
            # later arrivals see every statistic learned so far.  Under
            # admission backpressure a due session over a collapsed source
            # is skipped (it stays in ``pending``) while healthy due
            # sessions behind it activate; without the knob every due
            # session admits unconditionally, exactly as before.
            deferred: list[QuerySession] = []
            progressed = True
            while progressed:
                progressed = False
                for session in pending:
                    if session.admit_at > clock.now:
                        break
                    if session in deferred:
                        continue
                    reason = self._admission_deferral(session)
                    if reason is not None:
                        deferred.append(session)
                        if session.label not in self._deferred_labels:
                            self._deferred_labels.append(session.label)
                        continue
                    pending.remove(session)
                    self._activate(session)
                    (finished if session.state is session.DONE else active).append(
                        session
                    )
                    # Activation charges optimizer work on the shared clock,
                    # which may make more sessions due: rescan from the head.
                    progressed = True
                    break
            if not active and deferred:
                # Deadlock guard: a deferred session must never hold the
                # only runnable slot.  With nothing else to overlap, holding
                # it back buys nothing — admit the earliest one and let it
                # run (its collapsed source is then the rate/failover
                # policies' problem, not admission's).
                session = deferred[0]
                pending.remove(session)
                self._activate(session)
                (finished if session.state is session.DONE else active).append(session)
                continue
            if not active:
                if pending:
                    clock.wait_until(pending[0].admit_at)
                continue

            ready = [session for session in active if session.is_ready(clock.now)]
            if not ready:
                # Every active session is waiting on a future source arrival:
                # advance the shared clock to the earliest of them (or to the
                # next *future* admission, whichever comes first) — simulated
                # I/O wait that no runnable computation could overlap.
                # Deferred sessions' past admit times are not wait targets
                # (waiting for a past instant would freeze the clock); their
                # admission is re-evaluated on every pass.
                targets = [
                    arrival
                    for arrival in (session.next_arrival() for session in active)
                    if arrival is not None
                ]
                future_admits = [
                    session.admit_at
                    for session in pending
                    if session.admit_at > clock.now
                ]
                if future_admits:
                    targets.append(future_admits[0])
                clock.wait_until(min(targets))
                continue

            session = self.policy.pick(ready, clock.now)
            session.last_granted_turn = self._turn
            self._turn += 1
            if session.grant():
                session.finished_at = clock.now
                active.remove(session)
                finished.append(session)
                self._absorb(session)

        finished.sort(key=lambda session: session.index)
        served: list[ServedQuery] = []
        for session in finished:
            # A finished session always carries its timing and report.
            assert session.started_at is not None
            assert session.finished_at is not None
            assert session.report is not None
            served.append(
                ServedQuery(
                    label=session.label,
                    query_name=session.query.name,
                    admitted_at=session.admit_at,
                    started_at=session.started_at,
                    finished_at=session.finished_at,
                    quanta=session.quanta,
                    report=session.report,
                )
            )
        return ServingReport(
            policy=self.policy.name,
            batch_size=self.batch_size,
            quantum_tuples=self.quantum_tuples,
            served=served,
            makespan=clock.now - started_now,
            total_quanta=self._turn,
            clock_wait_seconds=clock.wait_time,
            source_opens={
                name: getattr(source, "open_count") - opens_before[name]
                for name, source in self.sources.items()
                if hasattr(source, "open_count")
            },
            stats_cache_summary=self.stats_cache.summary(),
            backpressure_deferred=list(self._deferred_labels),
        )

    # -- internals ---------------------------------------------------------------

    def _prime_sources(self) -> None:
        """Materialize every remote source's arrival schedule up front.

        All sessions reading a source then share one schedule by
        construction, regardless of which session's cursor opens it first.
        """
        for source in self.sources.values():
            prime = getattr(source, "prime", None)
            if callable(prime):
                prime()

    def _record_rate_telemetry(self, relations: Iterable[str]) -> None:
        """Sample the named sources' delivered counts into the stats cache.

        No-op unless a consumer is on (backpressure / rate-seeded plans):
        the samples exist for admission decisions and initial plan choice,
        and recording them unconditionally would churn the cache summary of
        configurations that never read them.
        """
        if not (self.admission_backpressure or self.rate_seeded_plans):
            return
        now = self.clock.now
        for relation in relations:
            source = self.sources.get(relation)
            arrived_by = getattr(source, "arrived_by", None)
            if arrived_by is None:
                continue
            self.stats_cache.record_rate_sample(
                relation,
                now,
                arrived_by(now),
                promised_rate=getattr(source, "promised_rate", None),
                total=len(source) if isinstance(source, Sized) else None,
            )

    def _admission_deferral(self, session: QuerySession) -> str | None:
        """Why activation of a due session should wait (``None`` = admit).

        Admission backpressure: when recent telemetry shows a source the
        session reads delivering decisively below its promise, the session
        would mostly occupy scheduler slots waiting on that source's
        trickle.  Deferring it keeps the quanta with healthy sessions; the
        serving loop re-evaluates on every pass and force-admits the moment
        the deferred session is the only runnable work.
        """
        if not self.admission_backpressure:
            return None
        self._record_rate_telemetry(session.query.relations)
        outlook = self.stats_cache.rate_outlook(
            session.query.relations,
            collapse_fraction=self.backpressure_collapse_fraction,
        )
        if not outlook:
            return None
        worst = max(outlook, key=lambda name: (outlook[name], name))
        return (
            f"{worst} collapsed: ~{outlook[worst]:.3f}s of arrivals outstanding"
        )

    def _activate(self, session: QuerySession) -> None:
        self._record_rate_telemetry(session.query.relations)
        seed = self.adaptation.session_starting(session.query, self.catalog)
        session.start(self.clock, seed_statistics=seed)
        if session.state is session.DONE:  # pragma: no cover - defensive
            session.finished_at = self.clock.now
            self._absorb(session)

    def _absorb(self, session: QuerySession) -> None:
        """Let the cross-query policies absorb a finished session's learning."""
        self._record_rate_telemetry(session.query.relations)
        self.adaptation.session_finished(session.report, self.catalog)
