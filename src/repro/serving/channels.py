"""The shared-channel registry: the serving layer's explicit sharing contract.

The in-process `QueryServer` interleaves every session's quanta on one
shared :class:`~repro.engine.cost.SimulatedClock`; the sharded tier
(:mod:`repro.serving.sharded`, ROADMAP item 1) splits that loop into N
worker processes.  The split is only safe if every object
reachable from two or more served sessions is *named*, carries a declared
access discipline, and is machine-checked against it — an undeclared
cross-session mutation that is benign under single-threaded interleaving
becomes a nondeterministic race the moment sessions move to separate
processes.

This module is that contract.  Each :class:`SharedChannel` names one shared
object (or planned hand-off payload family), its discipline, and a one-line
rationale:

``read_only``
    Sessions may read but nothing mutates the object while sessions run;
    shardable by copying.
``single_writer``
    Exactly one component mutates it at a time — the serving loop between
    quanta, or the engine of the single session currently holding the
    quantum.  The sanctioned writer symbols are listed per channel.  Under
    sharding these become per-worker instances (clock) or front-end-owned
    state (catalog).
``cross_process_safe``
    Will cross a process boundary under sharding; every transitively
    reachable field must be picklable, and compiled pipelines must travel
    as ``__compiled_source__`` + constants, never as code objects.

The shard-safety rules in :mod:`repro.analysis.sharding` *parse this file
statically* (the declarations are deliberately literal-only) and verify the
package against it: undeclared escapes of server state into sessions,
channel mutations outside the sanctioned writer list, clock mutators
outside the drive loops, and unpicklable fields in ``cross_process_safe``
payloads are all findings.  ``repro-lint --shard-audit`` renders the
inventory below; the worker-process split (ROADMAP item 1) implements
against it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the three access disciplines a shared channel may declare
DISCIPLINES: tuple[str, ...] = ("read_only", "single_writer", "cross_process_safe")


@dataclass(frozen=True)
class SharedChannel:
    """One declared cross-session sharing channel.

    ``attributes`` are the attribute/parameter names the object travels
    under in code (the escape and isolation rules match receivers by these
    names); ``mutators`` are the method names that mutate the channel
    object; ``writers`` are the sanctioned ``path::Qualified.symbol`` sites
    allowed to invoke them.  ``type_name`` is the channel object's class;
    ``payload_types`` are additional class names that must satisfy the
    picklability audit for ``cross_process_safe`` channels.
    """

    name: str
    type_name: str
    discipline: str
    rationale: str
    attributes: tuple[str, ...] = ()
    mutators: tuple[str, ...] = ()
    writers: tuple[str, ...] = ()
    payload_types: tuple[str, ...] = ()

    def validate(self) -> list[str]:
        """Human-readable declaration problems (empty when well-formed)."""
        problems: list[str] = []
        if self.discipline not in DISCIPLINES:
            problems.append(
                f"channel {self.name!r} declares unknown discipline "
                f"{self.discipline!r}; expected one of {DISCIPLINES}"
            )
        if not self.rationale.strip():
            problems.append(
                f"channel {self.name!r} has no rationale; every shared "
                "channel must say why its discipline is safe"
            )
        if self.discipline == "read_only" and self.writers:
            problems.append(
                f"read_only channel {self.name!r} lists writer sites; "
                "a read-only channel has no sanctioned writers"
            )
        return problems


# ---------------------------------------------------------------------------
# The registry.  Every entry is literal-only so the static analyzer can read
# it without importing the package (and so the declarations cannot silently
# depend on runtime state).  Additions here require the same scrutiny as a
# whitelist change: the shared-channel rule reports channels that no longer
# correspond to an observed escape as stale.
# ---------------------------------------------------------------------------

CHANNELS: tuple[SharedChannel, ...] = (
    SharedChannel(
        name="clock",
        type_name="SimulatedClock",
        discipline="single_writer",
        rationale=(
            "one simulated clock orders all sessions' work; only the serving "
            "loop (idle-time jumps) and the engine drive loops of the session "
            "currently holding the quantum may advance it — under sharding "
            "each worker owns a clock shard synchronized at hand-off points"
        ),
        attributes=("clock", "_clock"),
        mutators=("charge", "charge_metrics", "wait_until", "advance"),
        writers=(
            "serving/server.py::QueryServer.run",
            "engine/executor.py::PullExecutor.execute",
            "engine/operators/scan.py::Scan._produce",
            "engine/pipelined.py::PipelinedPlan.step",
            "engine/pipelined.py::PipelinedPlan.step_batch",
            "engine/pipelined.py::PipelinedPlan._run_compiled_groups",
            "engine/pipelined.py::PipelinedPlan._sync_clock",
            "core/complementary.py::_JoinDriver.read",
            "core/complementary.py::_JoinDriver.sync_clock",
            "core/stitchup.py::StitchUpExecutor._charge_clock",
        ),
    ),
    SharedChannel(
        name="catalog",
        type_name="Catalog",
        discipline="single_writer",
        rationale=(
            "server-private catalog copy; sessions read it during plan "
            "choice, and learned exact cardinalities are published between "
            "quanta by the shared-learning policy only — the front-end tier "
            "owns it under sharding"
        ),
        attributes=("catalog",),
        mutators=("register", "set_statistics"),
        writers=(
            "serving/stats_cache.py::SharedStatisticsCache.apply_cardinalities",
        ),
    ),
    SharedChannel(
        name="sources",
        type_name="RemoteSource",
        discipline="single_writer",
        rationale=(
            "shared source pool: rows and cached arrival schedules are "
            "immutable after the server primes them; per-session cursors "
            "are session-owned, open counts are commutative telemetry, and "
            "mirror registration happens at setup time only"
        ),
        attributes=("sources",),
        mutators=("register_mirror", "prime"),
        writers=("serving/server.py::QueryServer._prime_sources",),
    ),
    SharedChannel(
        name="cost_model",
        type_name="CostModel",
        discipline="read_only",
        rationale=(
            "frozen dataclass of work-unit weights; identical in every "
            "process by construction, shardable by copying"
        ),
        attributes=("cost_model",),
    ),
    SharedChannel(
        name="stats_cache",
        type_name="SharedStatisticsCache",
        discipline="cross_process_safe",
        rationale=(
            "the cross-query learning store; mutated only by the serving "
            "loop's telemetry hook and the shared-learning policy between "
            "sessions, and every reachable field must pickle — under "
            "sharding each worker hydrates a private cache from a snapshot "
            "and the front-end folds post-run snapshots in worker-id order "
            "(see the stats_store channel for the manager-hosted variant)"
        ),
        attributes=("stats_cache", "cache"),
        mutators=("absorb", "record_rate_sample", "record_histogram"),
        writers=(
            "serving/server.py::QueryServer._record_rate_telemetry",
            "adaptivity/policies.py::SharedLearningPolicy.session_finished",
        ),
        payload_types=("ObservedStatistics", "DynamicCompressedHistogram"),
    ),
    SharedChannel(
        name="session_policies",
        type_name="AdaptationPolicy",
        discipline="read_only",
        rationale=(
            "extra policy objects are registered with every session's "
            "controller, so one instance is aliased across all sessions; "
            "policies must keep per-run state in AdaptationRun.scratch, "
            "never on themselves"
        ),
        attributes=("session_policies",),
    ),
    SharedChannel(
        name="transports",
        type_name="ResilientSource",
        discipline="single_writer",
        rationale=(
            "real-I/O transport envelopes own sockets, file handles, DB-API "
            "connections and prefetch threads — per-process resources that "
            "must never cross a process boundary (deliberately NOT "
            "cross_process_safe; the picklability audit rejects their field "
            "types). The serving loop of the owning worker opens them and "
            "registers mirrors at setup time only; under sharding each "
            "worker rebuilds its own envelopes from picklable backend "
            "descriptions (paths, URLs, queries, fault plans)"
        ),
        attributes=("envelope",),
        mutators=("register_mirror", "reopen_from"),
        writers=("serving/server.py::QueryServer._prime_sources",),
    ),
    SharedChannel(
        name="shard_tasks",
        type_name="",
        discipline="cross_process_safe",
        rationale=(
            "the FIFO task hand-off of the sharded server: the front-end "
            "routes sessions to shards and enqueues one ShardTask per "
            "worker (catalog snapshot, source pool, picklable session "
            "specs, processor knobs, statistics snapshot); compiled "
            "pipelines rehydrate worker-side from generated source, never "
            "as code objects"
        ),
        writers=("serving/sharded.py::ShardedQueryServer.run",),
        payload_types=(
            "ShardTask",
            "SessionSpec",
            "StatisticsSnapshot",
        ),
    ),
    SharedChannel(
        name="handoff",
        type_name="",
        discipline="cross_process_safe",
        rationale=(
            "the FIFO result hand-off of the sharded server: each worker "
            "returns one ShardResult (full per-session corrective reports, "
            "its post-run statistics snapshot, wall/utilization telemetry) "
            "— every payload crosses the process boundary whole, so every "
            "field must pickle"
        ),
        writers=("serving/worker.py::worker_main",),
        payload_types=(
            "ShardResult",
            "SessionResult",
            "CorrectiveExecutionReport",
            "AdaptationEvent",
            "ExecutionMetrics",
            "CorrectiveTick",
            "TableStatistics",
        ),
    ),
    SharedChannel(
        name="stats_store",
        type_name="SharedStatisticsStore",
        discipline="cross_process_safe",
        rationale=(
            "the cross-process statistics store: one real cache hosted in a "
            "multiprocessing manager process behind the existing cache API "
            "(method calls only — apply_cardinalities runs facade-side from "
            "a fetched snapshot); state transfers are whole "
            "StatisticsSnapshot values, so learned estimates survive across "
            "front-end processes and successive server runs"
        ),
        payload_types=("StatisticsSnapshot",),
    ),
    SharedChannel(
        name="partition_merge",
        type_name="",
        discipline="cross_process_safe",
        rationale=(
            "partition-parallel execution: fragment inputs travel as "
            "hash-partitioned Relation overrides inside session specs, "
            "fragment outputs return as ordinary session results, and the "
            "front-end merges them deterministically in partition order "
            "(partial aggregates folded per group key, avg decomposed as "
            "sum/count)"
        ),
        writers=(
            "serving/sharded.py::ShardedQueryServer.run",
            "serving/partition.py::merge_partition_results",
        ),
        payload_types=("PartitionPlan", "Relation"),
    ),
)


def registered_channels() -> dict[str, SharedChannel]:
    """Name → channel for every registry entry."""
    return {channel.name: channel for channel in CHANNELS}


def validate_registry(channels: tuple[SharedChannel, ...] = CHANNELS) -> list[str]:
    """All declaration problems across the registry (empty when certified)."""
    problems: list[str] = []
    seen: set[str] = set()
    for channel in channels:
        if channel.name in seen:
            problems.append(f"duplicate channel declaration {channel.name!r}")
        seen.add(channel.name)
        problems.extend(channel.validate())
    return problems


def render_inventory(channels: tuple[SharedChannel, ...] = CHANNELS) -> str:
    """The human-readable channel-inventory table of ``--shard-audit``."""
    lines = [
        "shared-channel inventory "
        f"({len(channels)} channels, disciplines: {', '.join(DISCIPLINES)})"
    ]
    for channel in channels:
        head = f"  {channel.name:<16} {channel.discipline:<19}"
        head += channel.type_name or "(payload family)"
        lines.append(head)
        lines.append(f"      {channel.rationale}")
        if channel.writers:
            lines.append(
                "      writers: " + ", ".join(channel.writers)
            )
        if channel.payload_types:
            lines.append(
                "      payloads: " + ", ".join(channel.payload_types)
            )
    return "\n".join(lines)
