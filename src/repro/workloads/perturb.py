"""Dataset perturbations used by the order-exploitation experiments.

Figure 5 evaluates the complementary join over data that is fully ordered and
over "versions of the data in which we randomly swapped 1%, 10%, or 50% of
the data".  :func:`reorder_fraction` reproduces that perturbation
deterministically.  :func:`interleave_relations` builds the "mostly sorted"
scenario of Example 2.2 where two sorted bulk loads were appended.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.relational.relation import Relation


def reorder_fraction(
    relation: Relation,
    fraction: float,
    seed: int = 0,
    name: str | None = None,
) -> Relation:
    """Return a copy of ``relation`` with ``fraction`` of its rows displaced.

    ``fraction`` of the row positions are selected at random and the rows at
    those positions are permuted among themselves; the remaining rows stay in
    place.  ``fraction == 0`` returns an identical copy; ``fraction == 1``
    shuffles the whole relation.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rows = list(relation.rows)
    count = int(round(len(rows) * fraction))
    if count >= 2:
        rng = random.Random(seed)
        positions = rng.sample(range(len(rows)), count)
        shuffled = [rows[p] for p in positions]
        rng.shuffle(shuffled)
        for position, row in zip(positions, shuffled):
            rows[position] = row
    return Relation(name or f"{relation.name}_reordered", relation.schema, rows)


def displaced_fraction(original: Relation, perturbed: Relation) -> float:
    """Fraction of rows whose position changed between two same-size relations."""
    if len(original) != len(perturbed):
        raise ValueError("relations must have the same cardinality")
    if not len(original):
        return 0.0
    moved = sum(
        1 for a, b in zip(original.rows, perturbed.rows) if a != b
    )
    return moved / len(original)


def interleave_relations(
    parts: Sequence[Relation],
    seed: int = 0,
    name: str | None = None,
) -> Relation:
    """Randomly interleave several (individually sorted) relation segments.

    Models the "bulk loaded with some order that was not maintained by future
    updates" scenario: each part remains internally ordered, but their
    interleaving makes the whole only *mostly* sorted.
    """
    if not parts:
        raise ValueError("at least one part is required")
    schema = parts[0].schema
    for part in parts[1:]:
        if part.schema.names != schema.names:
            raise ValueError("all parts must share the same schema")
    rng = random.Random(seed)
    iterators = [list(part.rows) for part in parts]
    positions = [0] * len(iterators)
    rows: list[tuple] = []
    remaining = sum(len(chunk) for chunk in iterators)
    while remaining:
        weights = [len(chunk) - pos for chunk, pos in zip(iterators, positions)]
        choice = rng.choices(range(len(iterators)), weights=weights, k=1)[0]
        rows.append(iterators[choice][positions[choice]])
        positions[choice] += 1
        remaining -= 1
    return Relation(name or f"{parts[0].name}_interleaved", schema, rows)
