"""Deterministic TPC-H-style data generation (uniform and Zipf-skewed).

The paper evaluates on TPC-H scale factor 0.1 plus "a similar [dataset] that
has a skewed distribution ... using a Zipf factor z of 0.5 on the major
attributes" produced by Microsoft Research's TPC-D generator.  That generator
is not available; :class:`TPCHGenerator` reproduces the relevant statistical
structure: the same schema, the same key/foreign-key relationships, orders
and lineitems clustered (hence *sorted*) on their keys, and a ``zipf_z`` knob
that skews the foreign-key assignments and numeric attributes.

All generation is seeded and deterministic, so every benchmark run sees
exactly the same data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.relation import Relation
from repro.stats.zipf import ZipfSampler
from repro.workloads.tpch_schema import (
    CUSTOMER_SCHEMA,
    DATE_RANGE_DAYS,
    LINEITEM_SCHEMA,
    MARKET_SEGMENTS,
    NATION_SCHEMA,
    ORDERS_SCHEMA,
    PRIMARY_KEYS,
    REGION_NAMES,
    REGION_SCHEMA,
    RETURN_FLAGS,
    SORT_ORDERS,
    SUPPLIER_SCHEMA,
)


@dataclass
class TPCHData:
    """A generated database instance: the six relations plus metadata."""

    scale_factor: float
    zipf_z: float
    seed: int
    relations: dict[str, Relation] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    @property
    def region(self) -> Relation:
        return self.relations["region"]

    @property
    def nation(self) -> Relation:
        return self.relations["nation"]

    @property
    def supplier(self) -> Relation:
        return self.relations["supplier"]

    @property
    def customer(self) -> Relation:
        return self.relations["customer"]

    @property
    def orders(self) -> Relation:
        return self.relations["orders"]

    @property
    def lineitem(self) -> Relation:
        return self.relations["lineitem"]

    def total_tuples(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def as_sources(self) -> dict[str, Relation]:
        """Mapping usable directly as the executors' source dictionary."""
        return dict(self.relations)

    def catalog(self, with_cardinalities: bool = False) -> Catalog:
        """Build a catalog registering the schemas (and optionally true counts).

        ``with_cardinalities=False`` models the data integration situation:
        the system knows schemas and keys but not sizes (the "No Statistics"
        configuration of Figure 2); ``True`` adds exact cardinalities and
        per-attribute distinct counts (the "Given Cardinalities"
        configuration, which is also what pre-aggregation benefit estimation
        needs).
        """
        catalog = Catalog()
        for name, relation in self.relations.items():
            key = PRIMARY_KEYS.get(name)
            distinct_counts: dict[str, int] = {}
            if with_cardinalities:
                distinct_counts = {
                    attr: relation.distinct_count(attr)
                    for attr in relation.schema.names
                }
            stats = TableStatistics(
                cardinality=len(relation) if with_cardinalities else None,
                distinct_counts=distinct_counts,
                key_attributes=(key,) if key else (),
                sorted_on=(SORT_ORDERS[name],) if name in SORT_ORDERS else (),
            )
            catalog.register(name, relation.schema, stats, relation)
        return catalog


class TPCHGenerator:
    """Generates a :class:`TPCHData` instance.

    Parameters
    ----------
    scale_factor:
        Fraction of the standard TPC-H sizing (SF 1.0 = 150 000 customers,
        1.5 M orders, ~6 M lineitems).  The paper uses 0.1; the Python
        reproduction defaults to much smaller scales chosen per benchmark.
    zipf_z:
        Zipf exponent applied to foreign keys and numeric attributes.  0
        produces the uniform dataset, 0.5 matches the paper's skewed dataset.
    seed:
        Seed for all pseudo-randomness.
    """

    def __init__(self, scale_factor: float = 0.002, zipf_z: float = 0.0, seed: int = 42) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        if zipf_z < 0:
            raise ValueError("zipf_z must be non-negative")
        self.scale_factor = scale_factor
        self.zipf_z = zipf_z
        self.seed = seed

    # -- sizing ------------------------------------------------------------------

    @property
    def customer_count(self) -> int:
        return max(int(150_000 * self.scale_factor), 20)

    @property
    def supplier_count(self) -> int:
        # The floor of 25 keeps every nation represented even at tiny scales,
        # so queries that correlate customer and supplier nations (Q5) still
        # produce answers.
        return max(int(10_000 * self.scale_factor), 25)

    @property
    def orders_count(self) -> int:
        return self.customer_count * 10

    @property
    def mean_lineitems_per_order(self) -> int:
        return 4

    # -- generation ----------------------------------------------------------------

    def generate(self) -> TPCHData:
        rng = random.Random(self.seed)
        data = TPCHData(self.scale_factor, self.zipf_z, self.seed)
        data.relations["region"] = self._generate_region()
        data.relations["nation"] = self._generate_nation(rng)
        data.relations["supplier"] = self._generate_supplier(rng)
        data.relations["customer"] = self._generate_customer(rng)
        data.relations["orders"] = self._generate_orders(rng)
        data.relations["lineitem"] = self._generate_lineitem(rng, data.relations["orders"])
        return data

    def _generate_region(self) -> Relation:
        rows = [(key, name) for key, name in enumerate(REGION_NAMES)]
        return Relation("region", REGION_SCHEMA, rows)

    def _generate_nation(self, rng: random.Random) -> Relation:
        rows = []
        for key in range(25):
            rows.append((key, f"NATION#{key:02d}", key % len(REGION_NAMES)))
        return Relation("nation", NATION_SCHEMA, rows)

    def _generate_supplier(self, rng: random.Random) -> Relation:
        rows = []
        for key in range(1, self.supplier_count + 1):
            rows.append(
                (
                    key,
                    f"Supplier#{key:06d}",
                    rng.randrange(25),
                    round(rng.uniform(-999.99, 9999.99), 2),
                )
            )
        return Relation("supplier", SUPPLIER_SCHEMA, rows)

    def _generate_customer(self, rng: random.Random) -> Relation:
        rows = []
        segment_sampler = self._sampler(MARKET_SEGMENTS, rng)
        for key in range(1, self.customer_count + 1):
            rows.append(
                (
                    key,
                    f"Customer#{key:09d}",
                    rng.randrange(25),
                    segment_sampler(),
                    round(rng.uniform(-999.99, 9999.99), 2),
                    f"25-{rng.randrange(100, 999)}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                )
            )
        return Relation("customer", CUSTOMER_SCHEMA, rows)

    def _generate_orders(self, rng: random.Random) -> Relation:
        rows = []
        custkey_sampler = self._key_sampler(self.customer_count, rng, salt=1)
        for key in range(1, self.orders_count + 1):
            orderdate = rng.randrange(DATE_RANGE_DAYS)
            rows.append(
                (
                    key,
                    custkey_sampler(),
                    rng.choice("OFP"),
                    round(rng.uniform(1000.0, 400000.0), 2),
                    orderdate,
                    rng.randrange(2),
                )
            )
        # Orders are clustered (sorted) on their key, as bulk-loaded data
        # typically is -- the property the complementary-join work exploits.
        return Relation("orders", ORDERS_SCHEMA, rows)

    def _generate_lineitem(self, rng: random.Random, orders: Relation) -> Relation:
        rows = []
        suppkey_sampler = self._key_sampler(self.supplier_count, rng, salt=2)
        quantity_sampler = self._key_sampler(50, rng, salt=3)
        orderdate_pos = orders.schema.position("o_orderdate")
        orderkey_pos = orders.schema.position("o_orderkey")
        flag_sampler = self._sampler(RETURN_FLAGS, rng)
        for order_row in orders.rows:
            orderkey = order_row[orderkey_pos]
            orderdate = order_row[orderdate_pos]
            line_count = 1 + rng.randrange(2 * self.mean_lineitems_per_order - 1)
            for linenumber in range(1, line_count + 1):
                quantity = quantity_sampler()
                extendedprice = round(quantity * rng.uniform(900.0, 1100.0), 2)
                discount = round(rng.uniform(0.0, 0.10), 2)
                rows.append(
                    (
                        orderkey,
                        linenumber,
                        suppkey_sampler(),
                        quantity,
                        extendedprice,
                        discount,
                        round(extendedprice * (1.0 - discount), 2),
                        flag_sampler(),
                        min(orderdate + rng.randrange(1, 121), DATE_RANGE_DAYS + 120),
                    )
                )
        return Relation("lineitem", LINEITEM_SCHEMA, rows)

    # -- sampling helpers ------------------------------------------------------------

    def _key_sampler(self, domain_size: int, rng: random.Random, salt: int):
        """Sampler over 1..domain_size: uniform when z == 0, Zipf otherwise."""
        if self.zipf_z <= 0:
            return lambda: rng.randrange(1, domain_size + 1)
        sampler = ZipfSampler(domain_size, self.zipf_z, seed=self.seed * 1000 + salt)
        return sampler.sample

    def _sampler(self, values, rng: random.Random):
        if self.zipf_z <= 0:
            return lambda: rng.choice(values)
        sampler = ZipfSampler(list(values), self.zipf_z, seed=self.seed * 1000 + len(values))
        return sampler.sample
