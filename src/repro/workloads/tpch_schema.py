"""TPC-H-style schemas for the relations the evaluation queries touch.

Attribute names follow TPC-H conventions (``c_``, ``o_``, ``l_`` prefixes),
which conveniently makes every attribute name globally unique — joins and
group-by lists can therefore use bare names.  Dates are encoded as integer
day offsets from a fixed origin, so range predicates are plain integer
comparisons.

``l_revenue`` is materialized by the generator as
``l_extendedprice * (1 - l_discount)`` so the aggregation queries can sum a
single attribute (the engine aggregates attributes, not arithmetic
expressions; this precomputation does not change any experimental shape).
"""

from __future__ import annotations

from repro.relational.schema import Schema

#: Integer day offsets covered by generated order dates: 1992-01-01 .. 1998-08-02
#: in the original benchmark, here simply days 0 .. DATE_RANGE_DAYS.
DATE_RANGE_DAYS = 2400

REGION_SCHEMA = Schema.from_names(
    ["r_regionkey", "r_name"],
    relation="region",
    types=["int", "str"],
)

NATION_SCHEMA = Schema.from_names(
    ["n_nationkey", "n_name", "n_regionkey"],
    relation="nation",
    types=["int", "str", "int"],
)

SUPPLIER_SCHEMA = Schema.from_names(
    ["s_suppkey", "s_name", "s_nationkey", "s_acctbal"],
    relation="supplier",
    types=["int", "str", "int", "float"],
)

CUSTOMER_SCHEMA = Schema.from_names(
    ["c_custkey", "c_name", "c_nationkey", "c_mktsegment", "c_acctbal", "c_phone"],
    relation="customer",
    types=["int", "str", "int", "str", "float", "str"],
)

ORDERS_SCHEMA = Schema.from_names(
    [
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_shippriority",
    ],
    relation="orders",
    types=["int", "int", "str", "float", "date", "int"],
)

LINEITEM_SCHEMA = Schema.from_names(
    [
        "l_orderkey",
        "l_linenumber",
        "l_suppkey",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_revenue",
        "l_returnflag",
        "l_shipdate",
    ],
    relation="lineitem",
    types=["int", "int", "int", "int", "float", "float", "float", "str", "date"],
)

#: All schemas keyed by relation name.
TPCH_SCHEMAS: dict[str, Schema] = {
    "region": REGION_SCHEMA,
    "nation": NATION_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
}

#: Primary-key attribute of each relation.  Lineitem's key is composite
#: (l_orderkey, l_linenumber), so it advertises no single-attribute key.
PRIMARY_KEYS: dict[str, str | None] = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "supplier": "s_suppkey",
    "customer": "c_custkey",
    "orders": "o_orderkey",
    "lineitem": None,
}

#: Attribute each relation is physically clustered (sorted) on, when any.
#: Orders and lineitems are bulk-loaded in key order — the property the
#: complementary-join experiments exploit.
SORT_ORDERS: dict[str, str] = {
    "orders": "o_orderkey",
    "lineitem": "l_orderkey",
}

#: Market segments and return flags used by the generator and query predicates.
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
RETURN_FLAGS = ("R", "A", "N")
REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
