"""Workloads: TPC-H-style data generation and the paper's query set.

There is no standard data integration benchmark (the paper says as much), so
the evaluation uses TPC-H at scale factor 0.1 plus a skewed variant generated
with a Zipf factor of 0.5 on the major attributes.  This package reproduces
that setup at configurable (smaller) scale with a deterministic in-process
generator, the partial-reordering perturbation used in the order experiments,
and the four evaluation queries (3A, 10, 10A, 5).
"""

from repro.workloads.tpch_schema import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    NATION_SCHEMA,
    ORDERS_SCHEMA,
    REGION_SCHEMA,
    SUPPLIER_SCHEMA,
    TPCH_SCHEMAS,
)
from repro.workloads.generator import TPCHData, TPCHGenerator
from repro.workloads.perturb import interleave_relations, reorder_fraction
from repro.workloads.queries import (
    flights_example_query,
    query_3,
    query_3a,
    query_5,
    query_10,
    query_10a,
    paper_query_workload,
)

__all__ = [
    "CUSTOMER_SCHEMA",
    "LINEITEM_SCHEMA",
    "NATION_SCHEMA",
    "ORDERS_SCHEMA",
    "REGION_SCHEMA",
    "SUPPLIER_SCHEMA",
    "TPCH_SCHEMAS",
    "TPCHData",
    "TPCHGenerator",
    "reorder_fraction",
    "interleave_relations",
    "flights_example_query",
    "query_3",
    "query_3a",
    "query_5",
    "query_10",
    "query_10a",
    "paper_query_workload",
]
