"""The paper's query workload: TPC-H queries 3, 3A, 10, 10A and 5.

The paper selects the TPC-H queries that fit its select-project-join-
aggregation model — queries 3, 10 and 5 — and adds the variants 3A and 10A
which drop the date-based selection predicates to make the queries more
expensive (Section 4.4).  Date constants are expressed in the generator's
integer day encoding.

Additionally :func:`flights_example_query` reproduces the running example of
Section 2 (flights / travelers / children), used by the quickstart example
and several unit tests.
"""

from __future__ import annotations

from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.workloads.tpch_schema import DATE_RANGE_DAYS

# Date constants (integer day offsets).  Chosen so the date predicates select
# roughly the same fractions as the original TPC-H predicates do.
Q3_CUTOFF_DATE = DATE_RANGE_DAYS // 2
Q10_DATE_LOW = DATE_RANGE_DAYS // 3
Q10_DATE_HIGH = Q10_DATE_LOW + 90
Q5_DATE_LOW = DATE_RANGE_DAYS // 2
Q5_DATE_HIGH = Q5_DATE_LOW + 365


def _customer_orders_lineitem_joins() -> tuple[JoinPredicate, ...]:
    return (
        JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),
        JoinPredicate("orders", "o_orderkey", "lineitem", "l_orderkey"),
    )


def query_3(segment: str = "BUILDING") -> SPJAQuery:
    """TPC-H Q3: shipping-priority revenue per order for one market segment."""
    return SPJAQuery(
        name="Q3",
        relations=("customer", "orders", "lineitem"),
        join_predicates=_customer_orders_lineitem_joins(),
        selections={
            "customer": Comparison(AttributeRef("c_mktsegment"), "=", Constant(segment)),
            "orders": Comparison(AttributeRef("o_orderdate"), "<", Constant(Q3_CUTOFF_DATE)),
            "lineitem": Comparison(AttributeRef("l_shipdate"), ">", Constant(Q3_CUTOFF_DATE)),
        },
        aggregation=AggregateSpec(
            group_attributes=("l_orderkey", "o_orderdate", "o_shippriority"),
            aggregates=(Aggregate("sum", "l_revenue", "revenue"),),
        ),
    )


def query_3a(segment: str = "BUILDING") -> SPJAQuery:
    """Q3A: query 3 with the date-based selection predicates removed."""
    return SPJAQuery(
        name="Q3A",
        relations=("customer", "orders", "lineitem"),
        join_predicates=_customer_orders_lineitem_joins(),
        selections={
            "customer": Comparison(AttributeRef("c_mktsegment"), "=", Constant(segment)),
        },
        aggregation=AggregateSpec(
            group_attributes=("l_orderkey", "o_orderdate", "o_shippriority"),
            aggregates=(Aggregate("sum", "l_revenue", "revenue"),),
        ),
    )


def _q10_joins() -> tuple[JoinPredicate, ...]:
    return (
        JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),
        JoinPredicate("orders", "o_orderkey", "lineitem", "l_orderkey"),
        JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey"),
    )


def query_10() -> SPJAQuery:
    """TPC-H Q10: revenue lost to returned items per customer, one quarter."""
    date_predicate = Comparison(AttributeRef("o_orderdate"), ">=", Constant(Q10_DATE_LOW))
    date_predicate_high = Comparison(AttributeRef("o_orderdate"), "<", Constant(Q10_DATE_HIGH))
    from repro.relational.expressions import Conjunction

    return SPJAQuery(
        name="Q10",
        relations=("customer", "orders", "lineitem", "nation"),
        join_predicates=_q10_joins(),
        selections={
            "orders": Conjunction((date_predicate, date_predicate_high)),
            "lineitem": Comparison(AttributeRef("l_returnflag"), "=", Constant("R")),
        },
        aggregation=AggregateSpec(
            group_attributes=("c_custkey", "c_name", "n_name"),
            aggregates=(Aggregate("sum", "l_revenue", "revenue"),),
        ),
    )


def query_10a() -> SPJAQuery:
    """Q10A: query 10 with the date-based selection predicates removed."""
    return SPJAQuery(
        name="Q10A",
        relations=("customer", "orders", "lineitem", "nation"),
        join_predicates=_q10_joins(),
        selections={
            "lineitem": Comparison(AttributeRef("l_returnflag"), "=", Constant("R")),
        },
        aggregation=AggregateSpec(
            group_attributes=("c_custkey", "c_name", "n_name"),
            aggregates=(Aggregate("sum", "l_revenue", "revenue"),),
        ),
    )


def query_5(region: str = "ASIA") -> SPJAQuery:
    """TPC-H Q5: revenue per nation for local suppliers in one region and year.

    This is the 5-join query of the paper.  The ``c_nationkey = s_nationkey``
    condition creates the expensive CUSTOMER ⋈ NATION ⋈ SUPPLIER subresult
    that makes Q5 the interesting case for plan quality (Section 4.4).
    """
    from repro.relational.expressions import Conjunction

    date_low = Comparison(AttributeRef("o_orderdate"), ">=", Constant(Q5_DATE_LOW))
    date_high = Comparison(AttributeRef("o_orderdate"), "<", Constant(Q5_DATE_HIGH))
    return SPJAQuery(
        name="Q5",
        relations=("customer", "orders", "lineitem", "supplier", "nation", "region"),
        join_predicates=(
            JoinPredicate("customer", "c_custkey", "orders", "o_custkey"),
            JoinPredicate("orders", "o_orderkey", "lineitem", "l_orderkey"),
            JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinPredicate("customer", "c_nationkey", "supplier", "s_nationkey"),
            JoinPredicate("supplier", "s_nationkey", "nation", "n_nationkey"),
            JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
        ),
        selections={
            "region": Comparison(AttributeRef("r_name"), "=", Constant(region)),
            "orders": Conjunction((date_low, date_high)),
        },
        aggregation=AggregateSpec(
            group_attributes=("n_name",),
            aggregates=(Aggregate("sum", "l_revenue", "revenue"),),
        ),
    )


def flights_example_query() -> SPJAQuery:
    """The running example of Section 2: flights, travelers, children.

    ``Group[fid, from] max(num) (F ⋈ T ⋈ C)`` — find, per flight, the largest
    number of children of any traveler on it.
    """
    return SPJAQuery(
        name="flights_example",
        relations=("flights", "travelers", "children"),
        join_predicates=(
            JoinPredicate("flights", "fid", "travelers", "flight"),
            JoinPredicate("travelers", "ssn", "children", "parent"),
        ),
        aggregation=AggregateSpec(
            group_attributes=("fid", "origin"),
            aggregates=(Aggregate("max", "num", "max_children"),),
        ),
    )


def paper_query_workload() -> dict[str, SPJAQuery]:
    """The four queries evaluated in Figures 2, 3 and 6 and Tables 1 and 2."""
    return {
        "Q3A": query_3a(),
        "Q10": query_10(),
        "Q10A": query_10a(),
        "Q5": query_5(),
    }
