"""Seeded random SPJA workload generation for differential-style corpora.

This is the workload generator behind the differential test harness
(``tests/differential.py`` imports it), promoted into the package so that
non-test consumers — most importantly the compiled-codegen audit of
:mod:`repro.analysis.codegen_audit`, which must generate *real* fused
pipelines to lint their generated source — can draw from exactly the same
seeded population of query shapes the equivalence suites exercise.

Everything here is deterministic per seed and draws only from an explicit
``random.Random`` instance (the determinism lint enforces this for the
whole package).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.algebra import AggregateSpec, SPJAQuery
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    Comparison,
    Constant,
    JoinPredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.network import BurstyNetworkModel
from repro.sources.remote import RemoteSource


@dataclass
class DifferentialWorkload:
    """One randomized database + query, plus how it should be served."""

    seed: int
    query: SPJAQuery
    relations: dict[str, Relation]
    remote: bool

    def sources(self) -> dict[str, object]:
        """Fresh source objects (remote ones get fresh deterministic links)."""
        if not self.remote:
            return dict(self.relations)
        return {
            name: RemoteSource(
                relation,
                BurstyNetworkModel(
                    burst_rate=50_000.0,
                    mean_burst_tuples=20,
                    mean_gap_seconds=0.002,
                    latency=0.001,
                    seed=self.seed * 101 + index,
                ),
            )
            for index, (name, relation) in enumerate(self.relations.items())
        }

    def catalog(self) -> Catalog:
        """Schemas only — the "no statistics" data-integration situation."""
        catalog = Catalog()
        for name, relation in self.relations.items():
            catalog.register(name, relation.schema)
        return catalog


def _random_relation_size(rng: random.Random) -> int:
    roll = rng.random()
    if roll < 0.06:
        return 0  # empty source
    if roll < 0.14:
        return rng.randint(1, 3)  # nearly empty
    return rng.randint(8, 90)


def generate_workload(seed: int, name_prefix: str = "") -> DifferentialWorkload:
    """Deterministically generate one randomized SPJA workload.

    The join graph is a random spanning tree (relation ``i`` references a
    random earlier relation through a foreign key with a small shared
    domain, so joins actually match), occasionally thickened with an extra
    equi-join predicate — which lands either on an existing join edge
    (exercising residual predicates) or between two other relations
    (exercising multi-predicate ``predicates_between`` splits).

    ``name_prefix`` namespaces the relation names (``w0_r1`` instead of
    ``r1``) so several workloads can coexist in one shared catalog / source
    pool — the serving differential scenario.  The RNG draws are independent
    of the prefix, so a prefixed workload carries exactly the same data and
    query shape as the unprefixed one for the same seed.
    """
    rng = random.Random(seed)

    def rel(i: int) -> str:
        return f"{name_prefix}r{i}"

    num_relations = rng.choice((1, 2, 2, 3, 3, 3, 4, 4, 5))
    domains = [rng.randint(4, 24) for _ in range(num_relations)]
    sizes = [_random_relation_size(rng) for _ in range(num_relations)]
    parents: list[int | None] = [None] + [
        rng.randrange(i) for i in range(1, num_relations)
    ]

    # Extra equi-join predicates: (child, target) pairs beyond the tree.
    extra_edges: list[tuple[int, int]] = []
    if num_relations >= 2 and rng.random() < 0.40:
        child = rng.randrange(1, num_relations)
        if rng.random() < 0.5:
            target = parents[child]  # doubles an existing edge -> residual
        else:
            target = rng.choice([j for j in range(num_relations) if j != child])
        assert target is not None
        extra_edges.append((child, target))

    relations: dict[str, Relation] = {}
    join_predicates: list[JoinPredicate] = []
    for i in range(num_relations):
        name = rel(i)
        attrs = [f"r{i}_pk"]
        parent = parents[i]
        if parent is not None:
            attrs.append(f"r{i}_fk")
        for child, target in extra_edges:
            if child == i:
                attrs.append(f"r{i}_x{target}")
        attrs.extend([f"r{i}_val", f"r{i}_cat"])
        schema = Schema.from_names(attrs, relation=name)
        rows = []
        for _ in range(sizes[i]):
            row = [rng.randrange(domains[i])]
            if parent is not None:
                row.append(rng.randrange(domains[parent]))
            for child, target in extra_edges:
                if child == i:
                    row.append(rng.randrange(domains[target]))
            row.append(rng.randrange(500))
            row.append(rng.randrange(6))
            rows.append(tuple(row))
        relations[name] = Relation(name, schema, rows)
        if parent is not None:
            join_predicates.append(
                JoinPredicate(name, f"r{i}_fk", rel(parent), f"r{parent}_pk")
            )
    for child, target in extra_edges:
        join_predicates.append(
            JoinPredicate(
                rel(child), f"r{child}_x{target}", rel(target), f"r{target}_pk"
            )
        )

    # Selections on up to two relations; occasionally unsatisfiable, so the
    # empty-stream paths of every engine get differential coverage too.
    selections = {}
    for i in range(num_relations):
        if rng.random() >= 0.45:
            continue
        if len(selections) == 2:
            break
        roll = rng.random()
        if roll < 0.1:
            predicate = Comparison(AttributeRef(f"r{i}_cat"), ">", Constant(99))
        else:
            op = rng.choice(("=", "<", ">=", "!="))
            predicate = Comparison(
                AttributeRef(f"r{i}_cat"), op, Constant(rng.randrange(6))
            )
        selections[rel(i)] = predicate

    aggregation = None
    if rng.random() < 0.5:
        group_pool = [f"r{i}_cat" for i in range(num_relations)] + [
            f"r{i}_pk" for i in range(num_relations)
        ]
        group_attrs = rng.sample(group_pool, rng.choice((1, 1, 2)))
        aggregates = []
        for index in range(rng.choice((1, 1, 2))):
            function = rng.choice(("sum", "count", "min", "max"))
            attribute = (
                None
                if function == "count"
                else f"r{rng.randrange(num_relations)}_val"
            )
            aggregates.append(Aggregate(function, attribute, f"agg{index}"))
        aggregation = AggregateSpec(tuple(group_attrs), tuple(aggregates))

    query = SPJAQuery(
        name=f"{name_prefix}diff_{seed}",
        relations=tuple(rel(i) for i in range(num_relations)),
        join_predicates=tuple(join_predicates),
        selections=selections,
        aggregation=aggregation,
    )
    remote = rng.random() < 0.25
    return DifferentialWorkload(seed, query, relations, remote)
