"""Logical query algebra and the SPJA query description.

The paper's workload is select-project-join-aggregate (SPJA) queries.  Two
representations are provided:

* :class:`SPJAQuery` — a declarative description (relations, join predicates,
  selections, grouping, aggregates).  This is what users of the library and
  the benchmark harness construct, and what the optimizer consumes.
* :class:`LogicalPlan` trees (:class:`BaseRelation`, :class:`Select`,
  :class:`Project`, :class:`Join`, :class:`GroupBy`) — an explicit operator
  tree, produced by the optimizer and consumed by the physical planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.relational.expressions import (
    Aggregate,
    JoinPredicate,
    Predicate,
    TruePredicate,
    validate_aggregates,
)


class QueryError(ValueError):
    """Raised when an SPJA query description is malformed."""


# ---------------------------------------------------------------------------
# Logical plan nodes
# ---------------------------------------------------------------------------


class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        raise NotImplementedError

    def relations(self) -> frozenset[str]:
        """Set of base relation names contributing to this subtree."""
        result: frozenset[str] = frozenset()
        for child in self.children():
            result |= child.relations()
        return result

    def walk(self) -> Iterator["LogicalPlan"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class BaseRelation(LogicalPlan):
    """Leaf node: a scan of a named base relation / data source."""

    name: str

    def children(self) -> tuple[LogicalPlan, ...]:
        return ()

    def relations(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:  # pragma: no cover
        return self.name


@dataclass(frozen=True)
class Select(LogicalPlan):
    """Filter node applying a predicate to its child."""

    child: LogicalPlan
    predicate: Predicate

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __str__(self) -> str:  # pragma: no cover
        return f"σ[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Projection node restricting the output to named attributes."""

    child: LogicalPlan
    attributes: tuple[str, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __str__(self) -> str:  # pragma: no cover
        return f"π[{', '.join(self.attributes)}]({self.child})"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Equi-join of two subtrees on one or more join predicates."""

    left: LogicalPlan
    right: LogicalPlan
    predicates: tuple[JoinPredicate, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:  # pragma: no cover
        preds = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"({self.left} ⋈[{preds}] {self.right})"


@dataclass(frozen=True)
class GroupBy(LogicalPlan):
    """Grouping / aggregation node (the query's final GROUP BY or a pre-aggregation)."""

    child: LogicalPlan
    group_attributes: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]
    partial: bool = False

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __str__(self) -> str:  # pragma: no cover
        kind = "γ_partial" if self.partial else "γ"
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"{kind}[{', '.join(self.group_attributes)}; {aggs}]({self.child})"


# ---------------------------------------------------------------------------
# Aggregate specification for a query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateSpec:
    """Grouping attributes plus aggregate terms of an SPJA query."""

    group_attributes: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_attributes", tuple(self.group_attributes))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        validate_aggregates(self.aggregates)

    @property
    def output_attributes(self) -> tuple[str, ...]:
        """Names of the attributes an aggregation produces."""
        return self.group_attributes + tuple(a.alias for a in self.aggregates)

    def referenced_attributes(self) -> set[str]:
        result = set(self.group_attributes)
        for agg in self.aggregates:
            result |= agg.attributes()
        return result


# ---------------------------------------------------------------------------
# SPJA query description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SPJAQuery:
    """Declarative description of a select-project-join-aggregate query.

    Parameters
    ----------
    name:
        Identifier used in reports and benchmark output (e.g. ``"Q3A"``).
    relations:
        Names of the base relations (data sources) the query spans.
    join_predicates:
        Equi-join predicates connecting the relations; the induced join graph
        must be connected (chain/star/snowflake shapes all supported).
    selections:
        Mapping from relation name to a single-relation predicate pushed to
        that relation's scan.
    aggregation:
        Optional final grouping/aggregation.  ``None`` makes this a pure SPJ
        query.
    projection:
        Optional output attribute list applied after joins (ignored when an
        aggregation is present, which defines its own output schema).
    """

    name: str
    relations: tuple[str, ...]
    join_predicates: tuple[JoinPredicate, ...]
    selections: dict[str, Predicate] = field(default_factory=dict)
    aggregation: AggregateSpec | None = None
    projection: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", tuple(self.relations))
        object.__setattr__(self, "join_predicates", tuple(self.join_predicates))
        if len(set(self.relations)) != len(self.relations):
            raise QueryError("duplicate relation names in query (self-joins unsupported)")
        known = set(self.relations)
        for pred in self.join_predicates:
            if pred.left_relation not in known or pred.right_relation not in known:
                raise QueryError(
                    f"join predicate {pred} references a relation not in {sorted(known)}"
                )
        for rel in self.selections:
            if rel not in known:
                raise QueryError(f"selection on unknown relation {rel!r}")
        if len(self.relations) > 1 and not self._is_connected():
            raise QueryError(f"join graph of query {self.name!r} is not connected")

    # -- structure -------------------------------------------------------------

    def _is_connected(self) -> bool:
        remaining = set(self.relations)
        frontier = {self.relations[0]}
        remaining.discard(self.relations[0])
        while frontier:
            nxt: set[str] = set()
            for pred in self.join_predicates:
                if pred.left_relation in frontier and pred.right_relation in remaining:
                    nxt.add(pred.right_relation)
                if pred.right_relation in frontier and pred.left_relation in remaining:
                    nxt.add(pred.left_relation)
            remaining -= nxt
            frontier = nxt
        return not remaining

    def selection_for(self, relation: str) -> Predicate:
        """Predicate pushed down to ``relation`` (TRUE when none)."""
        return self.selections.get(relation, TruePredicate())

    def predicates_between(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[JoinPredicate, ...]:
        """Join predicates connecting two disjoint relation sets."""
        return tuple(p for p in self.join_predicates if p.connects(left, right))

    def join_attributes(self, relation: str) -> tuple[str, ...]:
        """Attributes of ``relation`` that participate in any join predicate."""
        attrs: list[str] = []
        for pred in self.join_predicates:
            if pred.involves(relation):
                attr = pred.attr_for(relation)
                if attr not in attrs:
                    attrs.append(attr)
        return tuple(attrs)

    @property
    def num_joins(self) -> int:
        return max(0, len(self.relations) - 1)

    def describe(self) -> str:
        """Human-readable multi-line description (used by examples)."""
        lines = [f"Query {self.name}: {' ⋈ '.join(self.relations)}"]
        for pred in self.join_predicates:
            lines.append(f"  join: {pred}")
        for rel, pred in self.selections.items():
            lines.append(f"  where {rel}: {pred}")
        if self.aggregation:
            aggs = ", ".join(str(a) for a in self.aggregation.aggregates)
            lines.append(
                f"  group by {', '.join(self.aggregation.group_attributes)} -> {aggs}"
            )
        return "\n".join(lines)


def spj_query(
    name: str,
    relations: Sequence[str],
    join_predicates: Sequence[JoinPredicate],
    selections: dict[str, Predicate] | None = None,
) -> SPJAQuery:
    """Convenience constructor for a pure select-project-join query."""
    return SPJAQuery(
        name=name,
        relations=tuple(relations),
        join_predicates=tuple(join_predicates),
        selections=dict(selections or {}),
        aggregation=None,
    )
