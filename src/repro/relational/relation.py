"""In-memory relations (base tables and materialized intermediate results)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.relational.schema import Schema, SchemaError
from repro.relational.tuples import validate_tuple


@dataclass
class Relation:
    """A named, schema-ful collection of value tuples.

    Base tables produced by the workload generator, source snapshots and
    materialized intermediate results are all ``Relation`` instances.  The
    class deliberately stays close to a list of tuples: the execution engine
    streams over relations via iterators and never mutates them in place
    (matching the paper's "sequential access only, data may change between
    accesses" source model — a new access simply builds a new Relation).
    """

    name: str
    schema: Schema
    rows: list[tuple] = field(default_factory=list)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence],
        validate: bool = False,
    ) -> "Relation":
        """Build a relation from an iterable of row sequences."""
        materialized = [tuple(row) for row in rows]
        if validate:
            for row in materialized:
                validate_tuple(schema, row)
        return cls(name, schema, materialized)

    @classmethod
    def from_dicts(cls, name: str, schema: Schema, dicts: Iterable[dict]) -> "Relation":
        """Build a relation from dictionaries keyed by attribute name."""
        names = schema.names
        rows = [tuple(d[n] for n in names) for d in dicts]
        return cls(name, schema, rows)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @property
    def cardinality(self) -> int:
        """Number of tuples (paper terminology)."""
        return len(self.rows)

    # -- convenience accessors -------------------------------------------------

    def column(self, attribute: str) -> list:
        """Return all values of ``attribute`` as a list."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self.rows]

    def distinct_count(self, attribute: str) -> int:
        """Number of distinct values in ``attribute``."""
        pos = self.schema.position(attribute)
        return len({row[pos] for row in self.rows})

    def to_dicts(self) -> list[dict]:
        """Return rows as dictionaries (test / example convenience)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    # -- derivation ------------------------------------------------------------

    def select(self, predicate: Callable[[tuple], bool], name: str | None = None) -> "Relation":
        """Return a new relation with only the rows satisfying ``predicate``."""
        return Relation(
            name or f"{self.name}_selected",
            self.schema,
            [row for row in self.rows if predicate(row)],
        )

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Return a new relation restricted to ``attributes``."""
        positions = self.schema.positions(attributes)
        schema = self.schema.project(attributes)
        rows = [tuple(row[p] for p in positions) for row in self.rows]
        return Relation(name or f"{self.name}_projected", schema, rows)

    def sorted_by(self, attribute: str, descending: bool = False, name: str | None = None) -> "Relation":
        """Return a copy sorted on ``attribute``."""
        pos = self.schema.position(attribute)
        rows = sorted(self.rows, key=lambda r: r[pos], reverse=descending)
        return Relation(name or f"{self.name}_sorted", self.schema, rows)

    def sample(self, fraction: float, rng, name: str | None = None) -> "Relation":
        """Return a Bernoulli sample of the relation using ``rng``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        rows = [row for row in self.rows if rng.random() < fraction]
        return Relation(name or f"{self.name}_sample", self.schema, rows)

    def slice(self, start: int, stop: int | None = None, name: str | None = None) -> "Relation":
        """Return a contiguous slice of the relation (used to build partitions)."""
        return Relation(name or f"{self.name}_slice", self.schema, self.rows[start:stop])

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Bag union with another relation over the same schema."""
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"cannot union relations with different schemas: "
                f"{self.schema.names} vs {other.schema.names}"
            )
        return Relation(name or f"{self.name}_union", self.schema, self.rows + other.rows)

    def is_sorted_on(self, attribute: str) -> bool:
        """True when rows are non-decreasing on ``attribute``."""
        pos = self.schema.position(attribute)
        rows = self.rows
        return all(rows[i - 1][pos] <= rows[i][pos] for i in range(1, len(rows)))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Relation({self.name!r}, {len(self.rows)} rows, schema={self.schema.names})"
