"""Relational substrate: schemas, tuples, expressions, relations, logical algebra.

This package provides the foundation the execution engine, the optimizer and
the adaptive-data-partitioning core are built on.  It intentionally mirrors
the decomposition described in the Tukwila papers: tuples are flat value
vectors, schemas map attribute names to positions, and *tuple adapters*
permute attributes when state structures created by one plan are reused by a
plan with a different physical attribute ordering (Section 3.2 of the paper).
"""

from repro.relational.schema import Attribute, Schema
from repro.relational.tuples import TupleAdapter, concat_tuples
from repro.relational.relation import Relation
from repro.relational.expressions import (
    Aggregate,
    AttributeRef,
    BinaryPredicate,
    Comparison,
    Conjunction,
    Constant,
    Disjunction,
    JoinPredicate,
    Negation,
    Predicate,
    TruePredicate,
)
from repro.relational.algebra import (
    AggregateSpec,
    BaseRelation,
    GroupBy,
    Join,
    LogicalPlan,
    Project,
    Select,
    SPJAQuery,
)
from repro.relational.catalog import Catalog, TableStatistics

__all__ = [
    "Attribute",
    "Schema",
    "TupleAdapter",
    "concat_tuples",
    "Relation",
    "Aggregate",
    "AttributeRef",
    "BinaryPredicate",
    "Comparison",
    "Conjunction",
    "Constant",
    "Disjunction",
    "JoinPredicate",
    "Negation",
    "Predicate",
    "TruePredicate",
    "AggregateSpec",
    "BaseRelation",
    "GroupBy",
    "Join",
    "LogicalPlan",
    "Project",
    "Select",
    "SPJAQuery",
    "Catalog",
    "TableStatistics",
]
