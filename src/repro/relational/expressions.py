"""Scalar expressions, predicates and aggregate specifications.

Expressions are small immutable trees that are *compiled* against a concrete
:class:`~repro.relational.schema.Schema` into plain Python callables taking a
value tuple.  Compilation resolves attribute names to positions once, so that
per-tuple evaluation is just indexing and comparison — important because the
execution engine evaluates predicates millions of times per benchmark run.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.relational.schema import Schema

# Comparison operator name -> function.
_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class ExpressionError(ValueError):
    """Raised for malformed expressions (unknown operators, arity errors)."""


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeRef:
    """Reference to an attribute by name (optionally relation-qualified)."""

    name: str

    def compile(self, schema: Schema) -> Callable[[tuple], object]:
        pos = schema.position(self.name)
        return lambda row: row[pos]

    def attributes(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.name


@dataclass(frozen=True)
class Constant:
    """A literal value."""

    value: object

    def compile(self, schema: Schema) -> Callable[[tuple], object]:
        value = self.value
        return lambda row: value

    def attributes(self) -> set[str]:
        return set()

    def __str__(self) -> str:  # pragma: no cover
        return repr(self.value)


ScalarExpression = AttributeRef | Constant


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for boolean predicates over a single tuple."""

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        raise NotImplementedError

    def attributes(self) -> set[str]:
        raise NotImplementedError

    def estimated_selectivity(self) -> float:
        """Default selectivity guess used when no statistics exist.

        System-R style magic constants: equality 0.1, range 0.3, other 0.5.
        The optimizer overrides these when histograms are available.
        """
        return 0.5


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Predicate that accepts every tuple."""

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        return lambda row: True

    def attributes(self) -> set[str]:
        return set()

    def estimated_selectivity(self) -> float:
        return 1.0

    def __str__(self) -> str:  # pragma: no cover
        return "TRUE"


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left <op> right`` where both sides are scalar expressions."""

    left: ScalarExpression
    op: str
    right: ScalarExpression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        lhs = self.left.compile(schema)
        rhs = self.right.compile(schema)
        cmp = _COMPARATORS[self.op]
        return lambda row: cmp(lhs(row), rhs(row))

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def estimated_selectivity(self) -> float:
        if self.op in ("=", "=="):
            return 0.1
        if self.op in ("!=", "<>"):
            return 0.9
        return 0.3

    def __str__(self) -> str:  # pragma: no cover
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BinaryPredicate(Predicate):
    """Arbitrary two-attribute predicate evaluated by a user callable."""

    left: str
    right: str
    fn: Callable[[object, object], bool]
    label: str = "custom"

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        lpos = schema.position(self.left)
        rpos = schema.position(self.right)
        fn = self.fn
        return lambda row: fn(row[lpos], row[rpos])

    def attributes(self) -> set[str]:
        return {self.left, self.right}

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.label}({self.left}, {self.right})"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """AND of child predicates."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        compiled = [c.compile(schema) for c in self.children]
        if not compiled:
            return lambda row: True
        return lambda row: all(fn(row) for fn in compiled)

    def attributes(self) -> set[str]:
        result: set[str] = set()
        for child in self.children:
            result |= child.attributes()
        return result

    def estimated_selectivity(self) -> float:
        sel = 1.0
        for child in self.children:
            sel *= child.estimated_selectivity()
        return sel

    def __str__(self) -> str:  # pragma: no cover
        return " AND ".join(str(c) for c in self.children) or "TRUE"


@dataclass(frozen=True)
class Disjunction(Predicate):
    """OR of child predicates."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        compiled = [c.compile(schema) for c in self.children]
        if not compiled:
            return lambda row: False
        return lambda row: any(fn(row) for fn in compiled)

    def attributes(self) -> set[str]:
        result: set[str] = set()
        for child in self.children:
            result |= child.attributes()
        return result

    def estimated_selectivity(self) -> float:
        miss = 1.0
        for child in self.children:
            miss *= 1.0 - child.estimated_selectivity()
        return 1.0 - miss

    def __str__(self) -> str:  # pragma: no cover
        return " OR ".join(str(c) for c in self.children) or "FALSE"


@dataclass(frozen=True)
class Negation(Predicate):
    """NOT of a child predicate."""

    child: Predicate

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        fn = self.child.compile(schema)
        return lambda row: not fn(row)

    def attributes(self) -> set[str]:
        return self.child.attributes()

    def estimated_selectivity(self) -> float:
        return 1.0 - self.child.estimated_selectivity()

    def __str__(self) -> str:  # pragma: no cover
        return f"NOT {self.child}"


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Combine predicates into a single AND, simplifying trivial cases."""
    preds = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not preds:
        return TruePredicate()
    if len(preds) == 1:
        return preds[0]
    return Conjunction(tuple(preds))


# ---------------------------------------------------------------------------
# Join predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_relation.left_attr = right_relation.right_attr``.

    Join predicates are kept separate from generic predicates because both the
    optimizer (join-graph enumeration) and the adaptive executor (hash / merge
    key selection, state-structure key compatibility) need direct access to
    the two attribute names.
    """

    left_relation: str
    left_attr: str
    right_relation: str
    right_attr: str

    def relations(self) -> frozenset[str]:
        return frozenset((self.left_relation, self.right_relation))

    def attr_for(self, relation: str) -> str:
        """Return the join attribute contributed by ``relation``."""
        if relation == self.left_relation:
            return self.left_attr
        if relation == self.right_relation:
            return self.right_attr
        raise ExpressionError(
            f"relation {relation!r} does not participate in join predicate {self}"
        )

    def involves(self, relation: str) -> bool:
        return relation in (self.left_relation, self.right_relation)

    def connects(self, left_set: frozenset[str], right_set: frozenset[str]) -> bool:
        """True when the predicate joins a relation in each of the two sets."""
        return (
            self.left_relation in left_set and self.right_relation in right_set
        ) or (self.left_relation in right_set and self.right_relation in left_set)

    def to_comparison(self) -> Comparison:
        """Lower to a generic :class:`Comparison` on a joined schema."""
        return Comparison(AttributeRef(self.left_attr), "=", AttributeRef(self.right_attr))

    def __str__(self) -> str:  # pragma: no cover
        return (
            f"{self.left_relation}.{self.left_attr} = "
            f"{self.right_relation}.{self.right_attr}"
        )


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

_AGG_FUNCTIONS = ("min", "max", "sum", "count", "avg")


@dataclass(frozen=True)
class Aggregate:
    """An aggregate term, e.g. ``max(c_num) AS max_children``.

    ``avg`` is decomposable per the paper (Section 2.2 footnote): it is
    pre-aggregated as (sum, count) pairs and finalized at the end.  The
    engine's aggregation operators handle that decomposition internally via
    :meth:`initial_state`, :meth:`merge_value`, :meth:`merge_partial` and
    :meth:`finalize`.
    """

    function: str
    attribute: str | None
    alias: str

    def __post_init__(self) -> None:
        if self.function not in _AGG_FUNCTIONS:
            raise ExpressionError(
                f"unsupported aggregate function {self.function!r}; "
                f"expected one of {_AGG_FUNCTIONS}"
            )
        if self.function != "count" and self.attribute is None:
            raise ExpressionError(f"aggregate {self.function!r} requires an attribute")

    # -- incremental aggregation protocol -------------------------------------

    def initial_state(self) -> object:
        if self.function == "count":
            return 0
        if self.function == "sum":
            return 0
        if self.function == "avg":
            return (0.0, 0)
        return None  # min / max start undefined

    def merge_value(self, state: object, value: object) -> object:
        """Fold a raw input value into the running aggregate state."""
        if self.function == "count":
            return state + 1
        if self.function == "sum":
            return state + value
        if self.function == "avg":
            total, count = state
            return (total + value, count + 1)
        if self.function == "min":
            return value if state is None or value < state else state
        # max
        return value if state is None or value > state else state

    def merge_partial(self, state: object, partial: object) -> object:
        """Fold a *partial aggregate* (produced by pre-aggregation) into state."""
        if self.function == "count":
            return state + partial
        if self.function == "sum":
            return state + partial
        if self.function == "avg":
            total, count = state
            ptotal, pcount = partial
            return (total + ptotal, count + pcount)
        if self.function == "min":
            return partial if state is None or (partial is not None and partial < state) else state
        return partial if state is None or (partial is not None and partial > state) else state

    def finalize(self, state: object) -> object:
        if self.function == "avg":
            total, count = state
            return total / count if count else None
        return state

    def singleton_partial(self, value: object) -> object:
        """Partial-aggregate value for a single raw value (pseudogroup)."""
        if self.function == "count":
            return 1
        if self.function == "avg":
            return (value, 1)
        return value

    def attributes(self) -> set[str]:
        return {self.attribute} if self.attribute else set()

    def __str__(self) -> str:  # pragma: no cover
        arg = self.attribute if self.attribute is not None else "*"
        return f"{self.function}({arg}) AS {self.alias}"


def validate_aggregates(aggregates: Sequence[Aggregate]) -> None:
    """Check alias uniqueness across a list of aggregate terms."""
    seen: set[str] = set()
    for agg in aggregates:
        if agg.alias in seen:
            raise ExpressionError(f"duplicate aggregate alias {agg.alias!r}")
        seen.add(agg.alias)
