"""Catalog: registered relations / data sources and (optional) statistics.

In a data integration setting the catalog is intentionally sparse: a source
is registered with its schema, but cardinalities, distinct counts and order
information may be unknown (``None``).  The paper's experiments compare an
optimizer that is *given* cardinalities against one that must assume a
default (20 000 tuples); :class:`TableStatistics` models exactly that level
of knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.relational.relation import Relation
from repro.relational.schema import Schema


# Default cardinality the paper's optimizer assumes when a source publishes
# no statistics ("roughly the median number of tuples in the TPC datasets").
DEFAULT_ASSUMED_CARDINALITY = 20_000


class CatalogError(KeyError):
    """Raised when a relation or source is not registered."""


@dataclass(frozen=True)
class TableStatistics:
    """What the system knows (possibly nothing) about one source relation."""

    cardinality: int | None = None
    distinct_counts: dict[str, int] = field(default_factory=dict)
    sorted_on: tuple[str, ...] = ()
    key_attributes: tuple[str, ...] = ()
    #: promised ``[low, high]`` value domains per attribute.  Together with a
    #: runtime order observation these enable the Section 4.5 sorted-input
    #: predictor: how far a sorted stream has advanced through its domain
    #: estimates what fraction of the relation has been read.
    attribute_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: delivery rate (tuples per second) the provider claims for this
    #: source's connection.  The source-rate adaptation policy compares the
    #: observed arrival rate against this promise to detect collapsed /
    #: stalled sources; ``None`` (the default) means no promise was made and
    #: rate adaptivity leaves the source alone.
    promised_rate: float | None = None

    def with_cardinality(self, cardinality: int) -> "TableStatistics":
        return replace(self, cardinality=cardinality)

    def distinct(self, attribute: str) -> int | None:
        return self.distinct_counts.get(attribute)

    def attribute_range(self, attribute: str) -> tuple[float, float] | None:
        return self.attribute_ranges.get(attribute)

    def is_sorted_on(self, attribute: str) -> bool:
        return attribute in self.sorted_on

    def is_key(self, attribute: str) -> bool:
        return attribute in self.key_attributes


@dataclass
class CatalogEntry:
    """One registered relation: schema, optional stats, optional local data."""

    name: str
    schema: Schema
    statistics: TableStatistics = field(default_factory=TableStatistics)
    relation: Relation | None = None


class Catalog:
    """Registry of source relations available to the query processor."""

    def __init__(self) -> None:
        self._entries: dict[str, CatalogEntry] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        schema: Schema,
        statistics: TableStatistics | None = None,
        relation: Relation | None = None,
    ) -> CatalogEntry:
        """Register (or replace) a source relation."""
        entry = CatalogEntry(name, schema, statistics or TableStatistics(), relation)
        self._entries[name] = entry
        return entry

    def register_relation(
        self, relation: Relation, statistics: TableStatistics | None = None
    ) -> CatalogEntry:
        """Register a fully materialized relation under its own name."""
        return self.register(relation.name, relation.schema, statistics, relation)

    def register_relations(self, relations: Iterable[Relation]) -> None:
        for rel in relations:
            self.register_relation(rel)

    # -- lookups ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"relation {name!r} is not registered") from None

    def schema(self, name: str) -> Schema:
        return self.entry(name).schema

    def statistics(self, name: str) -> TableStatistics:
        return self.entry(name).statistics

    def relation(self, name: str) -> Relation:
        entry = self.entry(name)
        if entry.relation is None:
            raise CatalogError(f"relation {name!r} has no local data attached")
        return entry.relation

    # -- statistics management -------------------------------------------------

    def set_statistics(self, name: str, statistics: TableStatistics) -> None:
        self.entry(name).statistics = statistics

    def assumed_cardinality(
        self, name: str, default: int = DEFAULT_ASSUMED_CARDINALITY
    ) -> int:
        """Cardinality the optimizer should use: published stats or the default."""
        stats = self.statistics(name)
        return stats.cardinality if stats.cardinality is not None else default

    def copy(self) -> "Catalog":
        """Independent copy sharing schemas/relations but not the entry objects.

        Statistics objects are frozen dataclasses, so a copied catalog can
        have learned statistics published into it (``set_statistics``)
        without mutating the original — the serving layer relies on this to
        accumulate learned cardinalities without surprising the caller.
        """
        clone = Catalog()
        for entry in self._entries.values():
            clone.register(entry.name, entry.schema, entry.statistics, entry.relation)
        return clone

    def with_cardinalities(self) -> "Catalog":
        """Return a copy whose statistics include true cardinalities.

        Only meaningful when local data is attached; used by the experiment
        harness to build the "given cardinalities" optimizer configuration.
        """
        clone = Catalog()
        for entry in self._entries.values():
            stats = entry.statistics
            if entry.relation is not None:
                stats = stats.with_cardinality(len(entry.relation))
            clone.register(entry.name, entry.schema, stats, entry.relation)
        return clone

    def without_statistics(self) -> "Catalog":
        """Return a copy with all statistics erased ("no statistics" mode)."""
        clone = Catalog()
        for entry in self._entries.values():
            clone.register(entry.name, entry.schema, TableStatistics(), entry.relation)
        return clone
