"""Tuple utilities and tuple adapters.

Tuples flowing through the engine are plain Python ``tuple`` objects.  The
paper's Tukwila engine represents tuples as vectors of pointers into value
containers so that state structures filled by one plan can be read by another
plan whose physical attribute ordering differs; the equivalent mechanism here
is the :class:`TupleAdapter`, which permutes (and optionally pads) values
when reading from a state structure whose schema ordering does not match the
consumer's expectation (paper Section 3.2, "State Structure Compatibility").
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Sequence

from repro.relational.schema import Schema, SchemaError


def concat_tuples(left: tuple, right: tuple) -> tuple:
    """Concatenate two value tuples (the physical form of a join output)."""
    return left + right


@dataclass(frozen=True)
class TupleAdapter:
    """Permutes tuple values from a source schema layout to a target layout.

    The adapter is built once (resolving names to positions) and then applied
    to every tuple with a cheap positional gather.  Attributes present in the
    target schema but missing from the source are filled with ``fill_value``
    — this supports mapping non-pre-aggregated tuples into pre-aggregated
    schemas via the *pseudogroup* mechanism.
    """

    source: Schema
    target: Schema
    fill_value: object = None

    def __post_init__(self) -> None:
        mapping: list[int] = []
        missing: list[int] = []
        for pos, attr in enumerate(self.target.attributes):
            if attr.name in self.source:
                mapping.append(self.source.position(attr.name))
            else:
                mapping.append(-1)
                missing.append(pos)
        object.__setattr__(self, "_mapping", tuple(mapping))
        object.__setattr__(self, "_missing", tuple(missing))
        # Fast path: when every target attribute exists in the source the
        # gather is a pure positional permutation, which operator.itemgetter
        # performs in C.  itemgetter's arity quirks (scalar result for one
        # index, no zero-index form) are normalized here so that `_getter`
        # always returns a tuple, exactly like the generic loop.
        getter = None
        if not missing:
            if len(mapping) >= 2:
                getter = operator.itemgetter(*mapping)
            elif len(mapping) == 1:
                single = operator.itemgetter(mapping[0])
                getter = lambda values, _g=single: (_g(values),)  # noqa: E731
            else:
                getter = lambda values: ()  # noqa: E731
        object.__setattr__(self, "_getter", getter)

    @property
    def is_identity(self) -> bool:
        """True when source and target layouts already coincide.

        Requires equal arity: a target that is a strict prefix of the source
        still needs a projecting gather (``adapt_many`` short-circuits
        identity adapters by returning rows unchanged).
        """
        return len(self.source) == len(self.target) and self._mapping == tuple(
            range(len(self.target))
        )  # type: ignore[attr-defined]

    @property
    def has_missing(self) -> bool:
        """True when some target attributes are absent from the source."""
        return bool(self._missing)  # type: ignore[attr-defined]

    def adapt(self, values: tuple) -> tuple:
        """Return ``values`` rearranged into the target schema's order."""
        getter = self._getter  # type: ignore[attr-defined]
        if getter is not None:
            return getter(values)
        mapping = self._mapping  # type: ignore[attr-defined]
        fill = self.fill_value
        return tuple(values[i] if i >= 0 else fill for i in mapping)

    # Adapters are applied like functions on hot paths; make that literal.
    __call__ = adapt

    def adapt_many(self, rows: Sequence[tuple]) -> list[tuple]:
        """Adapt a batch of tuples."""
        if self.is_identity:
            return list(rows)
        getter = self._getter  # type: ignore[attr-defined]
        if getter is not None:
            return list(map(getter, rows))
        return [self.adapt(row) for row in rows]


def validate_tuple(schema: Schema, values: tuple) -> None:
    """Raise :class:`SchemaError` when ``values`` does not match ``schema``.

    Only used on cold paths (loading relations, test assertions); the hot
    execution path trusts operator contracts.
    """
    if len(values) != len(schema):
        raise SchemaError(
            f"tuple arity {len(values)} does not match schema arity {len(schema)} "
            f"({schema.names})"
        )
