"""Tuple utilities and tuple adapters.

Tuples flowing through the engine are plain Python ``tuple`` objects.  The
paper's Tukwila engine represents tuples as vectors of pointers into value
containers so that state structures filled by one plan can be read by another
plan whose physical attribute ordering differs; the equivalent mechanism here
is the :class:`TupleAdapter`, which permutes (and optionally pads) values
when reading from a state structure whose schema ordering does not match the
consumer's expectation (paper Section 3.2, "State Structure Compatibility").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.schema import Schema, SchemaError


def concat_tuples(left: tuple, right: tuple) -> tuple:
    """Concatenate two value tuples (the physical form of a join output)."""
    return left + right


@dataclass(frozen=True)
class TupleAdapter:
    """Permutes tuple values from a source schema layout to a target layout.

    The adapter is built once (resolving names to positions) and then applied
    to every tuple with a cheap positional gather.  Attributes present in the
    target schema but missing from the source are filled with ``fill_value``
    — this supports mapping non-pre-aggregated tuples into pre-aggregated
    schemas via the *pseudogroup* mechanism.
    """

    source: Schema
    target: Schema
    fill_value: object = None

    def __post_init__(self) -> None:
        mapping: list[int] = []
        missing: list[int] = []
        for pos, attr in enumerate(self.target.attributes):
            if attr.name in self.source:
                mapping.append(self.source.position(attr.name))
            else:
                mapping.append(-1)
                missing.append(pos)
        object.__setattr__(self, "_mapping", tuple(mapping))
        object.__setattr__(self, "_missing", tuple(missing))

    @property
    def is_identity(self) -> bool:
        """True when source and target layouts already coincide."""
        return self._mapping == tuple(range(len(self.target)))  # type: ignore[attr-defined]

    @property
    def has_missing(self) -> bool:
        """True when some target attributes are absent from the source."""
        return bool(self._missing)  # type: ignore[attr-defined]

    def adapt(self, values: tuple) -> tuple:
        """Return ``values`` rearranged into the target schema's order."""
        mapping = self._mapping  # type: ignore[attr-defined]
        fill = self.fill_value
        return tuple(values[i] if i >= 0 else fill for i in mapping)

    def adapt_many(self, rows: Sequence[tuple]) -> list[tuple]:
        """Adapt a batch of tuples."""
        if self.is_identity:
            return list(rows)
        return [self.adapt(row) for row in rows]


def validate_tuple(schema: Schema, values: tuple) -> None:
    """Raise :class:`SchemaError` when ``values`` does not match ``schema``.

    Only used on cold paths (loading relations, test assertions); the hot
    execution path trusts operator contracts.
    """
    if len(values) != len(schema):
        raise SchemaError(
            f"tuple arity {len(values)} does not match schema arity {len(schema)} "
            f"({schema.names})"
        )
