"""Schemas and attributes.

A :class:`Schema` is an ordered list of :class:`Attribute` objects and a name
-> position index.  Tuples in the engine are plain Python ``tuple`` objects
whose values are positionally aligned with the schema, so schema lookups are
the only place attribute names are resolved; the hot execution path works
with integer positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


class SchemaError(ValueError):
    """Raised when an attribute cannot be resolved or schemas conflict."""


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Parameters
    ----------
    name:
        Attribute name.  TPC-H-style prefixes (``o_orderkey`` ...) make names
        globally unique; the engine nevertheless supports qualification via
        the ``relation`` field.
    type_name:
        Informal type tag (``"int"``, ``"float"``, ``"str"``, ``"date"``).
        Used only by the data generator and for documentation; the engine is
        dynamically typed.
    relation:
        Name of the relation the attribute originally belongs to (may be
        ``None`` for computed attributes such as aggregates).
    """

    name: str
    type_name: str = "any"
    relation: str | None = None

    @property
    def qualified_name(self) -> str:
        """Return ``relation.name`` when a relation is known, else ``name``."""
        if self.relation:
            return f"{self.relation}.{self.name}"
        return self.name

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.type_name, self.relation)

    def without_relation(self) -> "Attribute":
        """Return a copy with the relation qualifier dropped."""
        return Attribute(self.name, self.type_name, None)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes with fast positional lookup."""

    attributes: tuple[Attribute, ...]
    _index: dict[str, int] = field(default=None, compare=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        index: dict[str, int] = {}
        for pos, attr in enumerate(attrs):
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name {attr.name!r} in schema")
            index[attr.name] = pos
            if attr.relation:
                index.setdefault(attr.qualified_name, pos)
        object.__setattr__(self, "_index", index)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        relation: str | None = None,
        types: Sequence[str] | None = None,
    ) -> "Schema":
        """Build a schema from bare attribute names (all typed ``any``)."""
        if types is None:
            types = ["any"] * len(names)
        if len(types) != len(names):
            raise SchemaError("names and types must have the same length")
        return cls(tuple(Attribute(n, t, relation) for n, t in zip(names, types)))

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return tuple(a.name for a in self.attributes)

    def position(self, name: str) -> int:
        """Return the position of attribute ``name`` (qualified or not)."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"attribute {name!r} not found in schema with attributes {self.names}"
            ) from None

    def positions(self, names: Iterable[str]) -> tuple[int, ...]:
        """Return positions for several attribute names at once."""
        return tuple(self.position(n) for n in names)

    def attribute(self, name: str) -> Attribute:
        """Return the :class:`Attribute` object for ``name``."""
        return self.attributes[self.position(name)]

    # -- derivation ------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``names`` (in the given order)."""
        return Schema(tuple(self.attribute(n) for n in names))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used when joining relations)."""
        return Schema(self.attributes + other.attributes)

    def rename_relation(self, relation: str) -> "Schema":
        """Return a schema with every attribute re-qualified to ``relation``."""
        return Schema(
            tuple(Attribute(a.name, a.type_name, relation) for a in self.attributes)
        )

    def extended(self, extra: Sequence[Attribute]) -> "Schema":
        """Return a schema with ``extra`` attributes appended."""
        return Schema(self.attributes + tuple(extra))

    def compatible_with(self, other: "Schema") -> bool:
        """True when both schemas have the same attribute names in order.

        Used to check whether a state structure built by one plan can be fed
        directly into another plan without a tuple adapter (Section 3.2).
        """
        return self.names == other.names
