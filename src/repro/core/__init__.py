"""Adaptive data partitioning (ADP) core.

This package contains the paper's contributions proper:

* :mod:`repro.core.monitor` — runtime execution monitoring feeding the
  re-optimizer (Section 3.3).
* :mod:`repro.core.phases` — bookkeeping for the sequence of plan phases.
* :mod:`repro.core.stitchup` — stitch-up planning and the specialized
  stitch-up join (Section 3.4).
* :mod:`repro.core.corrective` — corrective query processing (Section 4).
* :mod:`repro.core.complementary` — complementary join pairs exploiting
  (partial) order (Section 5).
* :mod:`repro.core.preaggregation` — adjustable-window pre-aggregation
  (Section 6).
* :mod:`repro.core.router` — tuple-routing policies for the split operator.
"""

from repro.core.monitor import ExecutionMonitor
from repro.core.phases import PhaseManager, PhaseRecord
from repro.core.stitchup import StitchUpExecutor, StitchUpReport
from repro.core.corrective import CorrectiveExecutionReport, CorrectiveQueryProcessor
from repro.core.complementary import (
    ComplementaryJoinPair,
    ComplementaryJoinReport,
    PipelinedHashJoinBaseline,
)
from repro.core.preaggregation import AdjustableWindowPreAggregate, WindowedPreAggregator
from repro.core.router import (
    HashPartitionRouter,
    OrderConformanceRouter,
    PriorityQueueReorderer,
    RoundRobinRouter,
)

__all__ = [
    "ExecutionMonitor",
    "PhaseManager",
    "PhaseRecord",
    "StitchUpExecutor",
    "StitchUpReport",
    "CorrectiveExecutionReport",
    "CorrectiveQueryProcessor",
    "ComplementaryJoinPair",
    "ComplementaryJoinReport",
    "PipelinedHashJoinBaseline",
    "AdjustableWindowPreAggregate",
    "WindowedPreAggregator",
    "HashPartitionRouter",
    "OrderConformanceRouter",
    "PriorityQueueReorderer",
    "RoundRobinRouter",
]
