"""Execution monitoring: turning operator counters into optimizer knowledge.

Section 3.3: every operator keeps an output counter, state structures expose
their cardinalities, and the re-optimizer combines these into subexpression
selectivities.  The monitor also flags "multiplicative" join predicates —
joins whose output exceeds both inputs — so future estimates involving them
are scaled up conservatively (Section 4.2).

Beyond the accumulated :class:`ObservedStatistics`, every poll appends typed
:class:`~repro.adaptivity.events.AdaptationEvent` records to an event queue:
selectivity drift, ordering verdicts, per-source arrival-rate/stall
telemetry and exhaustion.  The adaptivity kernel's controller drains the
queue (:meth:`ExecutionMonitor.drain_events`) and fans the events out to its
policies — the monitor itself never decides anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptivity.events import (
    AdaptationEvent,
    OrderingObservedEvent,
    SelectivityDriftEvent,
    SourceExhaustedEvent,
    SourceRateEvent,
)
from repro.engine.pipelined import PipelinedPlan, SourceCursor
from repro.optimizer.statistics import ObservedStatistics
from repro.relational.algebra import SPJAQuery
from repro.relational.expressions import JoinPredicate


@dataclass
class MonitorSnapshot:
    """One polling observation, kept for reporting / debugging."""

    phase_id: int
    simulated_seconds: float
    tuples_read: int
    node_outputs: dict[frozenset, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        outputs = ", ".join(
            f"{'⋈'.join(sorted(relations))}={count}"
            for relations, count in sorted(
                self.node_outputs.items(), key=lambda item: sorted(item[0])
            )
        )
        return (
            f"MonitorSnapshot(phase={self.phase_id}, "
            f"t={self.simulated_seconds:.3f}s, read={self.tuples_read}, "
            f"outputs[{outputs}])"
        )


class ExecutionMonitor:
    """Collects runtime statistics from a running pipelined plan."""

    def __init__(self, query: SPJAQuery) -> None:
        self.query = query
        self.observed = ObservedStatistics()
        self.snapshots: list[MonitorSnapshot] = []
        #: typed adaptation events accumulated since the last drain
        self.events: list[AdaptationEvent] = []
        self._last_node_outputs: dict[frozenset, int] | None = None
        self._exhausted_emitted: set[str] = set()
        self._ordering_emitted: dict[tuple[str, str], int] = {}

    # -- observation -------------------------------------------------------------

    def observe(
        self,
        plan: PipelinedPlan,
        cursors: dict[str, SourceCursor],
    ) -> ObservedStatistics:
        """Fold the plan's current counters into the accumulated statistics."""
        phase_id = plan.phase_id
        now = plan.clock.now
        leaf_counts = plan.leaf_counts()
        exhausted_sources: dict[str, bool] = {}
        for relation, binding in plan.leaves.items():
            cursor = cursors[relation]
            next_arrival = cursor.peek_arrival()
            exhausted = cursor.exhausted and next_arrival is None
            exhausted_sources[relation] = exhausted
            self.observed.record_source(
                relation,
                tuples_read=cursor.consumed,
                tuples_passed=binding.tuples_passed,
                exhausted=exhausted,
            )
            self.events.append(
                SourceRateEvent(
                    phase_id=phase_id,
                    simulated_seconds=now,
                    relation=relation,
                    consumed=cursor.consumed,
                    next_arrival=next_arrival,
                    exhausted=exhausted,
                    promised_rate=cursor.promised_rate,
                    remote=cursor.is_remote,
                    arrived=(
                        cursor.arrived_by(now)
                        if cursor.arrived_by is not None
                        else None
                    ),
                )
            )
            if exhausted and relation not in self._exhausted_emitted:
                self._exhausted_emitted.add(relation)
                self.events.append(
                    SourceExhaustedEvent(
                        phase_id=phase_id,
                        simulated_seconds=now,
                        relation=relation,
                        tuples_read=cursor.consumed,
                    )
                )
            for attribute, detector in cursor.order_detectors.items():
                self.observed.record_ordering(relation, attribute, detector)
                key = (relation, attribute)
                if self._ordering_emitted.get(key) != detector.observed:
                    self._ordering_emitted[key] = detector.observed
                    ordering = self.observed.ordering_of(relation, attribute)
                    self.events.append(
                        OrderingObservedEvent(
                            phase_id=phase_id,
                            simulated_seconds=now,
                            relation=relation,
                            attribute=attribute,
                            direction=ordering.direction,
                            in_order_fraction=ordering.in_order_fraction,
                            observed=ordering.observed,
                        )
                    )
        for relations, selectivity in plan.observed_selectivities().items():
            # Only trust selectivities once a meaningful amount of data has
            # flowed through the subexpression — or once every participating
            # source is fully exhausted, in which case the observation is
            # *exact* no matter how tiny the inputs are (a 5-row dimension
            # table that has been read to the end yields a final
            # selectivity, which the old >= 10 threshold silently discarded).
            inputs_seen = min(
                (leaf_counts.get(rel, 0) for rel in relations), default=0
            )
            all_exhausted = all(
                exhausted_sources.get(rel, False) for rel in relations
            )
            if inputs_seen >= 10 or (inputs_seen >= 1 and all_exhausted):
                previous = self.observed.selectivities.get(relations)
                if previous != selectivity:
                    self.events.append(
                        SelectivityDriftEvent(
                            phase_id=phase_id,
                            simulated_seconds=now,
                            relations=relations,
                            selectivity=selectivity,
                            previous=previous,
                        )
                    )
                self.observed.record_selectivity(relations, selectivity)
        self._flag_multiplicative_joins(plan, leaf_counts)
        self.snapshot(plan)
        return self.observed

    def snapshot(self, plan: PipelinedPlan) -> MonitorSnapshot:
        """Append one :class:`MonitorSnapshot` for the plan's current state.

        Node-output dictionaries are copied *incrementally*: when nothing
        changed since the previous snapshot the previous dictionary object is
        shared (snapshots are never mutated), and when something did change
        the freshly built counter dict is adopted as-is — either way the
        per-poll deep copy of every observation is gone, while the recorded
        snapshot contents stay exactly what the old full-copy behaviour
        produced (pinned by a micro-test).
        """
        outputs = plan.node_output_counts()
        previous = self._last_node_outputs
        if previous is not None and previous == outputs:
            outputs = previous
        self._last_node_outputs = outputs
        snapshot = MonitorSnapshot(
            phase_id=plan.phase_id,
            simulated_seconds=plan.clock.now,
            tuples_read=plan.statistics.tuples_read,
            node_outputs=outputs,
        )
        self.snapshots.append(snapshot)
        return snapshot

    # -- adaptation events --------------------------------------------------------

    def drain_events(self) -> list[AdaptationEvent]:
        """Return and clear the events accumulated since the last drain."""
        events = self.events
        self.events = []
        return events

    def _flag_multiplicative_joins(
        self, plan: PipelinedPlan, leaf_counts: dict[str, int]
    ) -> None:
        """Flag join predicates whose observed output exceeds both inputs."""
        for node in plan.nodes:
            left_size = self._input_size(plan, node.left_relations, leaf_counts)
            right_size = self._input_size(plan, node.right_relations, leaf_counts)
            if left_size < 10 or right_size < 10:
                continue
            output = node.output_count
            largest_input = max(left_size, right_size)
            if output > largest_input:
                factor = output / largest_input
                for predicate in self._predicates_of(node.left_relations, node.right_relations):
                    self.observed.flag_multiplicative(predicate, factor)

    def _input_size(
        self, plan: PipelinedPlan, relations: frozenset, leaf_counts: dict[str, int]
    ) -> int:
        """Number of tuples that entered a join input (leaf count or child output)."""
        if len(relations) == 1:
            (relation,) = relations
            return leaf_counts.get(relation, 0)
        for node in plan.nodes:
            if node.relations == relations:
                return node.output_count
        return 0

    def _predicates_of(
        self, left: frozenset, right: frozenset
    ) -> tuple[JoinPredicate, ...]:
        return self.query.predicates_between(left, right)

    # -- reporting ----------------------------------------------------------------

    def latest_snapshot(self) -> MonitorSnapshot | None:
        return self.snapshots[-1] if self.snapshots else None

    def poll_count(self) -> int:
        return len(self.snapshots)
