"""Adjustable-window pre-aggregation (Section 6).

The operator divides its input into successive *windows*, pre-aggregates each
window, and emits the partial aggregates downstream.  The window size adapts
to how effective pre-aggregation actually is: when a window coalesces well
(output much smaller than input) the next window grows; when it does not, the
window shrinks — down to a window of one tuple, at which point the operator
degenerates into the pseudogroup pass-through and "adds very little overhead
even in the worst case".  Because aggregation functions distribute over
union, emitting per-window partials is always correct; the final GROUP BY
coalesces them.

Two interfaces are provided:

* :class:`AdjustableWindowPreAggregate` — a pull-based operator usable inside
  ordinary plans (this is what the Figure 6 benchmark runs).
* :class:`WindowedPreAggregator` — a push-style wrapper (``feed`` / ``flush``)
  for use inside the pipelined network or the integration facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.engine.cost import ExecutionMetrics
from repro.engine.operators.aggregate import GroupAccumulator, aggregate_output_schema
from repro.engine.operators.base import Operator, OperatorError
from repro.relational.expressions import Aggregate
from repro.relational.schema import Schema


@dataclass
class WindowDecision:
    """Record of one completed window: size, reduction achieved, next size."""

    window_size: int
    tuples_in: int
    tuples_out: int
    next_window_size: int

    @property
    def reduction_ratio(self) -> float:
        if self.tuples_in == 0:
            return 1.0
        return self.tuples_out / self.tuples_in


@dataclass
class WindowPolicy:
    """Growth/shrink policy for the adjustable window.

    A window is *effective* when its output/input ratio is at or below
    ``effectiveness_threshold``; effective windows multiply the size by
    ``grow_factor`` (up to ``max_window``), ineffective ones divide it by
    ``shrink_factor`` (down to ``min_window`` — a window of one tuple simply
    passes data through as pseudogroups).
    """

    initial_window: int = 64
    min_window: int = 1
    max_window: int = 65536
    grow_factor: int = 2
    shrink_factor: int = 2
    effectiveness_threshold: float = 0.75
    #: once the window has collapsed to one tuple (pure pass-through), probe
    #: again with a small window after this many pass-through tuples, so the
    #: operator can recover if a later region of the data aggregates well.
    reprobe_interval: int = 4096
    reprobe_window: int = 16

    def __post_init__(self) -> None:
        if self.min_window < 1:
            raise ValueError("min_window must be at least 1")
        if self.initial_window < self.min_window or self.initial_window > self.max_window:
            raise ValueError("initial_window must lie within [min_window, max_window]")
        if self.grow_factor < 2 or self.shrink_factor < 2:
            raise ValueError("grow_factor and shrink_factor must be at least 2")
        if not 0.0 < self.effectiveness_threshold <= 1.0:
            raise ValueError("effectiveness_threshold must be in (0, 1]")

    def next_size(self, current: int, reduction_ratio: float) -> int:
        if reduction_ratio <= self.effectiveness_threshold:
            return min(current * self.grow_factor, self.max_window)
        return max(current // self.shrink_factor, self.min_window)


class _WindowCore:
    """Shared windowing logic used by both the pull and push interfaces."""

    def __init__(
        self,
        input_schema: Schema,
        group_attributes: Sequence[str],
        aggregates: Sequence[Aggregate],
        policy: WindowPolicy,
        metrics: ExecutionMetrics,
    ) -> None:
        if not group_attributes:
            raise OperatorError("pre-aggregation requires at least one grouping attribute")
        self.input_schema = input_schema
        self.group_attributes = tuple(group_attributes)
        self.aggregates = tuple(aggregates)
        self.policy = policy
        self.metrics = metrics
        self.output_schema = aggregate_output_schema(
            group_attributes, aggregates, input_schema
        )
        self.window_size = policy.initial_window
        self.decisions: list[WindowDecision] = []
        self.tuples_in = 0
        self.tuples_out = 0
        self._buffer: list[tuple] = []
        self._passthrough_count = 0
        self._group_positions = input_schema.positions(self.group_attributes)
        self._value_positions = tuple(
            input_schema.position(a.attribute) if a.attribute is not None else -1
            for a in self.aggregates
        )

    def feed(self, row: tuple) -> list[tuple]:
        """Add one tuple; returns the emitted partials when a window closes."""
        self.tuples_in += 1
        if self.window_size <= 1:
            return self._passthrough(row)
        self._buffer.append(row)
        if len(self._buffer) >= self.window_size:
            return self._close_window()
        return []

    def _passthrough(self, row: tuple) -> list[tuple]:
        """Window of one tuple: convert to a pseudogroup, almost for free.

        This is the operator's degenerate mode after repeated ineffective
        windows — "a window size of 1, which simply passes tuples through
        (with the appropriate creation of aggregate values over the singleton
        tuple)".  Periodically a small probe window is re-opened so the
        operator can recover if a later region of the data coalesces well.
        """
        self._passthrough_count += 1
        if (
            self.policy.reprobe_interval
            and self._passthrough_count % self.policy.reprobe_interval == 0
        ):
            self.window_size = min(self.policy.reprobe_window, self.policy.max_window)
        self.tuples_out += 1
        key = tuple(row[p] for p in self._group_positions)
        partials = tuple(
            agg.singleton_partial(row[pos] if pos >= 0 else None)
            for agg, pos in zip(self.aggregates, self._value_positions)
        )
        return [key + partials]

    def flush(self) -> list[tuple]:
        """Close any partially filled window at end of stream."""
        if not self._buffer:
            return []
        return self._close_window()

    def _close_window(self) -> list[tuple]:
        window = self._buffer
        self._buffer = []
        accumulator = GroupAccumulator(
            self.input_schema,
            self.group_attributes,
            self.aggregates,
            input_is_partial=False,
            metrics=self.metrics,
        )
        for row in window:
            accumulator.accumulate(row)
        output = accumulator.results()
        self.tuples_out += len(output)
        next_size = self.policy.next_size(
            self.window_size, len(output) / max(len(window), 1)
        )
        self.decisions.append(
            WindowDecision(
                window_size=self.window_size,
                tuples_in=len(window),
                tuples_out=len(output),
                next_window_size=next_size,
            )
        )
        self.window_size = next_size
        self.metrics.tuple_copies += len(output)
        return output

    @property
    def overall_reduction(self) -> float:
        if self.tuples_in == 0:
            return 1.0
        return self.tuples_out / self.tuples_in


class AdjustableWindowPreAggregate(Operator):
    """Pull-based adjustable-window pre-aggregation operator."""

    def __init__(
        self,
        child: Operator,
        group_attributes: Sequence[str],
        aggregates: Sequence[Aggregate],
        policy: WindowPolicy | None = None,
        metrics: ExecutionMetrics | None = None,
    ) -> None:
        metrics = metrics if metrics is not None else child.metrics
        core = _WindowCore(
            child.schema,
            group_attributes,
            aggregates,
            policy or WindowPolicy(),
            metrics,
        )
        super().__init__(core.output_schema, metrics)
        self.child = child
        self.core = core

    def _produce(self) -> Iterator[tuple]:
        feed = self.core.feed
        for row in self.child.execute():
            emitted = feed(row)
            if emitted:
                yield from emitted
        yield from self.core.flush()

    # -- reporting ----------------------------------------------------------------

    @property
    def window_decisions(self) -> list[WindowDecision]:
        return self.core.decisions

    @property
    def overall_reduction(self) -> float:
        return self.core.overall_reduction

    @property
    def current_window_size(self) -> int:
        return self.core.window_size


class WindowedPreAggregator:
    """Push-style adjustable-window pre-aggregation.

    ``feed`` returns the partial-aggregate tuples that became ready (if the
    current window closed); ``flush`` closes the final window.  The caller is
    responsible for forwarding the returned tuples downstream.
    """

    def __init__(
        self,
        input_schema: Schema,
        group_attributes: Sequence[str],
        aggregates: Sequence[Aggregate],
        policy: WindowPolicy | None = None,
        metrics: ExecutionMetrics | None = None,
    ) -> None:
        self.core = _WindowCore(
            input_schema,
            group_attributes,
            aggregates,
            policy or WindowPolicy(),
            metrics if metrics is not None else ExecutionMetrics(),
        )

    @property
    def output_schema(self) -> Schema:
        return self.core.output_schema

    def feed(self, row: tuple) -> list[tuple]:
        return self.core.feed(row)

    def flush(self) -> list[tuple]:
        return self.core.flush()

    @property
    def window_decisions(self) -> list[WindowDecision]:
        return self.core.decisions

    @property
    def overall_reduction(self) -> float:
        return self.core.overall_reduction

    @property
    def current_window_size(self) -> int:
        return self.core.window_size
