"""Stitch-up planning and execution (Section 3.4).

After the sequential phases of corrective query processing have consumed all
source data, the answers still missing are exactly the join combinations that
mix partitions from *different* phases:

    R1^c1 ⋈ ... ⋈ Rm^cm   for every (c1..cm) that is not all-equal.

The stitch-up executor enumerates those combination vectors, skips the ones
on the exclusion list (the all-equal vectors, already produced by the phases
themselves) or with an empty partition, and evaluates each by

1. seeding from the largest *reusable intermediate result* registered in the
   state-structure registry (e.g. a prior phase's ``F⋈T`` hash table), and
2. joining in the remaining relations by probing their partition hash tables,
   re-hashing a structure when it is keyed on the wrong attribute
   ("stitch-up join", Section 3.4.3).

The report records the reuse statistics the paper publishes in Tables 1–2:
how many tuples were reused from prior phases and how many registered tuples
were never needed ("discarded").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.cost import CostModel, ExecutionMetrics, SimulatedClock
from repro.engine.state.hash_table import HashTableState
from repro.engine.state.registry import RegistryEntry, StateRegistry
from repro.relational.algebra import SPJAQuery
from repro.relational.schema import Schema
from repro.relational.tuples import TupleAdapter


@dataclass
class StitchUpReport:
    """Accounting for one stitch-up phase."""

    num_phases: int
    combinations_total: int = 0
    combinations_excluded: int = 0
    combinations_skipped_empty: int = 0
    combinations_evaluated: int = 0
    reused_tuples: int = 0
    discarded_tuples: int = 0
    output_count: int = 0
    work_units: float = 0.0
    simulated_seconds: float = 0.0
    exclusion_list: list[tuple[int, ...]] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "num_phases": self.num_phases,
            "combinations_total": self.combinations_total,
            "combinations_excluded": self.combinations_excluded,
            "combinations_skipped_empty": self.combinations_skipped_empty,
            "combinations_evaluated": self.combinations_evaluated,
            "reused_tuples": self.reused_tuples,
            "discarded_tuples": self.discarded_tuples,
            "output_count": self.output_count,
            "work_units": self.work_units,
            "simulated_seconds": self.simulated_seconds,
        }


class StitchUpExecutor:
    """Evaluates the cross-phase join combinations at the end of execution."""

    def __init__(
        self,
        query: SPJAQuery,
        registry: StateRegistry,
        num_phases: int,
        output_schema: Schema,
        output_sink: Callable[[tuple], None],
        metrics: ExecutionMetrics | None = None,
        clock: SimulatedClock | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.query = query
        self.registry = registry
        self.num_phases = num_phases
        self.output_schema = output_schema
        self.output_sink = output_sink
        self.cost_model = cost_model or CostModel()
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.clock = clock if clock is not None else SimulatedClock(self.cost_model)
        self._touched_entries: set[int] = set()
        self._rehash_cache: dict[tuple[int, str], HashTableState] = {}

    # -- public API -----------------------------------------------------------------

    def run(self) -> StitchUpReport:
        """Evaluate all cross-phase combinations and push results to the sink."""
        relations = list(self.query.relations)
        report = StitchUpReport(num_phases=self.num_phases)
        start_seconds = self.clock.now
        start_work = self.metrics.work(self.cost_model)

        if self.num_phases <= 1:
            report.discarded_tuples = self._untouched_tuples()
            return report

        partitions = {
            relation: self.registry.base_partitions(relation) for relation in relations
        }
        intermediates = self.registry.intermediate_entries()

        for combo in itertools.product(range(self.num_phases), repeat=len(relations)):
            report.combinations_total += 1
            if len(set(combo)) == 1:
                # Exclusion list: matching-superscript combinations were
                # already produced by the phase plans themselves.
                report.combinations_excluded += 1
                report.exclusion_list.append(combo)
                continue
            assignment = dict(zip(relations, combo))
            if self._any_partition_empty(assignment, partitions):
                report.combinations_skipped_empty += 1
                continue
            report.combinations_evaluated += 1
            produced = self._evaluate_combination(assignment, partitions, intermediates)
            report.output_count += produced

        self._charge_clock(start_work)
        report.reused_tuples = self._touched_tuples()
        report.discarded_tuples = self._untouched_tuples()
        report.work_units = self.metrics.work(self.cost_model) - start_work
        report.simulated_seconds = self.clock.now - start_seconds
        return report

    # -- combination evaluation --------------------------------------------------------

    def _any_partition_empty(
        self,
        assignment: dict[str, int],
        partitions: dict[str, dict[int, RegistryEntry]],
    ) -> bool:
        for relation, phase in assignment.items():
            entry = partitions[relation].get(phase)
            if entry is None or entry.cardinality == 0:
                return True
        return False

    def _evaluate_combination(
        self,
        assignment: dict[str, int],
        partitions: dict[str, dict[int, RegistryEntry]],
        intermediates: Sequence[RegistryEntry],
    ) -> int:
        pairs = frozenset(assignment.items())
        seed_entry = self._best_seed(pairs, intermediates, assignment, partitions)
        self._mark_touched(seed_entry)

        current_schema = seed_entry.structure.schema
        current_rows = list(seed_entry.structure.scan())
        self.metrics.tuple_copies += len(current_rows)
        covered = set(rel for rel, _phase in seed_entry.signature)

        remaining = [rel for rel in assignment if rel not in covered]
        while remaining and current_rows:
            next_relation = self._next_connected(covered, remaining)
            if next_relation is None:
                # Should not happen for connected queries; degrade gracefully.
                break
            remaining.remove(next_relation)
            entry = partitions[next_relation][assignment[next_relation]]
            self._mark_touched(entry)
            current_rows, current_schema = self._probe_join(
                current_rows, current_schema, covered, next_relation, entry
            )
            covered.add(next_relation)

        if not current_rows:
            return 0
        adapter = TupleAdapter(current_schema, self.output_schema)
        produced = 0
        for row in current_rows:
            output = row if adapter.is_identity else adapter.adapt(row)
            self.metrics.tuples_output += 1
            self.output_sink(output)
            produced += 1
        return produced

    def _best_seed(
        self,
        pairs: frozenset,
        intermediates: Sequence[RegistryEntry],
        assignment: dict[str, int],
        partitions: dict[str, dict[int, RegistryEntry]],
    ) -> RegistryEntry:
        """Largest reusable intermediate covered by this combination, else the
        smallest matching base partition."""
        best: RegistryEntry | None = None
        for entry in intermediates:
            if entry.signature <= pairs:
                if best is None or len(entry.signature) > len(best.signature) or (
                    len(entry.signature) == len(best.signature)
                    and entry.cardinality < best.cardinality
                ):
                    best = entry
        if best is not None:
            return best
        # Fall back to the smallest base partition in the combination.
        candidates = [
            partitions[relation][phase] for relation, phase in assignment.items()
        ]
        return min(candidates, key=lambda e: e.cardinality)

    def _next_connected(self, covered: set[str], remaining: list[str]) -> str | None:
        for relation in remaining:
            if self.query.predicates_between(frozenset(covered), frozenset((relation,))):
                return relation
        return None

    def _probe_join(
        self,
        rows: list[tuple],
        schema: Schema,
        covered: set[str],
        relation: str,
        entry: RegistryEntry,
    ) -> tuple[list[tuple], Schema]:
        """Join the working set with one partition via hash probing."""
        predicates = self.query.predicates_between(frozenset(covered), frozenset((relation,)))
        primary = predicates[0]
        if primary.left_relation == relation:
            partition_attr, current_attr = primary.left_attr, primary.right_attr
        else:
            partition_attr, current_attr = primary.right_attr, primary.left_attr

        table = self._keyed_table(entry, partition_attr)
        current_pos = schema.position(current_attr)
        combined_schema = schema.concat(table.schema)

        residual_fns = []
        for pred in predicates[1:]:
            if pred.left_relation == relation:
                rel_attr, cur_attr = pred.left_attr, pred.right_attr
            else:
                rel_attr, cur_attr = pred.right_attr, pred.left_attr
            left_pos = combined_schema.position(cur_attr)
            right_pos = combined_schema.position(rel_attr)
            residual_fns.append(lambda row, l=left_pos, r=right_pos: row[l] == row[r])

        output: list[tuple] = []
        metrics = self.metrics
        for row in rows:
            metrics.hash_probes += 1
            for match in table.probe(row[current_pos]):
                combined = row + match
                if residual_fns:
                    metrics.predicate_evals += len(residual_fns)
                    if not all(fn(combined) for fn in residual_fns):
                        continue
                metrics.tuple_copies += 1
                output.append(combined)
        return output, combined_schema

    def _keyed_table(self, entry: RegistryEntry, attribute: str) -> HashTableState:
        """Return the partition keyed on ``attribute``, re-hashing if needed."""
        structure = entry.structure
        if isinstance(structure, HashTableState) and structure.key == attribute:
            return structure
        cache_key = (id(structure), attribute)
        cached = self._rehash_cache.get(cache_key)
        if cached is not None:
            return cached
        rehashed = HashTableState(structure.schema, attribute)
        for row in structure.scan():
            rehashed.insert(row)
            self.metrics.hash_inserts += 1
        self._rehash_cache[cache_key] = rehashed
        return rehashed

    # -- accounting -----------------------------------------------------------------

    def _mark_touched(self, entry: RegistryEntry) -> None:
        self._touched_entries.add(id(entry))

    def _touched_tuples(self) -> int:
        return sum(
            entry.cardinality
            for entry in self.registry
            if id(entry) in self._touched_entries
        )

    def _untouched_tuples(self) -> int:
        return sum(
            entry.cardinality
            for entry in self.registry
            if id(entry) not in self._touched_entries
        )

    def _charge_clock(self, start_work: float) -> None:
        delta = self.metrics.work(self.cost_model) - start_work
        if delta > 0:
            self.clock.charge(delta)
