"""Complementary join pairs: exploiting (partial) order in the sources (Section 5).

A complementary join pair speculates that both inputs of a join are (mostly)
sorted on their join keys.  It keeps four hash tables — one per relation per
component — and routes every arriving tuple either to a **merge component**
(if the tuple conforms to the ordering seen so far) or to a **pipelined hash
component** (if it does not).  Each component joins only the tuples routed to
it; once the inputs are exhausted, a *mini stitch-up* joins the merge-side
table of each relation with the hash-side table of the other.

Two routing strategies are reproduced:

* **naive** — a tuple is in-order if its key is >= the last in-order key on
  its side;
* **priority queue** — a bounded min-heap (1024 tuples in the paper) reorders
  recently received tuples before the order check, repairing local disorder.

The report breaks output tuples down by component (hash / merge / stitch-up),
which is exactly the paper's Table 3, and the total simulated time gives the
bars of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.router import PriorityQueueReorderer
from repro.engine.cost import CostModel, ExecutionMetrics, SimulatedClock, WorkProfile
from repro.engine.pipelined import SourceCursor
from repro.engine.state.hash_table import HashTableState
from repro.io.wallclock import wall_now
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass
class ComplementaryJoinReport:
    """Outcome of one complementary-join (or baseline) execution."""

    strategy: str
    output_count: int
    outputs_by_component: dict[str, int]
    routed_by_component: dict[str, int]
    metrics: ExecutionMetrics
    simulated_seconds: float
    wall_seconds: float
    details: dict = field(default_factory=dict)

    def work(self, cost_model: CostModel | None = None) -> float:
        return self.metrics.work(cost_model)

    def summary(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "outputs": self.output_count,
            "hash_outputs": self.outputs_by_component.get("hash", 0),
            "merge_outputs": self.outputs_by_component.get("merge", 0),
            "stitch_outputs": self.outputs_by_component.get("stitch", 0),
            "simulated_seconds": round(self.simulated_seconds, 2),
        }


class _JoinDriver:
    """Shared source-interleaving loop for the join strategies below."""

    def __init__(
        self,
        left,
        right,
        left_key: str,
        right_key: str,
        cost_model: CostModel | None = None,
        collect_outputs: bool = False,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.metrics = ExecutionMetrics()
        self.clock = SimulatedClock(self.cost_model)
        self.left_cursor = SourceCursor(self._name(left, "left"), left)
        self.right_cursor = SourceCursor(self._name(right, "right"), right)
        self.left_schema: Schema = self.left_cursor.schema
        self.right_schema: Schema = self.right_cursor.schema
        self.left_key = left_key
        self.right_key = right_key
        self.left_key_pos = self.left_schema.position(left_key)
        self.right_key_pos = self.right_schema.position(right_key)
        self.collect_outputs = collect_outputs
        self.outputs: list[tuple] = []
        self.output_count = 0
        self._charged_work = 0.0

    @staticmethod
    def _name(source, default: str) -> str:
        return getattr(source, "name", default)

    def emit(self, combined: tuple) -> None:
        self.metrics.tuple_copies += 1
        self.metrics.tuples_output += 1
        self.output_count += 1
        if self.collect_outputs:
            self.outputs.append(combined)

    def next_side(self) -> str | None:
        """Which side to read next: earliest arrival, then least consumed."""
        left_arrival = self.left_cursor.peek_arrival()
        right_arrival = self.right_cursor.peek_arrival()
        if left_arrival is None and right_arrival is None:
            return None
        if right_arrival is None:
            return "left"
        if left_arrival is None:
            return "right"
        left_rank = (left_arrival, self.left_cursor.consumed)
        right_rank = (right_arrival, self.right_cursor.consumed)
        return "left" if left_rank <= right_rank else "right"

    def read(self, side: str) -> tuple | None:
        cursor = self.left_cursor if side == "left" else self.right_cursor
        item = cursor.read()
        if item is None:
            return None
        row, arrival = item
        self.sync_clock()
        self.clock.wait_until(arrival)
        self.metrics.tuples_read += 1
        return row

    def sync_clock(self) -> None:
        work = self.metrics.work(self.cost_model)
        delta = work - self._charged_work
        if delta > 0:
            self.clock.charge(delta)
            self._charged_work = work


class PipelinedHashJoinBaseline:
    """The comparison point of Figure 5: a single pipelined hash join."""

    def __init__(
        self,
        left,
        right,
        left_key: str,
        right_key: str,
        cost_model: CostModel | None = None,
        collect_outputs: bool = False,
    ) -> None:
        self.driver = _JoinDriver(left, right, left_key, right_key, cost_model, collect_outputs)

    def execute(self) -> ComplementaryJoinReport:
        driver = self.driver
        metrics = driver.metrics
        left_table = HashTableState(driver.left_schema, driver.left_key)
        right_table = HashTableState(driver.right_schema, driver.right_key)
        wall_start = wall_now()
        while True:
            side = driver.next_side()
            if side is None:
                break
            row = driver.read(side)
            if row is None:
                continue
            metrics.hash_inserts += 1
            metrics.hash_probes += 1
            if side == "left":
                left_table.insert(row)
                for other in right_table.probe(row[driver.left_key_pos]):
                    driver.emit(row + other)
            else:
                right_table.insert(row)
                for other in left_table.probe(row[driver.right_key_pos]):
                    driver.emit(other + row)
        driver.sync_clock()
        return ComplementaryJoinReport(
            strategy="pipelined_hash",
            output_count=driver.output_count,
            outputs_by_component={"hash": driver.output_count},
            routed_by_component={
                "hash_left": len(left_table),
                "hash_right": len(right_table),
            },
            metrics=metrics,
            simulated_seconds=driver.clock.now,
            wall_seconds=wall_now() - wall_start,
            details={"outputs": driver.outputs if driver.collect_outputs else None},
        )


class ComplementaryJoinPair:
    """Merge join + pipelined hash join over adaptively routed partitions."""

    #: work-unit charges for the merge component: an append to an already
    #: sorted run plus a pointer-advance style probe are cheaper than a hash
    #: insert + probe, which is the "slightly more efficient" advantage the
    #: paper attributes to the merge join.
    MERGE_INSERT_COMPARISONS = 2
    MERGE_PROBE_COMPARISONS = 2

    def __init__(
        self,
        left,
        right,
        left_key: str,
        right_key: str,
        use_priority_queue: bool = False,
        queue_capacity: int = 1024,
        cost_model: CostModel | None = None,
        collect_outputs: bool = False,
    ) -> None:
        self.driver = _JoinDriver(left, right, left_key, right_key, cost_model, collect_outputs)
        self.use_priority_queue = use_priority_queue
        self.queue_capacity = queue_capacity
        driver = self.driver
        # Four hash tables sharing the join-key attribute (Figure 4).
        self.merge_left = HashTableState(driver.left_schema, left_key)
        self.merge_right = HashTableState(driver.right_schema, right_key)
        self.hash_left = HashTableState(driver.left_schema, left_key)
        self.hash_right = HashTableState(driver.right_schema, right_key)
        self._last_merge_key = {"left": None, "right": None}
        self.outputs_by_component = {"hash": 0, "merge": 0, "stitch": 0}
        self.routed = {"merge_left": 0, "merge_right": 0, "hash_left": 0, "hash_right": 0}
        self._reorderers: dict[str, PriorityQueueReorderer] | None = None
        if use_priority_queue:
            self._reorderers = {
                "left": PriorityQueueReorderer(
                    driver.left_schema, left_key, queue_capacity, driver.metrics
                ),
                "right": PriorityQueueReorderer(
                    driver.right_schema, right_key, queue_capacity, driver.metrics
                ),
            }

    # -- per-tuple processing -----------------------------------------------------

    def _key_of(self, row: tuple, side: str) -> object:
        driver = self.driver
        return row[driver.left_key_pos if side == "left" else driver.right_key_pos]

    def _process(self, row: tuple, side: str) -> None:
        """Route one tuple to the merge or hash component and join it there."""
        metrics = self.driver.metrics
        key = self._key_of(row, side)
        metrics.comparisons += 1
        last = self._last_merge_key[side]
        if last is None or key >= last:
            self._last_merge_key[side] = key
            self._merge_join(row, side, key)
        else:
            self._hash_join(row, side, key)

    def _merge_join(self, row: tuple, side: str, key: object) -> None:
        metrics = self.driver.metrics
        metrics.comparisons += self.MERGE_INSERT_COMPARISONS
        metrics.comparisons += self.MERGE_PROBE_COMPARISONS
        if side == "left":
            self.merge_left.insert(row)
            self.routed["merge_left"] += 1
            for other in self.merge_right.probe(key):
                self.driver.emit(row + other)
                self.outputs_by_component["merge"] += 1
        else:
            self.merge_right.insert(row)
            self.routed["merge_right"] += 1
            for other in self.merge_left.probe(key):
                self.driver.emit(other + row)
                self.outputs_by_component["merge"] += 1

    def _hash_join(self, row: tuple, side: str, key: object) -> None:
        metrics = self.driver.metrics
        metrics.hash_inserts += 1
        metrics.hash_probes += 1
        if side == "left":
            self.hash_left.insert(row)
            self.routed["hash_left"] += 1
            for other in self.hash_right.probe(key):
                self.driver.emit(row + other)
                self.outputs_by_component["hash"] += 1
        else:
            self.hash_right.insert(row)
            self.routed["hash_right"] += 1
            for other in self.hash_left.probe(key):
                self.driver.emit(other + row)
                self.outputs_by_component["hash"] += 1

    def _route(self, row: tuple, side: str) -> None:
        if self._reorderers is None:
            self._process(row, side)
            return
        for released in self._reorderers[side].push(row):
            self._process(released, side)

    def _drain_reorderers(self) -> None:
        if self._reorderers is None:
            return
        for side in ("left", "right"):
            for released in self._reorderers[side].drain():
                self._process(released, side)

    # -- stitch-up -----------------------------------------------------------------

    def _stitch_up(self) -> None:
        """Join merge-side tables against the opposite hash-side tables.

        Mirrors the stitch-up join's pairwise decision (Section 3.4.3): skip a
        pair entirely when either structure is empty, and scan the smaller
        structure while probing the larger one.
        """
        # hash(R) ⋈ merge(S) and merge(R) ⋈ hash(S)
        self._stitch_pair(self.hash_left, self.merge_right)
        self._stitch_pair(self.merge_left, self.hash_right)

    def _stitch_pair(self, left_table: HashTableState, right_table: HashTableState) -> None:
        if len(left_table) == 0 or len(right_table) == 0:
            return
        metrics = self.driver.metrics
        if len(left_table) <= len(right_table):
            for row in left_table.scan():
                metrics.hash_probes += 1
                for other in right_table.probe(row[self.driver.left_key_pos]):
                    self.driver.emit(row + other)
                    self.outputs_by_component["stitch"] += 1
        else:
            for other in right_table.scan():
                metrics.hash_probes += 1
                for row in left_table.probe(other[self.driver.right_key_pos]):
                    self.driver.emit(row + other)
                    self.outputs_by_component["stitch"] += 1

    # -- execution -----------------------------------------------------------------

    def execute(self) -> ComplementaryJoinReport:
        driver = self.driver
        wall_start = wall_now()
        while True:
            side = driver.next_side()
            if side is None:
                break
            row = driver.read(side)
            if row is None:
                continue
            self._route(row, side)
        self._drain_reorderers()
        self._stitch_up()
        driver.sync_clock()
        strategy = "complementary_priority_queue" if self.use_priority_queue else "complementary_naive"
        details: dict[str, object] = {
            "merge_left": len(self.merge_left),
            "merge_right": len(self.merge_right),
            "hash_left": len(self.hash_left),
            "hash_right": len(self.hash_right),
        }
        if self._reorderers is not None:
            details["queue_high_water"] = {
                side: reorderer.buffered_high_water
                for side, reorderer in self._reorderers.items()
            }
        if driver.collect_outputs:
            details["outputs"] = driver.outputs
        return ComplementaryJoinReport(
            strategy=strategy,
            output_count=driver.output_count,
            outputs_by_component=dict(self.outputs_by_component),
            routed_by_component=dict(self.routed),
            metrics=driver.metrics,
            simulated_seconds=driver.clock.now,
            wall_seconds=wall_now() - wall_start,
            details=details,
        )

    def work_profile(self) -> WorkProfile:
        """Tuple-processing distribution across components (Table 3)."""
        profile = WorkProfile()
        for component, count in self.outputs_by_component.items():
            profile.add(component, count)
        return profile
