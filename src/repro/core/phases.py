"""Phase bookkeeping for corrective query processing.

A *phase* is one contiguous interval of execution under one query plan
(Section 4): phase 0 runs the initial plan, each plan switch starts a new
phase, and the terminal stitch-up phase combines data across phases.  The
:class:`PhaseManager` records what each phase consumed and produced so the
experiment reports (Tables 1 and 2) can be generated directly from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.plans import JoinTree


@dataclass
class PhaseRecord:
    """Summary of one completed execution phase."""

    phase_id: int
    join_tree: JoinTree
    started_at: float
    ended_at: float = 0.0
    steps: int = 0
    tuples_read: int = 0
    outputs: int = 0
    consumed_per_relation: dict[str, int] = field(default_factory=dict)
    work_units: float = 0.0
    switch_reason: str = ""

    @property
    def duration(self) -> float:
        return max(self.ended_at - self.started_at, 0.0)

    def __repr__(self) -> str:
        switched = (
            f", switched: {self.switch_reason}" if self.switch_reason else ""
        )
        return (
            f"PhaseRecord(phase={self.phase_id}, tree={self.join_tree}, "
            f"[{self.started_at:.3f}s..{self.ended_at:.3f}s], "
            f"read={self.tuples_read}, outputs={self.outputs}{switched})"
        )

    def describe(self) -> str:
        consumed = ", ".join(
            f"{rel}={count}" for rel, count in sorted(self.consumed_per_relation.items())
        )
        return (
            f"phase {self.phase_id}: tree={self.join_tree} "
            f"duration={self.duration:.2f}s outputs={self.outputs} consumed[{consumed}]"
        )


class PhaseManager:
    """Tracks the sequence of phases of one corrective execution."""

    def __init__(self) -> None:
        self.records: list[PhaseRecord] = []

    def start_phase(self, join_tree: JoinTree, started_at: float) -> PhaseRecord:
        record = PhaseRecord(
            phase_id=len(self.records), join_tree=join_tree, started_at=started_at
        )
        self.records.append(record)
        return record

    def current(self) -> PhaseRecord:
        if not self.records:
            raise RuntimeError("no phase has been started")
        return self.records[-1]

    def finish_current(
        self,
        ended_at: float,
        steps: int,
        tuples_read: int,
        outputs: int,
        consumed_per_relation: dict[str, int],
        work_units: float,
        switch_reason: str = "",
    ) -> PhaseRecord:
        record = self.current()
        record.ended_at = ended_at
        record.steps = steps
        record.tuples_read = tuples_read
        record.outputs = outputs
        record.consumed_per_relation = dict(consumed_per_relation)
        record.work_units = work_units
        record.switch_reason = switch_reason
        return record

    # -- reporting ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def phase_count(self) -> int:
        return len(self.records)

    def total_outputs(self) -> int:
        return sum(record.outputs for record in self.records)

    def total_tuples_read(self) -> int:
        return sum(record.tuples_read for record in self.records)

    def trees(self) -> list[JoinTree]:
        return [record.join_tree for record in self.records]

    def describe(self) -> str:
        return "\n".join(record.describe() for record in self.records)
